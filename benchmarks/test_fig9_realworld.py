"""Figure 9: the real-world ServerlessBench applications vs OpenWhisk."""

from repro.bench import run_fig9

from conftest import emit


def _check_alexa(fig9):
    """Paper: 12.5x faster start-up, 2.4x faster execution.

    Our OpenWhisk pays a cold start per chain function on first use, so the
    start-up ratio lands higher than the paper's mixed-warmth measurement;
    the execution ratio lands in band.
    """
    alexa = fig9["alexa"]
    ow = alexa.row("openwhisk", "chain")
    fw = alexa.row("fireworks", "chain")
    assert ow.startup_ms / fw.startup_ms >= 12
    assert 1.5 <= ow.exec_ms / fw.exec_ms <= 4.0


def _check_data_analysis(fig9):
    analysis = fig9["data-analysis"]
    # Paper: insertion 25.6x faster start-up, 11.8x faster execution.
    ow = analysis.row("openwhisk", "insert")
    fw = analysis.row("fireworks", "insert")
    assert ow.startup_ms / fw.startup_ms >= 25
    assert ow.exec_ms / fw.exec_ms >= 2
    # Paper: analysis 27x faster start-up, 4.9x faster execution.
    ow = analysis.row("openwhisk", "analysis")
    fw = analysis.row("fireworks", "analysis")
    assert ow.startup_ms / fw.startup_ms >= 25
    assert ow.exec_ms / fw.exec_ms >= 2


def _check_fireworks_always_wins(fig9):
    for figure in fig9.values():
        fw_rows = [r for r in figure.rows if r.platform == "fireworks"]
        ow_rows = [r for r in figure.rows if r.platform == "openwhisk"]
        for fw_row, ow_row in zip(fw_rows, ow_rows):
            assert fw_row.total_ms < ow_row.total_ms


def test_fig9_realworld_applications(benchmark):
    fig9 = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    emit("Figure 9(a) — Alexa Skills", fig9["alexa"].as_table())
    emit("Figure 9(b) — Data analysis", fig9["data-analysis"].as_table())
    _check_alexa(fig9)
    _check_data_analysis(fig9)
    _check_fireworks_always_wins(fig9)
