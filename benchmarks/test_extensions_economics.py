"""Extensions: provider economics (§1) and invoker scheduling (Figure 1).

* **Billing analysis** — the user pays for execution only; start-up time is
  resource-time the provider eats.  Fireworks' billable efficiency
  approaches 1 because there are no cold starts to eat.
* **Scheduling policies** — warm containers live on specific invokers;
  OpenWhisk's home-invoker hashing keeps hitting them where round-robin
  keeps missing.
"""

from repro.billing import run_billing_analysis
from repro.bench.scheduling import run_scheduling_comparison
from repro.platforms.scheduler import POLICY_HASH, POLICY_ROUND_ROBIN

from conftest import emit


def test_billing_analysis(benchmark):
    reports = benchmark.pedantic(
        lambda: run_billing_analysis(invocations=20, cold_every=5),
        rounds=1, iterations=1)
    emit("Extension — provider economics (§1: start-up is not charged)",
         "\n".join(report.as_line() for report in reports.values()))

    fireworks = reports["fireworks"]
    openwhisk = reports["openwhisk"]
    # Fireworks bills nearly all of its resource-time.
    assert fireworks.billable_efficiency > 0.85
    # The cold-sprinkled baseline gives a chunk of resource-time away.
    assert openwhisk.billable_efficiency < \
        fireworks.billable_efficiency - 0.1
    # Same user revenue (same executions billed)...
    assert abs(fireworks.revenue_usd - openwhisk.revenue_usd) / \
        openwhisk.revenue_usd < 0.35
    # ...from strictly less hardware time.
    assert fireworks.resource_ms < openwhisk.resource_ms


def test_scheduling_policies(benchmark):
    results = benchmark.pedantic(run_scheduling_comparison, rounds=1,
                                 iterations=1)
    emit("Extension — invoker scheduling policies (warm affinity)",
         "\n".join(result.as_line() for result in results.values()))

    assert results[POLICY_HASH].warm_hit_rate > \
        results[POLICY_ROUND_ROBIN].warm_hit_rate + 0.1
    assert results[POLICY_HASH].latency.mean_ms < \
        results[POLICY_ROUND_ROBIN].latency.mean_ms
