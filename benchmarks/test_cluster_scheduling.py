"""Extension: placement policies across a 4-host cluster.

The same Azure-like trace (Shahrad et al. popularity split) is replayed
under every placement policy, once against OpenWhisk (warm containers are
host-local, so placement decides the warm-hit rate) and once against
Fireworks (snapshot images are host-local, so placement decides the
restore-locality rate).  ``snapshot-locality`` placement keeps restores on
the host that already holds the image; round-robin sprays requests across
all four hosts and pays cross-host snapshot transfers.
"""

import pytest

from repro.bench.cluster import run_cluster_scheduling
from repro.platforms.scheduler import (POLICY_HASH, POLICY_ROUND_ROBIN,
                                       POLICY_SNAPSHOT_LOCALITY)

from conftest import emit


@pytest.fixture(scope="module")
def outcomes():
    return run_cluster_scheduling(n_hosts=4)


def test_cluster_scheduling(benchmark, outcomes):
    results = benchmark.pedantic(lambda: outcomes, rounds=1, iterations=1)
    emit("Extension — placement policies on a 4-host cluster",
         "\n".join(outcome.as_line() for outcome in results.values()))

    locality = results[POLICY_SNAPSHOT_LOCALITY]
    round_robin = results[POLICY_ROUND_ROBIN]
    hashed = results[POLICY_HASH]

    # Snapshot-locality placement keeps restores on the image's host.
    assert locality.restore_locality_rate > round_robin.restore_locality_rate
    assert locality.cross_host_transfers < round_robin.cross_host_transfers
    # Hash placement revisits each function's home host inside the
    # keep-alive window; round-robin arrives after the container expired.
    assert hashed.warm_hit_rate > round_robin.warm_hit_rate + 0.1


def test_cluster_scheduling_is_deterministic(outcomes):
    rerun = run_cluster_scheduling(n_hosts=4)
    assert rerun == outcomes
