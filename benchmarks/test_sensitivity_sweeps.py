"""Extension: sensitivity of the headline claims to calibration constants.

Shows which conclusions are robust: the Fig 6a exec improvement tracks V8's
hotness threshold almost linearly, while the cold-start speedup hinges on
the snapshot working-set size (exactly REAP's lever [54]).
"""

from repro.bench.sensitivity import run_sensitivity

from conftest import emit


def test_sensitivity_sweeps(benchmark):
    def sweep():
        return (
            run_sensitivity("nodejs.hotness_threshold_units",
                            [2000.0, 4000.0, 8000.0, 16000.0],
                            "node_exec_improvement_pct"),
            run_sensitivity("nodejs.snapshot_working_set_fraction",
                            [0.05, 0.15, 0.30, 0.60],
                            "cold_start_speedup_x"),
        )

    exec_sweep, coldstart_sweep = benchmark.pedantic(sweep, rounds=1,
                                                     iterations=1)
    emit("Extension — calibration sensitivity",
         exec_sweep.as_table() + "\n" + coldstart_sweep.as_table())

    # Exec improvement grows monotonically with the hotness threshold.
    exec_values = [point.metric for point in exec_sweep.points]
    assert exec_values == sorted(exec_values)
    # The calibrated point (8000 units) sits at the paper's 38%.
    calibrated = exec_sweep.points[2]
    assert abs(calibrated.metric - 38.0) < 4.0

    # Cold-start speedup falls monotonically with the working-set size,
    # and the full claimed range (59.8x..133x) is reachable within
    # plausible working sets.
    cold_values = [point.metric for point in coldstart_sweep.points]
    assert cold_values == sorted(cold_values, reverse=True)
    assert cold_values[0] > 133
    assert cold_values[-1] < 80
