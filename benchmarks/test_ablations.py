"""Ablations beyond the paper's figures (DESIGN.md §5 extensions).

* restore policies (REAP prefetch vs demand paging, §7);
* snapshot-store LRU replacement (§6);
* de-optimization under shape-churning arguments (§6);
* ASLR snapshot regeneration (§6);
* warm-pool vs snapshot policy on an Azure-like trace (§1/§2.2).
"""

import pytest

from repro.bench import (run_aot_comparison,
                         run_catalyzer_comparison, run_deopt_experiment,
                         run_keepalive_policy_comparison,
                         run_policy_comparison, run_regeneration_demo,
                         run_remote_store_ablation,
                         run_restore_policy_ablation,
                         run_store_eviction_demo)
from repro.snapshot.restorer import (POLICY_DEMAND, POLICY_DEMAND_COLD,
                                     POLICY_REAP)

from conftest import emit


def test_restore_policy_ablation(benchmark):
    results = benchmark.pedantic(run_restore_policy_ablation, rounds=1,
                                 iterations=1)
    emit("Ablation — restore policies (start-up ms)",
         "\n".join(f"{policy:<14} {ms:8.2f} ms"
                   for policy, ms in results.items()))
    # Cold demand paging is the bottleneck REAP removes [54].
    assert results[POLICY_DEMAND_COLD] > 2 * results[POLICY_REAP]
    # With a warm page cache, plain demand paging is cheapest.
    assert results[POLICY_DEMAND] < results[POLICY_REAP]


def test_remote_store_ablation(benchmark):
    results = benchmark.pedantic(run_remote_store_ablation, rounds=1,
                                 iterations=1)
    emit("Ablation — local vs remote snapshot storage (§6)",
         f"local hit: {results['local_hit_ms']:.1f} ms | remote fetch: "
         f"{results['remote_fetch_ms']:.1f} ms "
         f"({results['image_mb']:.0f} MiB image)")
    # A remote fetch costs an image download; still far below a cold boot.
    assert results["remote_fetch_ms"] > 5 * results["local_hit_ms"]
    assert results["remote_fetch_ms"] < 1000


def test_catalyzer_comparison(benchmark):
    results = benchmark.pedantic(run_catalyzer_comparison, rounds=1,
                                 iterations=1)
    lines = [f"{name:<12} cold={values['cold_startup_ms']:7.1f}ms "
             f"warm={values['warm_startup_ms']:6.1f}ms "
             f"exec={values['exec_ms']:7.1f}ms "
             f"isolation={'VM' if values['isolation'] else 'container'}"
             for name, values in results.items()]
    emit("Extension — Catalyzer (checkpoint+sfork) vs Fireworks",
         "\n".join(lines))
    catalyzer, fireworks = results["catalyzer"], results["fireworks"]
    # Table 1's shape, now measured: sfork warms faster than a restore...
    assert catalyzer["warm_startup_ms"] < fireworks["warm_startup_ms"]
    # ...but Fireworks wins cold start, execution (post-JIT + no gVisor
    # I/O tax), and isolation level.
    assert fireworks["cold_startup_ms"] < catalyzer["cold_startup_ms"]
    assert fireworks["exec_ms"] < catalyzer["exec_ms"]
    assert fireworks["isolation"] > catalyzer["isolation"]


def test_aot_vs_post_jit(benchmark):
    results = benchmark.pedantic(run_aot_comparison, rounds=1,
                                 iterations=1)
    lines = [f"{name:<26} cold={v['cold_startup_ms']:7.1f}ms "
             f"warm={v['warm_startup_ms']:6.1f}ms exec={v['exec_ms']:6.1f}ms "
             f"pss/vm={v['per_vm_pss_mb']:6.1f}M"
             for name, v in results.items()]
    emit("Extension — C#/.NET AOT vs post-JIT snapshot (§3.1/§7)",
         "\n".join(lines))
    aot = results["dotnet-aot-firecracker"]
    fireworks = results["nodejs-postjit-fireworks"]
    # AOT removes the JIT penalty: execution matches the post-JIT snapshot.
    assert aot["exec_ms"] == pytest.approx(fireworks["exec_ms"], rel=0.05)
    assert aot["jit_compile_ms"] == 0.0
    # But it shares nothing (§7): cold start and per-instance memory lose.
    assert fireworks["cold_startup_ms"] < aot["cold_startup_ms"] / 50
    assert fireworks["per_vm_pss_mb"] < aot["per_vm_pss_mb"] / 2


def test_store_eviction(benchmark):
    results = benchmark.pedantic(run_store_eviction_demo, rounds=1,
                                 iterations=1)
    emit("Ablation — snapshot store LRU (capacity 3, 8 installs)",
         "\n".join(f"{key}: {value}" for key, value in results.items()))
    assert results["installed"] == 8
    assert results["resident_images"] == 3
    assert results["evictions"] == 5


def test_deopt_experiment(benchmark):
    result = benchmark.pedantic(run_deopt_experiment, rounds=1,
                                iterations=1)
    emit("Ablation — de-optimization under rotating Alexa skills",
         f"deopts={result.total_deopts} "
         f"fireworks={result.fireworks_mean_ms:.1f}ms "
         f"openwhisk={result.openwhisk_mean_ms:.1f}ms")
    # §6: arguments that trigger deopt... "our evaluation results always
    # show a performance improvement".
    assert result.total_deopts > 0
    assert result.fireworks_still_wins


def test_snapshot_regeneration(benchmark):
    result = benchmark.pedantic(run_regeneration_demo, rounds=1,
                                iterations=1)
    emit("Ablation — ASLR snapshot regeneration (§6)",
         "\n".join(f"{key}: {value:.1f}" for key, value in result.items()))
    assert result["generation"] == 2
    # Start-up is unaffected by regeneration.
    assert result["startup_after_ms"] == pytest.approx(
        result["startup_before_ms"], rel=0.2)
    # Regeneration costs about one snapshot write.
    assert 300 <= result["regeneration_ms"] <= 600


def test_keepalive_policies(benchmark):
    results = benchmark.pedantic(run_keepalive_policy_comparison,
                                 rounds=1, iterations=1)
    emit("Extension — keep-alive policies: fixed vs hybrid histogram [48] "
         "vs snapshots",
         "\n".join(outcome.as_line() for outcome in results.values()))
    fixed = results["fixed-10min"]
    hybrid = results["hybrid-histogram"]
    fireworks = results["fireworks"]
    # The adaptive policy trades along the frontier: much less idle memory
    # at (nearly) the same warm-hit rate.
    assert hybrid.idle_sandbox_mb < fixed.idle_sandbox_mb * 0.7
    assert hybrid.warm_hit_rate > fixed.warm_hit_rate - 0.05
    # Fireworks sits off the frontier: no idle sandboxes AND the lowest
    # latency.
    assert fireworks.idle_sandbox_mb < 1.0
    assert fireworks.mean_latency_ms < hybrid.mean_latency_ms / 2


def test_warm_pool_vs_snapshot_policy(benchmark):
    result = benchmark.pedantic(
        lambda: run_policy_comparison(n_functions=16,
                                      duration_ms=1_200_000.0),
        rounds=1, iterations=1)
    emit("Ablation — warm pool vs snapshot on an Azure-like trace",
         f"events={result.events}\n"
         f"openwhisk: mean={result.openwhisk_mean_latency_ms:.1f}ms "
         f"warm-hit={result.openwhisk_warm_hit_rate:.0%} "
         f"idle-sandboxes={result.openwhisk_idle_sandbox_mb:.0f}M\n"
         f"fireworks: mean={result.fireworks_mean_latency_ms:.1f}ms "
         f"idle-sandboxes={result.fireworks_idle_sandbox_mb:.0f}M "
         f"(+{result.fireworks_image_cache_mb:.0f}M evictable image cache)")
    # §1: warm pools miss for rarely-invoked functions; Fireworks' flat
    # snapshot resume beats the mixed cold/warm mean.
    assert result.fireworks_mean_latency_ms < \
        result.openwhisk_mean_latency_ms
    # §2.2: warm containers sit idle holding memory; Fireworks holds no
    # idle sandboxes at all (only evictable page cache).
    assert result.fireworks_idle_sandbox_mb < \
        result.openwhisk_idle_sandbox_mb / 5
