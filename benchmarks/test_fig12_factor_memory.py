"""Figure 12: memory factor analysis (10 concurrent microVMs).

Paper (§5.5.2): the OS snapshot improves memory utilization up to 73%; Node
post-JIT reduces usage up to a further 74%; Python post-JIT shows no
significant improvement (Numba's MCJIT duplication dirties the JIT pages).
"""

from repro.bench import FACTOR_CONFIGS, fig12_improvements, run_fig12

from conftest import emit


def test_fig12_factor_memory(benchmark):
    fig12 = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    improvements = fig12_improvements(fig12)

    lines = [f"{'workload':<28} " + " ".join(f"{c:>14}"
                                             for c in FACTOR_CONFIGS)]
    for workload, per_config in sorted(fig12.items()):
        lines.append(f"{workload:<28} " + " ".join(
            f"{per_config[c]:>13.1f}M" for c in FACTOR_CONFIGS))
    lines.append("")
    for workload, values in sorted(improvements.items()):
        lines.append(
            f"{workload:<28} os-snap saves "
            f"{values['os_snapshot_vs_baseline_pct']:5.1f}%  post-jit "
            f"saves {values['post_jit_vs_os_snapshot_pct']:5.1f}% more")
    emit("Figure 12 — memory factor analysis (PSS per microVM, 10 VMs)",
         "\n".join(lines))

    # The OS snapshot always saves memory.
    for workload, per_config in fig12.items():
        assert per_config["+os-snapshot"] < per_config["firecracker"], \
            workload
    # Node.js post-JIT also shares app/heap/JIT pages.
    for workload, values in improvements.items():
        if workload.endswith("nodejs"):
            assert values["post_jit_vs_os_snapshot_pct"] > 20, workload
        else:
            # Python: Numba duplication eats the sharing benefit.
            assert values["post_jit_vs_os_snapshot_pct"] < 15, workload
    # Paper: up to 73% improvement from the OS snapshot.
    best = max(v["os_snapshot_vs_baseline_pct"]
               for v in improvements.values())
    assert 45 <= best <= 80
