"""Extension: burst-storm experiment on the paper's 64-core host.

256 simultaneous requests for one function.  Every baseline must push
sandbox construction through the shared core pool; Fireworks restores
post-JIT snapshots — cheap per-clone and memory-shared — so its tail
latency stays two orders of magnitude lower.
"""

from repro.bench import run_burst_comparison

from conftest import emit


def test_burst_storm(benchmark):
    results = benchmark.pedantic(
        lambda: run_burst_comparison(requests=256, cores=64),
        rounds=1, iterations=1)
    emit("Extension — 256-request burst on 64 cores (faas-netlatency)",
         "\n".join(result.as_line() for result in results.values()))

    fireworks = results["fireworks"]
    openwhisk = results["openwhisk"]
    firecracker = results["firecracker"]

    # Fireworks' p99 stays far below the container/VM baselines.
    assert fireworks.latency.p99_ms < openwhisk.latency.p99_ms / 5
    assert fireworks.latency.p99_ms < firecracker.latency.p99_ms / 20
    # And it drains the burst fastest.
    assert fireworks.makespan_ms < min(openwhisk.makespan_ms,
                                       firecracker.makespan_ms)
    # OpenWhisk recycles containers mid-burst (warm hits > 0), Firecracker
    # boots everything.
    assert openwhisk.warm_share > 0.3
    assert firecracker.warm_share == 0.0
