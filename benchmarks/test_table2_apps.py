"""Table 2: the tested serverless applications."""

from repro.bench import run_table2

from conftest import emit


def test_table2_applications(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    body = "\n".join(f"{row['application']:<34} {row['description']:<50} "
                     f"{row['language']}" for row in rows)
    emit("Table 2: Tested serverless applications", body)

    applications = {row["application"] for row in rows}
    assert applications == {
        "FaaSdom: faas-fact",
        "FaaSdom: faas-matrix-mult",
        "FaaSdom: faas-diskio",
        "FaaSdom: faas-netlatency",
        "ServerlessBench: alexa-skills",
        "ServerlessBench: data-analysis",
    }
    faasdom_rows = [r for r in rows if r["application"].startswith("FaaSdom")]
    assert all(r["language"] == "Node.js, Python" for r in faasdom_rows)
