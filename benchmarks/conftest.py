"""Shared helpers for the per-figure benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure from the
paper's evaluation (§5) and prints the regenerated rows/series, so running
``pytest benchmarks/ --benchmark-only`` reproduces the whole evaluation.
"""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print a regenerated figure/table block (shown with -s or on the
    captured report)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")
