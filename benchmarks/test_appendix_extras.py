"""Appendix: the extra FaaSdom workloads the paper's figures omit.

faas-gzip (native-heavy compression) and faas-image-resize (vectorizable
pixel loops) run through the same cold/warm/snapshot comparison as Fig 6/7.
They bracket the post-JIT benefit: gzip gains little even in Python (the
work is already native), image-resize gains Numba-vectorization-class
speedups.
"""

from repro.bench import cold_and_warm, fireworks_invocation
from repro.platforms import FirecrackerPlatform
from repro.workloads import EXTRA_BENCHMARK_NAMES, faasdom_spec

from conftest import emit


def test_appendix_extra_workloads(benchmark):
    def run_all():
        results = {}
        for name in EXTRA_BENCHMARK_NAMES:
            for language in ("nodejs", "python"):
                spec = faasdom_spec(name, language)
                cold, _warm = cold_and_warm(FirecrackerPlatform, spec)
                fireworks = fireworks_invocation(spec)
                results[spec.name] = (cold, fireworks)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = []
    for spec_name, (cold, fireworks) in results.items():
        lines.append(
            f"{spec_name:<28} firecracker-cold={cold.total_ms:8.1f}ms "
            f"fireworks={fireworks.total_ms:7.1f}ms "
            f"exec-speedup={cold.exec_ms / fireworks.exec_ms:5.1f}x")
    emit("Appendix — extra FaaSdom workloads (not in the paper's figures)",
         "\n".join(lines))

    # Fireworks wins end-to-end everywhere.
    for cold, fireworks in results.values():
        assert fireworks.total_ms < cold.total_ms

    # The bracket: gzip's Python exec speedup (native zlib) is far below
    # image-resize's (vectorizable pixel loops).
    gzip_speedup = (results["faas-gzip-python"][0].exec_ms
                    / results["faas-gzip-python"][1].exec_ms)
    resize_speedup = (results["faas-image-resize-python"][0].exec_ms
                      / results["faas-image-resize-python"][1].exec_ms)
    assert resize_speedup > 4 * gzip_speedup
