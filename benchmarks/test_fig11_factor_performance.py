"""Figure 11: performance factor analysis.

Baseline Firecracker (no snapshot) -> +VM-level OS snapshot -> +post-JIT
snapshot, per FaaSdom benchmark and language (§5.5.1).
"""

from repro.bench import run_fig11

from conftest import emit


def test_fig11_factor_performance(benchmark):
    fig11 = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    emit("Figure 11 — performance factor analysis",
         "\n".join(row.as_line() for row in fig11.values()))

    # Each factor helps, for every workload.
    for workload, row in fig11.items():
        assert row.os_snapshot_speedup > 1.0, workload
        assert row.post_jit_over_os_speedup > 1.0, workload

    # Paper: +OS snapshot ~2.3x for Node compute workloads.
    assert 1.8 <= fig11["faas-fact-nodejs"].os_snapshot_speedup <= 3.5
    # Paper: up to 6.1x for network-intensive workloads.
    assert 4.5 <= fig11["faas-netlatency-nodejs"].os_snapshot_speedup <= 9.0
    # §5.5.1: start-up dominates I/O-light workloads, so the OS-snapshot
    # factor is largest for netlatency.
    assert fig11["faas-netlatency-nodejs"].os_snapshot_speedup > \
        fig11["faas-fact-nodejs"].os_snapshot_speedup
    # §5.5.1: the Python interpreter never JITs, so post-JIT's increment is
    # much larger for Python than for Node.js.
    assert fig11["faas-fact-python"].post_jit_over_os_speedup > \
        3 * fig11["faas-fact-nodejs"].post_jit_over_os_speedup
    # §5.5.1: JIT triggers near the end of the Node I/O benchmarks, so
    # post-JIT still wins clearly there.
    for workload in ("faas-diskio-nodejs", "faas-netlatency-nodejs"):
        assert fig11[workload].post_jit_over_os_speedup > 1.2
