"""The machine-checked scorecard: every headline claim, paper vs measured."""

from repro.bench.paper import comparison_summary, headline_comparisons
from repro.bench.results import format_comparisons

from conftest import emit


def test_headline_scorecard(benchmark):
    comparisons = benchmark.pedantic(headline_comparisons, rounds=1,
                                     iterations=1)
    emit("Scorecard — every headline claim of §5",
         format_comparisons("Fireworks headline claims", comparisons))

    summary = comparison_summary(comparisons)
    assert summary["total"] >= 14
    # Every tracked claim must hold within its band.
    failing = [c.metric for c in comparisons if not c.holds]
    assert not failing, f"claims out of band: {failing}"
