"""Figure 7: latency comparison of the Python FaaSdom benchmarks."""

import pytest

from repro.bench import run_faasdom_benchmark, run_fig7

from conftest import emit


def _check_fact(fig7):
    fact = fig7["faas-fact"]
    fw = fact.row("fireworks", "snapshot")
    fc_cold = fact.row("firecracker", "cold")
    # Paper: 59.8x faster cold start-up.
    assert 40 <= fc_cold.startup_ms / fw.startup_ms <= 90
    # Paper: 20x faster execution cold, 14.6x warm.
    assert 15 <= fc_cold.exec_ms / fw.exec_ms <= 25
    warm = fact.row("firecracker", "warm")
    assert 12 <= warm.exec_ms / fw.exec_ms <= 25


def _check_matmul(fig7):
    # Paper: up to 74.2x faster cold start-up, 80x faster execution.
    matmul = fig7["faas-matrix-mult"]
    fw = matmul.row("fireworks", "snapshot")
    assert matmul.row("firecracker", "cold").exec_ms / fw.exec_ms >= 55
    assert matmul.row("firecracker", "cold").startup_ms / \
        fw.startup_ms >= 40


def _check_cross_language(fig7):
    # §5.2.2: Python is in general slower than Node.js (compute)...
    node_fact = run_faasdom_benchmark("faas-fact", "nodejs")
    py_cold = fig7["faas-fact"].row("firecracker", "cold").exec_ms
    assert py_cold > node_fact.row("firecracker", "cold").exec_ms
    # ...but I/O performance is similar (§5.2.2(3)).
    node_diskio = run_faasdom_benchmark("faas-diskio", "nodejs")
    py_fw = fig7["faas-diskio"].row("fireworks", "snapshot").exec_ms
    node_fw = node_diskio.row("fireworks", "snapshot").exec_ms
    assert py_fw == pytest.approx(node_fw, rel=0.35)


def _check_geomean(fig7):
    # Paper: overall up to 19x (2.2x larger than Node's 8.6x).
    geomean = fig7["geomean"]
    fw = geomean.row("fireworks", "snapshot").total_ms
    worst = max(row.total_ms for row in geomean.rows)
    assert worst / fw >= 10


def test_fig7_python_faasdom(benchmark):
    fig7 = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    for key in ("faas-fact", "faas-matrix-mult", "faas-diskio",
                "faas-netlatency", "geomean"):
        emit(f"Figure 7 — {key} (Python)", fig7[key].as_table())
    _check_fact(fig7)
    _check_matmul(fig7)
    _check_cross_language(fig7)
    _check_geomean(fig7)
