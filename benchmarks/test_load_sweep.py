"""Extension: sustained-load sweep — where each platform saturates.

Open-loop Poisson arrivals of faas-netlatency at increasing rates on the
64-core host.  Plain Firecracker saturates once 64 cores cannot absorb
~2.3 s of boot work per request (~27 rps); OpenWhisk keeps up through
container reuse but with cold-start tails; Fireworks stays flat — the
throughput corollary of the paper's consolidation argument (§2.2).
"""

import pytest

from repro.bench.concurrency import run_load_sweep
from repro.core.fireworks import FireworksPlatform
from repro.platforms.firecracker import FirecrackerPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform

from conftest import emit

RATES = (25.0, 100.0, 400.0)


def test_load_sweep(benchmark):
    def sweep_all():
        return {
            cls.name: run_load_sweep(cls, rates_rps=RATES,
                                     duration_ms=8000.0)
            for cls in (FireworksPlatform, OpenWhiskPlatform,
                        FirecrackerPlatform)
        }

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    lines = []
    for platform, points in results.items():
        for rate, point in points.items():
            lines.append(
                f"{platform:<14} offered={rate:6.0f}rps "
                f"achieved={point.achieved_rps:7.1f} "
                f"p50={point.latency.p50_ms:9.1f}ms "
                f"p99={point.latency.p99_ms:10.1f}ms "
                f"{'SATURATED' if point.saturated else ''}")
    emit("Extension — sustained-load sweep (faas-netlatency, 64 cores)",
         "\n".join(lines))

    fw = results["fireworks"]
    fc = results["firecracker"]
    ow = results["openwhisk"]

    # Fireworks: flat latency at every offered rate, never saturated.
    p50s = [point.latency.p50_ms for point in fw.values()]
    assert max(p50s) - min(p50s) < 5.0
    assert not any(point.saturated for point in fw.values())

    # Firecracker: saturates early; throughput caps at the queueing-theory
    # bound, cores / per-request core occupancy (~2.37 s of boot+exec).
    top_rate = max(RATES)
    assert fc[top_rate].saturated
    service_s = 2.37
    theoretical_rps = 64 / service_s
    assert fc[top_rate].achieved_rps == pytest.approx(theoretical_rps,
                                                      rel=0.15)

    # OpenWhisk keeps up on throughput but with a heavy p99 tail.
    assert ow[top_rate].achieved_rps > 300
    assert ow[top_rate].latency.p99_ms > 10 * fw[top_rate].latency.p99_ms
