"""Figure 10: memory usage / consolidation, Firecracker vs Fireworks.

Paper (§5.4): on a 128 GB host with vm.swappiness=60, Fireworks launches
565 microVMs before swapping vs Firecracker's 337 — about 1.68x more.
"""

import pytest

from repro.bench import run_fig10

from conftest import emit


def test_fig10_memory_usage(benchmark):
    fig10 = benchmark.pedantic(lambda: run_fig10(sample_every=50),
                               rounds=1, iterations=1)
    emit("Figure 10 — memory usage vs number of microVMs",
         "\n".join(series.as_table() for series in fig10.values()))

    fw = fig10["fireworks"].max_vms_before_swap
    fc = fig10["firecracker"].max_vms_before_swap
    # Paper: 565 vs 337 — about 1.68x more sandboxes.
    assert fw / fc == pytest.approx(1.68, rel=0.15)
    assert 280 <= fc <= 400
    assert 480 <= fw <= 650

    for series in fig10.values():
        used = [point.host_used_mb for point in series.points]
        assert used == sorted(used)
    fw_last = fig10["fireworks"].points[-1]
    fc_last = fig10["firecracker"].points[-1]
    assert fw_last.mean_pss_mb < fc_last.mean_pss_mb
