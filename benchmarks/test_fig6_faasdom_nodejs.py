"""Figure 6: latency comparison of the Node.js FaaSdom benchmarks.

Regenerates all five sub-figures (fact, matrix-mult, diskio, netlatency,
geometric mean) with the start-up / exec / others breakdown, and checks the
paper's headline ratios in band.  (The same claims are asserted one-by-one
in tests/integration/test_paper_claims.py.)
"""

from repro.bench import run_fig6

from conftest import emit


def _check_fact(fig6):
    fact = fig6["faas-fact"]
    fw = fact.row("fireworks", "snapshot")
    fc_cold = fact.row("firecracker", "cold")
    # Paper: up to 133x faster cold start-up.
    assert 80 <= fc_cold.startup_ms / fw.startup_ms <= 200
    # Paper: up to 3.8x faster warm start-up.
    worst_warm = max(fact.row(p, "warm").startup_ms
                     for p in ("openwhisk", "gvisor", "firecracker"))
    assert 2.0 <= worst_warm / fw.startup_ms <= 6.0
    # Paper: up to 38% faster execution in cold cases.
    assert 0.25 <= 1 - fw.exec_ms / fc_cold.exec_ms <= 0.50


def _check_cold_ordering(fig6):
    for key in ("faas-fact", "faas-matrix-mult", "faas-diskio",
                "faas-netlatency"):
        result = fig6[key]
        fc = result.row("firecracker", "cold").startup_ms
        assert fc >= result.row("gvisor", "cold").startup_ms
        assert fc >= result.row("openwhisk", "cold").startup_ms


def _check_diskio(fig6):
    # §5.2.1(2): gVisor slowest I/O; container faster than microVM.
    diskio = fig6["faas-diskio"]
    gv = diskio.row("gvisor", "cold").exec_ms
    fw = diskio.row("fireworks", "snapshot").exec_ms
    ow = diskio.row("openwhisk", "cold").exec_ms
    assert gv / fw >= 6
    assert ow < fw


def _check_netlatency(fig6):
    # Paper: up to 25x faster cold start-up, 22x faster end-to-end.
    net = fig6["faas-netlatency"]
    fw = net.row("fireworks", "snapshot")
    worst_cold = max(net.row(p, "cold").total_ms
                     for p in ("openwhisk", "gvisor", "firecracker"))
    assert worst_cold / fw.total_ms >= 20


def _check_geomean(fig6):
    # Paper: up to 8.6x shorter latency overall (geometric mean).
    geomean = fig6["geomean"]
    fw = geomean.row("fireworks", "snapshot").total_ms
    worst = max(row.total_ms for row in geomean.rows)
    assert 5 <= worst / fw <= 60


def test_fig6_nodejs_faasdom(benchmark):
    fig6 = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    for key in ("faas-fact", "faas-matrix-mult", "faas-diskio",
                "faas-netlatency", "geomean"):
        emit(f"Figure 6 — {key} (Node.js)", fig6[key].as_table())
    _check_fact(fig6)
    _check_cold_ordering(fig6)
    _check_diskio(fig6)
    _check_netlatency(fig6)
    _check_geomean(fig6)
