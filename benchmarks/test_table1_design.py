"""Table 1: design comparison of serverless platforms."""

from repro.bench import run_table1

from conftest import emit


def _format(rows) -> str:
    lines = [f"{'platform':<22} {'isolation':<22} {'performance':<26} "
             f"{'memory efficiency'}"]
    for row in rows:
        lines.append(f"{row['platform']:<22} {row['isolation']:<22} "
                     f"{row['performance']:<26} {row['memory_efficiency']}")
    return "\n".join(lines)


def test_table1_design_comparison(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit("Table 1: Design comparison of serverless platforms",
         _format(rows))

    by_name = {row["platform"]: row for row in rows}
    # The paper's qualitative claims.
    assert by_name["fireworks"]["isolation"] == "High (VM)"
    assert by_name["firecracker"]["isolation"] == "High (VM)"
    assert "container" in by_name["openwhisk"]["isolation"].lower()
    assert "extreme" in by_name["fireworks"]["performance"].lower()
    assert "extreme" in by_name["fireworks"]["memory_efficiency"].lower()
    assert len(rows) == 6
