"""Figure 4, measured: what a post-JIT snapshot shares across clones.

The paper's diagram (§3.3) claims the VM-level memory snapshot shares "the
states of the microVM, OS, library, runtime, and even the JITted code" in
CoW fashion.  This bench launches 10 clones and reports, per guest region,
how much of one clone's memory is still shared.
"""

from repro.bench.memory import run_fig4_view

from conftest import emit


def test_fig4_sharing(benchmark):
    view = benchmark.pedantic(lambda: run_fig4_view(n_clones=10),
                              rounds=1, iterations=1)
    lines = [f"{'region':<10} {'RSS':>8} {'PSS':>8} {'shared'}"]
    for region, stats in sorted(view.items()):
        lines.append(f"{region:<10} {stats['rss_mb']:>7.1f}M "
                     f"{stats['pss_mb']:>7.1f}M "
                     f"{stats['shared_fraction']:>6.1%}")
    emit("Figure 4 — per-region sharing across 10 snapshot clones",
         "\n".join(lines))

    # The paper's claim, region by region: OS, runtime, app text and even
    # the JITted code are overwhelmingly shared...
    for region in ("kernel", "runtime", "app", "jit_code"):
        assert view[region]["shared_fraction"] > 0.75, region
    # ...while argument-specific execution state (heap) is mostly private
    # and the host-side VMM is entirely private.
    assert view["heap"]["shared_fraction"] < 0.55
    assert view["vmm"]["shared_fraction"] == 0.0
