"""§5.1: post-JIT snapshot creation time during the installation phase.

Paper: snapshot creation takes 0.36-0.47 s for FaaSdom in Node.js and
0.38-0.44 s in Python; npm installation dominates Node install time and
Numba compilation scales with app complexity for Python.
"""

from repro.bench import run_snapshot_creation_times

from conftest import emit


def test_snapshot_creation_times(benchmark):
    results = benchmark.pedantic(run_snapshot_creation_times, rounds=1,
                                 iterations=1)
    lines = [f"{'function':<28} {'annotate':>9} {'boot':>9} {'jit':>8} "
             f"{'snapshot':>9} {'total':>9}"]
    for name, parts in sorted(results.items()):
        lines.append(
            f"{name:<28} {parts['annotate_ms']:>8.0f}m "
            f"{parts['boot_ms']:>8.0f}m {parts['jit_ms']:>7.1f}m "
            f"{parts['snapshot_ms']:>8.0f}m {parts['total_ms']:>8.0f}m")
    emit("§5.1: post-JIT snapshot creation time", "\n".join(lines))

    for name, parts in results.items():
        # Paper band: 0.36-0.47 s for the snapshot write itself.
        assert 360 <= parts["snapshot_ms"] <= 470, name
        if name.endswith("nodejs"):
            # npm package loading dominates over JIT for Node (§5.1).
            assert parts["jit_ms"] < 10
    # Numba compilation costs more than TurboFan hooks (§5.1).
    assert results["faas-fact-python"]["jit_ms"] > \
        results["faas-fact-nodejs"]["jit_ms"]
