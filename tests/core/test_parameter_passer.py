"""Unit tests for the Kafka-based parameter passer (§3.6)."""

import pytest

from repro.config import default_parameters
from repro.core.parameter_passer import ParameterPasser, topic_for
from repro.errors import BusError
from repro.platforms.bus import MessageBus
from repro.sim import Simulation
from tests.helpers import run


@pytest.fixture
def passer():
    sim = Simulation()
    return sim, ParameterPasser(sim, MessageBus(),
                                default_parameters().fireworks)


class TestTopics:
    def test_topic_naming_matches_figure3(self):
        assert topic_for("fc42") == "topicfc42"


class TestPublishFetch:
    def test_round_trip(self, passer):
        sim, parameter_passer = passer
        run(sim, parameter_passer.publish("fc1", {"n": 7}))
        params = run(sim, parameter_passer.fetch("fc1"))
        assert params == {"n": 7}

    def test_fetch_takes_latest(self, passer):
        sim, parameter_passer = passer
        run(sim, parameter_passer.publish("fc1", {"stale": True}))
        run(sim, parameter_passer.publish("fc1", {"fresh": True}))
        assert run(sim, parameter_passer.fetch("fc1")) == {"fresh": True}

    def test_fetch_without_publish_raises(self, passer):
        sim, parameter_passer = passer
        with pytest.raises(BusError):
            run(sim, parameter_passer.fetch("fc-ghost"))

    def test_instances_are_isolated(self, passer):
        """Two clones resumed concurrently read their own arguments."""
        sim, parameter_passer = passer
        run(sim, parameter_passer.publish("fc1", {"for": 1}))
        run(sim, parameter_passer.publish("fc2", {"for": 2}))
        assert run(sim, parameter_passer.fetch("fc2")) == {"for": 2}
        assert run(sim, parameter_passer.fetch("fc1")) == {"for": 1}

    def test_costs_charged(self, passer):
        sim, parameter_passer = passer
        cfg = default_parameters().fireworks
        run(sim, parameter_passer.publish("fc1", {}))
        assert sim.now == pytest.approx(cfg.param_publish_ms)
        run(sim, parameter_passer.fetch("fc1"))
        assert sim.now == pytest.approx(
            cfg.param_publish_ms + cfg.param_fetch_ms)

    def test_publish_copies_params(self, passer):
        sim, parameter_passer = passer
        payload = {"n": 1}
        run(sim, parameter_passer.publish("fc1", payload))
        payload["n"] = 999
        assert run(sim, parameter_passer.fetch("fc1")) == {"n": 1}


class TestConsumeAtOffset:
    """Regression: fetch must read the record publish wrote, not whatever
    happens to be newest on the topic at consume time."""

    def test_record_produced_between_publish_and_fetch_is_ignored(
            self, passer):
        sim, parameter_passer = passer
        run(sim, parameter_passer.publish("fc1", {"mine": True}))
        # Someone else touches the topic before the guest resumes (a
        # retried duplicate, an operator, a misrouted producer).
        parameter_passer.bus.produce(topic_for("fc1"), {"foreign": True},
                                     timestamp_ms=sim.now)
        assert run(sim, parameter_passer.fetch("fc1")) == {"mine": True}

    def test_consume_latest_would_be_stale(self, passer):
        """Documents the race the offset fix closes."""
        sim, parameter_passer = passer
        run(sim, parameter_passer.publish("fc1", {"mine": True}))
        parameter_passer.bus.produce(topic_for("fc1"), {"foreign": True},
                                     timestamp_ms=sim.now)
        latest = parameter_passer.bus.consume_latest(topic_for("fc1"))
        assert latest.value == {"foreign": True}  # the bug, pre-fix

    def test_offset_cleared_after_fetch(self, passer):
        sim, parameter_passer = passer
        run(sim, parameter_passer.publish("fc1", {"n": 1}))
        run(sim, parameter_passer.fetch("fc1"))
        assert "fc1" not in parameter_passer._published

    def test_fetch_without_tracked_offset_falls_back_to_latest(
            self, passer):
        sim, parameter_passer = passer
        # Published out-of-band (not through this passer instance).
        parameter_passer.bus.produce(topic_for("fc9"), {"raw": True},
                                     timestamp_ms=sim.now)
        assert run(sim, parameter_passer.fetch("fc9")) == {"raw": True}

    def test_malformed_record_still_raises(self, passer):
        sim, parameter_passer = passer
        run(sim, parameter_passer.publish("fc1", {"ok": True}))
        parameter_passer._published["fc1"] = parameter_passer.bus.produce(
            topic_for("fc1"), "not-a-dict", timestamp_ms=sim.now).offset
        with pytest.raises(BusError):
            run(sim, parameter_passer.fetch("fc1"))
