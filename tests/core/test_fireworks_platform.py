"""Integration-style unit tests for the Fireworks platform."""

import pytest

from repro.config import default_parameters
from repro.core import FireworksPlatform
from repro.platforms import MODE_SNAPSHOT, MODE_COLD
from repro.sim import Simulation
from repro.workloads import faasdom_spec
from tests.helpers import run


@pytest.fixture
def params():
    return default_parameters()


@pytest.fixture
def fw(params):
    sim = Simulation()
    platform = FireworksPlatform(sim, params)
    spec = faasdom_spec("faas-fact", "nodejs")
    run(sim, platform.install(spec))
    return platform, spec


class TestInvocation:
    def test_always_snapshot_mode(self, fw):
        """§5.1: Fireworks has no cold/warm distinction."""
        platform, spec = fw
        for forced_mode in (MODE_COLD, "warm", "auto"):
            record = run(platform.sim,
                         platform.invoke(spec.name, mode=forced_mode))
            assert record.mode == MODE_SNAPSHOT

    def test_startup_far_below_warm_baselines(self, fw, params):
        platform, spec = fw
        record = run(platform.sim, platform.invoke(spec.name))
        assert record.startup_ms < params.latency("microvm").resume_paused_ms

    def test_exec_fully_jitted(self, fw):
        platform, spec = fw
        record = run(platform.sim, platform.invoke(spec.name))
        assert record.guest.jit_compile_ms == 0

    def test_startup_includes_param_fetch(self, fw, params):
        platform, spec = fw
        record = run(platform.sim, platform.invoke(spec.name))
        fwcfg = params.fireworks
        minimum = (fwcfg.netns_setup_ms + fwcfg.mmds_write_ms
                   + fwcfg.param_fetch_ms)
        assert record.startup_ms > minimum

    def test_param_publish_counted_as_other(self, fw, params):
        platform, spec = fw
        record = run(platform.sim, platform.invoke(spec.name))
        cp = params.control_plane
        frontend = (cp.gateway_route_ms + cp.controller_dispatch_ms
                    + cp.bus_publish_ms)
        assert record.other_ms == pytest.approx(
            frontend + params.fireworks.param_publish_ms)

    def test_clone_teardown_releases_all_but_page_cache(self, fw):
        platform, spec = fw
        run(platform.sim, platform.invoke(spec.name))
        platform.sim.run()
        image = platform.image_for(spec.name)
        assert platform.host_memory.used_mb == pytest.approx(image.size_mb)
        assert platform.bridge.endpoint_count() == 0

    def test_concurrent_clones_have_distinct_fc_ids(self, fw):
        platform, spec = fw
        platform.retain_workers = True
        first = run(platform.sim, platform.invoke(spec.name))
        second = run(platform.sim, platform.invoke(spec.name))
        id1 = first.worker.sandbox.mmds.get("fcID")
        id2 = second.worker.sandbox.mmds.get("fcID")
        assert id1 != id2

    def test_clones_share_guest_identity_different_external(self, fw):
        platform, spec = fw
        platform.retain_workers = True
        first = run(platform.sim, platform.invoke(spec.name))
        second = run(platform.sim, platform.invoke(spec.name))
        assert first.worker.sandbox.guest_ip == \
            second.worker.sandbox.guest_ip
        assert first.worker.endpoint.external_ip != \
            second.worker.endpoint.external_ip


class TestRegeneration:
    def test_generation_bumps_and_restores_work(self, fw):
        platform, spec = fw
        image = run(platform.sim,
                    platform.regenerate_snapshot(spec.name))
        assert image.generation == 2
        record = run(platform.sim, platform.invoke(spec.name))
        assert record.mode == MODE_SNAPSHOT

    def test_old_page_cache_released_when_unused(self, fw):
        platform, spec = fw
        old = platform.image_for(spec.name)
        old.materialize(platform.host_memory)
        used_with_old = platform.host_memory.used_mb
        run(platform.sim, platform.regenerate_snapshot(spec.name))
        # Old image was evicted from the store; with no live clones its
        # page cache is dropped.
        assert platform.host_memory.used_mb < used_with_old + 1


class TestInstallReports:
    def test_reports_kept_per_function(self, fw):
        platform, spec = fw
        assert spec.name in platform.install_reports
        report = platform.install_reports[spec.name]
        assert report.image.key == spec.name
