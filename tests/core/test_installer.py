"""Unit tests for the Fireworks installation phase."""

import pytest

from repro.core.installer import Installer
from repro.errors import AnnotationError
from repro.net.bridge import HostBridge
from repro.snapshot.image import STAGE_POST_JIT
from repro.workloads import faasdom_spec
from repro.workloads.base import FunctionSpec
from tests.helpers import run


@pytest.fixture
def installer(sim, params, host):
    return Installer(sim, params, host, HostBridge())


class TestInstall:
    def test_produces_post_jit_image(self, sim, installer):
        spec = faasdom_spec("faas-fact", "python")
        report = run(sim, installer.install(spec))
        assert report.image.stage == STAGE_POST_JIT
        assert report.image.jit_state["main"].tier == "optimized"
        assert report.image.app is spec.app

    def test_report_decomposition_sums(self, sim, installer):
        spec = faasdom_spec("faas-fact", "python")
        report = run(sim, installer.install(spec))
        assert report.total_ms == pytest.approx(
            report.annotate_ms + report.boot_ms + report.jit_ms
            + report.snapshot_ms)
        assert sim.now == pytest.approx(
            report.total_ms + 30.0)  # + installer VM teardown

    def test_installer_vm_released(self, sim, host, installer):
        spec = faasdom_spec("faas-fact", "nodejs")
        run(sim, installer.install(spec))
        # Only the image page cache (if materialized later) may remain;
        # right after install nothing is resident.
        assert host.used_mb == 0

    def test_snapshot_time_in_paper_band(self, sim, installer):
        """§5.1: 0.36-0.47 s (Node.js), 0.38-0.44 s (Python)."""
        for language in ("nodejs", "python"):
            spec = faasdom_spec("faas-matrix-mult", language)
            report = run(sim, installer.install(spec))
            assert 360 <= report.snapshot_ms <= 470, language

    def test_python_jit_cost_exceeds_node(self, sim, installer):
        """§5.1: Python install time depends on Numba compilation; Node's
        TurboFan hook compile is cheaper."""
        node = run(sim, installer.install(faasdom_spec("faas-fact",
                                                       "nodejs")))
        python = run(sim, installer.install(faasdom_spec("faas-fact",
                                                         "python")))
        assert python.jit_ms > node.jit_ms

    def test_source_is_annotated(self, sim, installer):
        spec = faasdom_spec("faas-diskio", "python")
        report = run(sim, installer.install(spec))
        assert "__fireworks_main" in report.annotated.annotated
        assert report.annotated.entry_point == "main"

    def test_missing_source_raises(self, sim, installer):
        spec = faasdom_spec("faas-fact", "nodejs")
        bare = FunctionSpec(name="bare", language="nodejs", app=spec.app,
                            make_program=spec.make_program, source="")
        with pytest.raises(AnnotationError, match="no source"):
            run(sim, installer.install(bare))

    def test_annotation_cost_scales_with_functions(self, sim, params,
                                                   installer):
        one = run(sim, installer.install(faasdom_spec("faas-fact",
                                                      "python")))
        two = run(sim, installer.install(faasdom_spec("faas-matrix-mult",
                                                      "python")))
        assert two.annotate_ms == pytest.approx(2 * one.annotate_ms)
