"""Fault-injection tests: the control plane's recovery paths."""

import pytest

from repro.bench import fresh_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.errors import ReproError
from repro.faults import (FaultInjector, InjectedFault,
                          SnapshotCorruptedError)
from repro.workloads import faasdom_spec


@pytest.fixture
def faulty_platform():
    faults = FaultInjector()
    platform = fresh_platform(FireworksPlatform, faults=faults)
    spec = faasdom_spec("faas-fact", "nodejs")
    install_all(platform, [spec])
    return platform, spec, faults


class TestInjector:
    def test_unarmed_never_fails(self):
        injector = FaultInjector()
        assert not injector.should_fail("restore", "fn")
        injector.check("restore", "fn")  # no raise

    def test_budget_consumed(self):
        injector = FaultInjector()
        injector.arm("restore", "fn", count=2)
        assert injector.should_fail("restore", "fn")
        assert injector.should_fail("restore", "fn")
        assert not injector.should_fail("restore", "fn")
        assert injector.fired[("restore", "fn")] == 2

    def test_check_raises_typed_errors(self):
        injector = FaultInjector()
        injector.arm("restore", "fn")
        with pytest.raises(SnapshotCorruptedError):
            injector.check("restore", "fn")
        injector.arm("db", "wages")
        with pytest.raises(InjectedFault) as excinfo:
            injector.check("db", "wages")
        assert excinfo.value.kind == "db"

    def test_bad_count_raises(self):
        with pytest.raises(ReproError):
            FaultInjector().arm("restore", "fn", count=0)

    def test_keys_are_independent(self):
        injector = FaultInjector()
        injector.arm("restore", "a")
        assert not injector.should_fail("restore", "b")
        assert injector.should_fail("restore", "a")


class TestRestoreRecovery:
    def test_one_corruption_is_recovered(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("restore", spec.name, count=1)
        record = invoke_once(platform, spec.name)
        assert record.mode == "snapshot"
        assert platform.restore_failures == 1
        # Recovery regenerated the snapshot (bumped generation).
        assert platform.image_for(spec.name).generation == 2

    def test_recovery_pays_regeneration_time(self, faulty_platform):
        platform, spec, faults = faulty_platform
        clean = invoke_once(platform, spec.name)
        faults.arm("restore", spec.name, count=1)
        recovered = invoke_once(platform, spec.name)
        assert recovered.startup_ms > clean.startup_ms + 300

    def test_persistent_corruption_propagates(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("restore", spec.name, count=5)
        with pytest.raises(SnapshotCorruptedError):
            invoke_once(platform, spec.name)

    def test_no_network_leak_on_failure(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("restore", spec.name, count=5)
        with pytest.raises(SnapshotCorruptedError):
            invoke_once(platform, spec.name)
        assert platform.bridge.endpoint_count() == 0


class TestParamFetchRecovery:
    def test_transient_fetch_failures_retried(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("param-fetch", spec.name, count=2)
        record = invoke_once(platform, spec.name)
        assert record.mode == "snapshot"
        assert platform.param_fetch_retries == 2

    def test_persistent_fetch_failure_propagates(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("param-fetch", spec.name, count=10)
        with pytest.raises(InjectedFault):
            invoke_once(platform, spec.name)

    def test_retries_cost_time(self, faulty_platform):
        platform, spec, faults = faulty_platform
        clean = invoke_once(platform, spec.name)
        faults.arm("param-fetch", spec.name, count=2)
        retried = invoke_once(platform, spec.name)
        assert retried.startup_ms > clean.startup_ms
