"""Fault-injection tests: the control plane's recovery paths."""

import pytest

from repro.bench import fresh_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.errors import ReproError
from repro.faults import (FaultInjector, InjectedFault,
                          SnapshotCorruptedError)
from repro.workloads import REMINDER_DB, alexa_skills_chain, faasdom_spec


@pytest.fixture
def faulty_platform():
    faults = FaultInjector()
    platform = fresh_platform(FireworksPlatform, faults=faults)
    spec = faasdom_spec("faas-fact", "nodejs")
    install_all(platform, [spec])
    return platform, spec, faults


class TestInjector:
    def test_unarmed_never_fails(self):
        injector = FaultInjector()
        assert not injector.should_fail("restore", "fn")
        injector.check("restore", "fn")  # no raise

    def test_budget_consumed(self):
        injector = FaultInjector()
        injector.arm("restore", "fn", count=2)
        assert injector.should_fail("restore", "fn")
        assert injector.should_fail("restore", "fn")
        assert not injector.should_fail("restore", "fn")
        assert injector.fired[("restore", "fn")] == 2

    def test_check_raises_typed_errors(self):
        injector = FaultInjector()
        injector.arm("restore", "fn")
        with pytest.raises(SnapshotCorruptedError):
            injector.check("restore", "fn")
        injector.arm("db", "wages")
        with pytest.raises(InjectedFault) as excinfo:
            injector.check("db", "wages")
        assert excinfo.value.kind == "db"

    def test_bad_count_raises(self):
        with pytest.raises(ReproError):
            FaultInjector().arm("restore", "fn", count=0)

    def test_keys_are_independent(self):
        injector = FaultInjector()
        injector.arm("restore", "a")
        assert not injector.should_fail("restore", "b")
        assert injector.should_fail("restore", "a")


class TestInjectorReset:
    """Regression: armed budgets must not survive across experiment
    repetitions — a shared injector once leaked a half-consumed budget
    into the next run inside the parallel engine."""

    def test_reset_clears_budgets_and_history(self):
        injector = FaultInjector()
        injector.arm("restore", "fn", count=3)
        assert injector.should_fail("restore", "fn")
        injector.reset()
        assert not injector.should_fail("restore", "fn")
        assert injector.fired == {}
        assert injector.armed("restore", "fn") == 0

    def test_reset_makes_repetitions_identical(self):
        # Same injector, two "runs" of one-fault-then-invoke-twice: with
        # reset between them the second run sees the same fault schedule
        # as the first, not a depleted one.
        injector = FaultInjector()
        schedules = []
        for _ in range(2):
            injector.reset()
            injector.arm("restore", "fn", count=1)
            schedules.append([injector.should_fail("restore", "fn")
                              for _ in range(3)])
        assert schedules[0] == schedules[1] == [True, False, False]


class TestRestoreRecovery:
    def test_one_corruption_is_recovered(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("restore", spec.name, count=1)
        record = invoke_once(platform, spec.name)
        assert record.mode == "snapshot"
        assert platform.restore_failures == 1
        # Recovery regenerated the snapshot (bumped generation).
        assert platform.image_for(spec.name).generation == 2

    def test_recovery_pays_regeneration_time(self, faulty_platform):
        platform, spec, faults = faulty_platform
        clean = invoke_once(platform, spec.name)
        faults.arm("restore", spec.name, count=1)
        recovered = invoke_once(platform, spec.name)
        assert recovered.startup_ms > clean.startup_ms + 300

    def test_persistent_corruption_propagates(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("restore", spec.name, count=5)
        with pytest.raises(SnapshotCorruptedError):
            invoke_once(platform, spec.name)

    def test_no_network_leak_on_failure(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("restore", spec.name, count=5)
        with pytest.raises(SnapshotCorruptedError):
            invoke_once(platform, spec.name)
        assert platform.bridge.endpoint_count() == 0


class TestParamFetchRecovery:
    def test_transient_fetch_failures_retried(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("param-fetch", spec.name, count=2)
        record = invoke_once(platform, spec.name)
        assert record.mode == "snapshot"
        assert platform.param_fetch_retries == 2

    def test_persistent_fetch_failure_propagates(self, faulty_platform):
        platform, spec, faults = faulty_platform
        faults.arm("param-fetch", spec.name, count=10)
        with pytest.raises(InjectedFault):
            invoke_once(platform, spec.name)

    def test_retries_cost_time(self, faulty_platform):
        platform, spec, faults = faulty_platform
        clean = invoke_once(platform, spec.name)
        faults.arm("param-fetch", spec.name, count=2)
        retried = invoke_once(platform, spec.name)
        assert retried.startup_ms > clean.startup_ms


class TestDbRecovery:
    """An armed ``db`` fault times out a CouchDB request; the guest SDK
    retries with a short backoff, surfacing the wait as a ``retry`` span."""

    @pytest.fixture
    def reminder_platform(self):
        faults = FaultInjector()
        platform = fresh_platform(FireworksPlatform, faults=faults)
        chain = alexa_skills_chain()
        spec = next(s for s in chain.functions
                    if s.name == "alexa-reminder")
        install_all(platform, [spec])
        return platform, spec, faults

    def test_transient_db_timeouts_recovered(self, reminder_platform):
        platform, spec, faults = reminder_platform
        faults.arm("db", REMINDER_DB, count=2)
        record = invoke_once(platform, spec.name)
        assert record.mode == "snapshot"
        assert platform.db_retries == 2
        assert faults.fired[("db", REMINDER_DB)] == 2
        assert faults.armed("db", REMINDER_DB) == 0

    def test_retry_latency_shows_as_retry_spans(self, reminder_platform):
        platform, spec, faults = reminder_platform
        faults.arm("db", REMINDER_DB, count=2)
        record = invoke_once(platform, spec.name)
        retries = [s for s in record.span.find_all("retry")
                   if s.attrs.get("target") == "db"]
        assert len(retries) == 2
        for span in retries:
            assert span.kind == "retry"
            assert span.duration_ms == pytest.approx(
                platform.DB_RETRY_BACKOFF_MS)

    def test_retries_cost_exec_time(self, reminder_platform):
        platform, spec, faults = reminder_platform
        clean = invoke_once(platform, spec.name)
        faults.arm("db", REMINDER_DB, count=1)
        retried = invoke_once(platform, spec.name)
        # The retried request pays the failed request-out leg plus the
        # backoff, inside the guest's exec window.
        assert retried.exec_ms > clean.exec_ms

    def test_persistent_db_failure_propagates(self, reminder_platform):
        platform, spec, faults = reminder_platform
        faults.arm("db", REMINDER_DB, count=10)
        with pytest.raises(InjectedFault) as excinfo:
            invoke_once(platform, spec.name)
        assert excinfo.value.kind == "db"
        # One fired per attempt of the first (get) request only.
        assert faults.fired[("db", REMINDER_DB)] == \
            platform.MAX_DB_ATTEMPTS

    def test_fired_counts_exact_across_kinds(self, reminder_platform):
        platform, spec, faults = reminder_platform
        faults.arm("db", REMINDER_DB, count=1)
        faults.arm("param-fetch", spec.name, count=1)
        record = invoke_once(platform, spec.name)
        assert record.mode == "snapshot"
        assert faults.fired == {("db", REMINDER_DB): 1,
                                ("param-fetch", spec.name): 1}
        targets = sorted(s.attrs["target"]
                         for s in record.span.find_all("retry"))
        assert targets == ["db", "param-fetch"]
