"""Unit tests for the Python source annotator (Figure 3)."""

import ast

import pytest

from repro.core.annotator import annotate_python
from repro.errors import AnnotationError

SIMPLE = '''\
def main(params):
    print("hello world", params)
'''

MULTI = '''\
def helper(x):
    return x * 2

def main(params):
    return helper(len(params))
'''


class TestTransform:
    def test_output_is_valid_python(self):
        result = annotate_python(SIMPLE)
        ast.parse(result.annotated)  # must not raise

    def test_jit_decorator_added(self):
        result = annotate_python(SIMPLE)
        tree = ast.parse(result.annotated)
        main = next(node for node in tree.body
                    if isinstance(node, ast.FunctionDef)
                    and node.name == "main")
        decorator = main.decorator_list[0]
        assert isinstance(decorator, ast.Call)
        assert decorator.func.id == "jit"
        assert decorator.keywords[0].arg == "cache"
        assert decorator.keywords[0].value.value is True

    def test_all_functions_annotated(self):
        """§3.2: Fireworks adds the JIT annotation for ALL methods."""
        result = annotate_python(MULTI)
        assert result.functions == ("helper", "main")
        tree = ast.parse(result.annotated)
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and \
                    not node.name.startswith("__fireworks"):
                assert node.decorator_list, node.name

    def test_scaffolding_functions_present(self):
        result = annotate_python(SIMPLE)
        tree = ast.parse(result.annotated)
        names = {node.name for node in tree.body
                 if isinstance(node, ast.FunctionDef)}
        assert {"__fireworks_jit", "__fireworks_snapshot",
                "__fireworks_main"} <= names

    def test_jit_called_before_snapshot_before_params(self):
        """Figure 3's ordering: JIT, then snapshot, then fetch params."""
        annotated = annotate_python(SIMPLE).annotated
        jit_pos = annotated.index("__fireworks_jit()")
        snap_pos = annotated.index("__fireworks_snapshot()",
                                   annotated.index("def __fireworks_main"))
        kafka_pos = annotated.index("kafkacat")
        main_call_pos = annotated.rindex("main(user_params)")
        assert jit_pos < snap_pos < kafka_pos < main_call_pos

    def test_kafka_fetch_uses_fcid_topic(self):
        annotated = annotate_python(SIMPLE).annotated
        assert "-t topic' + str(fc_id)" in annotated
        assert "-o -1 -c 1" in annotated

    def test_snapshot_request_targets_host_gateway(self):
        annotated = annotate_python(SIMPLE).annotated
        assert "http://172.17.0.1" in annotated

    def test_existing_jit_decorator_not_duplicated(self):
        source = "@jit(cache=True)\ndef main(p):\n    return p\n"
        result = annotate_python(source)
        tree = ast.parse(result.annotated)
        main = next(node for node in tree.body
                    if isinstance(node, ast.FunctionDef)
                    and node.name == "main")
        assert len(main.decorator_list) == 1

    def test_imports_added(self):
        annotated = annotate_python(SIMPLE).annotated
        assert "from numba import jit" in annotated
        assert "import requests" in annotated
        assert "import subprocess" in annotated


class TestValidation:
    def test_syntax_error_raises(self):
        with pytest.raises(AnnotationError, match="does not parse"):
            annotate_python("def main(:\n")

    def test_no_functions_raises(self):
        with pytest.raises(AnnotationError, match="no top-level"):
            annotate_python("x = 1\n")

    def test_missing_entry_point_raises(self):
        with pytest.raises(AnnotationError, match="entry point"):
            annotate_python("def handler(p):\n    return p\n")

    def test_custom_entry_point(self):
        result = annotate_python("def handler(p):\n    return p\n",
                                 entry_point="handler")
        assert result.entry_point == "handler"
        assert "handler(user_params)" in result.annotated

    def test_fireworks_namespace_collision_raises(self):
        source = "def __fireworks_jit():\n    pass\ndef main(p):\n    pass\n"
        with pytest.raises(AnnotationError, match="collides"):
            annotate_python(source)

    def test_original_preserved(self):
        result = annotate_python(SIMPLE)
        assert result.original == SIMPLE
        assert result.language == "python"
