"""Unit tests for the Fireworks microVM manager."""

import pytest

from repro.config import default_parameters
from repro.core.microvm_manager import MicroVMManager
from repro.mem.host_memory import HostMemory
from repro.net.address import IpAddress, MacAddress
from repro.net.bridge import HostBridge
from repro.runtime import make_runtime
from repro.runtime.interpreter import AppCode, GuestFunction
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.sim import Simulation
from repro.snapshot.image import STAGE_POST_JIT
from repro.snapshot.snapshotter import Snapshotter
from tests.helpers import run


@pytest.fixture
def setup():
    sim = Simulation()
    params = default_parameters()
    host = HostMemory(params.host)
    bridge = HostBridge()
    manager = MicroVMManager(sim, params, host, bridge)
    return sim, params, host, bridge, manager


@pytest.fixture
def image(setup):
    sim, params, host, bridge, _manager = setup
    vm = MicroVM(sim, params, host, "nodejs")
    vm.assign_guest_addresses(IpAddress.parse("10.0.0.2"),
                              MacAddress(0x02F17E000001))
    worker = Worker(sim, vm, make_runtime(sim, params, "nodejs"))
    app = AppCode(name="app", language="nodejs",
                  guest_functions=(GuestFunction("main", 500.0, 3.0),))
    run(sim, worker.cold_start(app))
    run(sim, worker.force_jit())
    snapshotter = Snapshotter(sim, params.snapshot)
    img = run(sim, snapshotter.create(worker, "fn", STAGE_POST_JIT))
    run(sim, worker.stop())
    return img


class TestLaunchClone:
    def test_clone_gets_identity_via_mmds(self, setup, image):
        sim, _params, _host, _bridge, manager = setup
        fc_id = manager.next_fc_id()
        worker = run(sim, manager.launch_clone(image, fc_id))
        assert worker.sandbox.mmds.get("fcID") == fc_id
        assert worker.sandbox.mmds.get("srcfcID") == "fn"
        assert manager.launched_clones == 1

    def test_fc_ids_are_unique(self, setup):
        _sim, _params, _host, _bridge, manager = setup
        ids = {manager.next_fc_id() for _ in range(100)}
        assert len(ids) == 100

    def test_clone_is_network_connected(self, setup, image):
        sim, _params, _host, bridge, manager = setup
        worker = run(sim, manager.launch_clone(image, "fc1"))
        assert worker.endpoint is not None
        assert bridge.endpoint_count() == 1

    def test_launch_cost_is_netns_plus_mmds_plus_restore(self, setup,
                                                         image):
        sim, params, _host, _bridge, manager = setup
        before = sim.now
        run(sim, manager.launch_clone(image, "fc1"))
        elapsed = sim.now - before
        fw = params.fireworks
        restore = manager.restorer.restore_ms(image)
        assert elapsed == pytest.approx(
            fw.netns_setup_ms + fw.mmds_write_ms + restore)

    def test_retire_releases_everything(self, setup, image):
        sim, _params, host, bridge, manager = setup
        image.materialize(host)
        base_mb = host.used_mb
        worker = run(sim, manager.launch_clone(image, "fc1"))
        run(sim, manager.retire(worker))
        assert bridge.endpoint_count() == 0
        assert host.used_mb == pytest.approx(base_mb)

    def test_retire_without_endpoint_still_stops(self, setup, image):
        sim, _params, _host, bridge, manager = setup
        worker = run(sim, manager.launch_clone(image, "fc1"))
        bridge.disconnect(worker.endpoint)
        worker.endpoint = None
        run(sim, manager.retire(worker))
        assert worker.sandbox.state == "stopped"


class TestMmdsOrdering:
    """Regression (§3.4): identity must be in MMDS *before* the restore,
    so the guest's first metadata read at resume time already sees it."""

    def test_identity_visible_the_instant_restore_completes(self, setup,
                                                            image):
        sim, _params, _host, _bridge, manager = setup
        seen = {}

        original_restore = manager.restorer.restore

        def spying_restore(img, policy, name="", mmds=None):
            # What the guest would read at resume: the MMDS handed to the
            # restorer, as populated at call time (i.e. pre-restore).
            seen["fcID"] = mmds.get("fcID")
            seen["srcfcID"] = mmds.get("srcfcID")
            return (yield from original_restore(img, policy, name=name,
                                                mmds=mmds))

        manager.restorer.restore = spying_restore
        worker = run(sim, manager.launch_clone(image, "fc7"))
        assert seen == {"fcID": "fc7", "srcfcID": "fn"}
        # And the restored VM carries that same store.
        assert worker.sandbox.mmds.get("fcID") == "fc7"

    def test_mmds_cost_charged_where_written(self, setup, image):
        sim, params, _host, _bridge, manager = setup
        worker = run(sim, manager.launch_clone(image, "fc1"))
        # No invoke span is open in this unit test, so the launch stages
        # are recorded as sibling roots.
        roots = sim.tracer.traces()
        mmds_span = next((s for s in roots if s.name == "mmds-write"), None)
        restore_span = next((s for s in roots if s.name == "restore"), None)
        assert mmds_span is not None and restore_span is not None
        assert mmds_span.duration_ms == pytest.approx(
            params.fireworks.mmds_write_ms)
        # The write happens (and is charged) strictly before the restore.
        assert mmds_span.end_ms <= restore_span.start_ms
        assert worker.sandbox.mmds.get("fcID") == "fc1"


class TestRetireExceptionSafety:
    """A failed stop must not leak host frames or NAT entries."""

    def _failing_worker(self, setup, image):
        sim, _params, _host, _bridge, manager = setup
        worker = run(sim, manager.launch_clone(image, "fc1"))

        def exploding_stop():
            raise RuntimeError("teardown blew up")
            yield  # pragma: no cover

        worker.stop = exploding_stop
        return sim, manager, worker

    def test_endpoint_disconnected_when_stop_raises(self, setup, image):
        sim, manager, worker = self._failing_worker(setup, image)
        bridge = manager.bridge
        with pytest.raises(RuntimeError, match="teardown blew up"):
            run(sim, manager.retire(worker))
        assert bridge.endpoint_count() == 0
        assert worker.endpoint is None

    def test_memory_reclaimed_when_stop_raises(self, setup, image):
        sim, manager, worker = self._failing_worker(setup, image)
        host = manager.host_memory
        image.materialize(host)  # keep shared segments alive
        with pytest.raises(RuntimeError):
            run(sim, manager.retire(worker))
        assert worker.sandbox.state == "stopped"
        assert not worker.sandbox.space.region_names()

    def test_successful_retire_unchanged(self, setup, image):
        sim, _params, _host, bridge, manager = setup
        worker = run(sim, manager.launch_clone(image, "fc1"))
        run(sim, manager.retire(worker))
        assert worker.sandbox.state == "stopped"
        assert bridge.endpoint_count() == 0
