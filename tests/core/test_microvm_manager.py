"""Unit tests for the Fireworks microVM manager."""

import pytest

from repro.config import default_parameters
from repro.core.microvm_manager import MicroVMManager
from repro.mem.host_memory import HostMemory
from repro.net.address import IpAddress, MacAddress
from repro.net.bridge import HostBridge
from repro.runtime import make_runtime
from repro.runtime.interpreter import AppCode, GuestFunction
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.sim import Simulation
from repro.snapshot.image import STAGE_POST_JIT
from repro.snapshot.snapshotter import Snapshotter
from tests.helpers import run


@pytest.fixture
def setup():
    sim = Simulation()
    params = default_parameters()
    host = HostMemory(params.host)
    bridge = HostBridge()
    manager = MicroVMManager(sim, params, host, bridge)
    return sim, params, host, bridge, manager


@pytest.fixture
def image(setup):
    sim, params, host, bridge, _manager = setup
    vm = MicroVM(sim, params, host, "nodejs")
    vm.assign_guest_addresses(IpAddress.parse("10.0.0.2"),
                              MacAddress(0x02F17E000001))
    worker = Worker(sim, vm, make_runtime(sim, params, "nodejs"))
    app = AppCode(name="app", language="nodejs",
                  guest_functions=(GuestFunction("main", 500.0, 3.0),))
    run(sim, worker.cold_start(app))
    run(sim, worker.force_jit())
    snapshotter = Snapshotter(sim, params.snapshot)
    img = run(sim, snapshotter.create(worker, "fn", STAGE_POST_JIT))
    run(sim, worker.stop())
    return img


class TestLaunchClone:
    def test_clone_gets_identity_via_mmds(self, setup, image):
        sim, _params, _host, _bridge, manager = setup
        fc_id = manager.next_fc_id()
        worker = run(sim, manager.launch_clone(image, fc_id))
        assert worker.sandbox.mmds.get("fcID") == fc_id
        assert worker.sandbox.mmds.get("srcfcID") == "fn"
        assert manager.launched_clones == 1

    def test_fc_ids_are_unique(self, setup):
        _sim, _params, _host, _bridge, manager = setup
        ids = {manager.next_fc_id() for _ in range(100)}
        assert len(ids) == 100

    def test_clone_is_network_connected(self, setup, image):
        sim, _params, _host, bridge, manager = setup
        worker = run(sim, manager.launch_clone(image, "fc1"))
        assert worker.endpoint is not None
        assert bridge.endpoint_count() == 1

    def test_launch_cost_is_netns_plus_mmds_plus_restore(self, setup,
                                                         image):
        sim, params, _host, _bridge, manager = setup
        before = sim.now
        run(sim, manager.launch_clone(image, "fc1"))
        elapsed = sim.now - before
        fw = params.fireworks
        restore = manager.restorer.restore_ms(image)
        assert elapsed == pytest.approx(
            fw.netns_setup_ms + fw.mmds_write_ms + restore)

    def test_retire_releases_everything(self, setup, image):
        sim, _params, host, bridge, manager = setup
        image.materialize(host)
        base_mb = host.used_mb
        worker = run(sim, manager.launch_clone(image, "fc1"))
        run(sim, manager.retire(worker))
        assert bridge.endpoint_count() == 0
        assert host.used_mb == pytest.approx(base_mb)

    def test_retire_without_endpoint_still_stops(self, setup, image):
        sim, _params, _host, bridge, manager = setup
        worker = run(sim, manager.launch_clone(image, "fc1"))
        bridge.disconnect(worker.endpoint)
        worker.endpoint = None
        run(sim, manager.retire(worker))
        assert worker.sandbox.state == "stopped"
