"""Edge-case tests for the annotators: async, classes, nesting, unicode."""

import ast

import pytest

from repro.core.annotator import annotate_nodejs, annotate_python
from repro.errors import AnnotationError


class TestPythonAsync:
    def test_async_helper_skipped_not_annotated(self):
        source = (
            "async def fetch(url):\n    return url\n\n"
            "def main(params):\n    return params\n")
        result = annotate_python(source)
        assert result.functions == ("main",)
        tree = ast.parse(result.annotated)
        fetch = next(node for node in tree.body
                     if isinstance(node, ast.AsyncFunctionDef))
        assert not fetch.decorator_list  # left interpreted

    def test_async_entry_point_rejected_with_reason(self):
        source = "async def main(params):\n    return params\n"
        with pytest.raises(AnnotationError, match="coroutines"):
            annotate_python(source)


class TestPythonScoping:
    def test_class_methods_not_directly_annotated(self):
        source = (
            "class Parser:\n"
            "    def parse(self, text):\n        return text\n\n"
            "def main(params):\n    return Parser().parse(params)\n")
        result = annotate_python(source)
        assert result.functions == ("main",)
        tree = ast.parse(result.annotated)
        cls = next(node for node in tree.body
                   if isinstance(node, ast.ClassDef))
        method = cls.body[0]
        assert not method.decorator_list

    def test_nested_functions_not_directly_annotated(self):
        source = (
            "def main(params):\n"
            "    def helper(x):\n        return x\n"
            "    return helper(params)\n")
        result = annotate_python(source)
        assert result.functions == ("main",)
        # Only one @jit in the output: on main.
        assert result.annotated.count("@jit(cache=True)") == 1

    def test_module_level_statements_preserved(self):
        source = ("TABLE = {'a': 1}\n\n"
                  "def main(params):\n    return TABLE\n")
        result = annotate_python(source)
        namespace_probe = ast.parse(result.annotated)
        names = {node.targets[0].id for node in namespace_probe.body
                 if isinstance(node, ast.Assign)
                 and isinstance(node.targets[0], ast.Name)}
        assert "TABLE" in names

    def test_unicode_source_round_trips(self):
        source = ("def main(params):\n"
                  "    return {'grüße': 'こんにちは'}\n")
        result = annotate_python(source)
        ast.parse(result.annotated)
        assert "こんにちは" in result.annotated


class TestNodeEdgeCases:
    def test_async_arrow_found(self):
        source = ("const fetchData = async (url) => url;\n"
                  "function main(p) { return fetchData(p); }\n")
        result = annotate_nodejs(source)
        assert set(result.functions) == {"fetchData", "main"}

    def test_exports_main_counts_as_entry(self):
        source = "exports.main = function (params) { return params; };\n"
        result = annotate_nodejs(source)
        assert result.entry_point == "main"

    def test_regex_literal_braces_tolerated(self):
        # A '}' inside a string must not unbalance the scanner.
        source = ("function main(p) {\n"
                  "    const s = 'literal } brace';\n"
                  "    return s;\n}\n")
        annotate_nodejs(source)  # must not raise
