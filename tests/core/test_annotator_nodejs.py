"""Unit tests for the Node.js source annotator (§3.2)."""

import pytest

from repro.core.annotator import annotate_nodejs
from repro.core.annotator.nodejs_annotator import find_function_names
from repro.errors import AnnotationError

SIMPLE = '''\
function main(params) {
    return { body: 'hello world ' + params };
}
'''

MIXED = '''\
const helper = (x) => x * 2;

async function fetchData(url) {
    return url;
}

exports.main = function (params) {
    return helper(params.n);
};

function main(params) {
    return fetchData(params.url);
}
'''


class TestScanner:
    def test_finds_declarations(self):
        names = find_function_names(MIXED)
        assert set(names) == {"helper", "fetchData", "main"}

    def test_ignores_functions_in_strings(self):
        source = ("const s = 'function fake(x) {';\n"
                  "function real(x) { return x; }\n")
        assert find_function_names(source) == ["real"]

    def test_ignores_functions_in_comments(self):
        source = ("// function ghost(x) {}\n"
                  "/* function phantom() {} */\n"
                  "function real(x) { return x; }\n")
        assert find_function_names(source) == ["real"]

    def test_ignores_template_literals(self):
        source = ("const t = `function tpl(x) {`;\n"
                  "function real(x) { return x; }\n")
        assert find_function_names(source) == ["real"]


class TestTransform:
    def test_v8_hooks_for_every_function(self):
        """§3.2: V8 offers comparable annotation opportunities."""
        result = annotate_nodejs(SIMPLE)
        assert "%PrepareFunctionForOptimization(main)" in result.annotated
        assert "%OptimizeFunctionOnNextCall(main)" in result.annotated

    def test_scaffolding_present(self):
        annotated = annotate_nodejs(SIMPLE).annotated
        for needle in ("__fireworks_jit", "__fireworks_snapshot",
                       "__fireworks_main", "kafkacat", "169.254.169.254"):
            assert needle in annotated, needle

    def test_ordering_jit_snapshot_params(self):
        annotated = annotate_nodejs(SIMPLE).annotated
        body = annotated[annotated.index("function __fireworks_main"):]
        assert body.index("__fireworks_jit()") < \
            body.index("__fireworks_snapshot()") < \
            body.index("kafkacat")

    def test_entry_invoked_with_params(self):
        annotated = annotate_nodejs(SIMPLE).annotated
        assert "main(userParams);" in annotated

    def test_natives_syntax_banner(self):
        assert annotate_nodejs(SIMPLE).annotated.startswith(
            "// Run with --allow-natives-syntax")

    def test_functions_recorded(self):
        result = annotate_nodejs(MIXED)
        assert "main" in result.functions
        assert result.entry_point == "main"


class TestValidation:
    def test_unbalanced_braces_raise(self):
        with pytest.raises(AnnotationError, match="unbalanced"):
            annotate_nodejs("function main() { {\n")

    def test_braces_in_strings_do_not_count(self):
        source = "function main(p) { return '}}}'; }\n"
        annotate_nodejs(source)  # must not raise

    def test_no_functions_raises(self):
        with pytest.raises(AnnotationError, match="no functions"):
            annotate_nodejs("const x = 1;\n")

    def test_missing_entry_raises(self):
        with pytest.raises(AnnotationError, match="entry point"):
            annotate_nodejs("function handler(p) { return p; }\n")

    def test_custom_entry(self):
        result = annotate_nodejs("function handler(p) { return p; }\n",
                                 entry_point="handler")
        assert "handler(userParams);" in result.annotated

    def test_fireworks_collision_raises(self):
        source = ("function __fireworks_jit() {}\n"
                  "function main(p) { return p; }\n")
        with pytest.raises(AnnotationError, match="__fireworks"):
            annotate_nodejs(source)


class TestDispatch:
    def test_language_dispatch(self):
        from repro.core.annotator import annotate
        assert annotate(SIMPLE, "nodejs").language == "nodejs"
        assert annotate("def main(p):\n    pass\n",
                        "python").language == "python"
        with pytest.raises(AnnotationError):
            annotate(SIMPLE, "rust")

    def test_entry_must_be_among_functions(self):
        from repro.core.annotator.common import AnnotatedSource
        with pytest.raises(AnnotationError):
            AnnotatedSource(language="nodejs", original="", annotated="",
                            functions=("a",), entry_point="main")
