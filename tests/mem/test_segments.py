"""Unit tests for private blocks and shared CoW segments."""

import pytest

from repro.config import HostConfig
from repro.errors import MemoryError_
from repro.mem.host_memory import HostMemory


@pytest.fixture
def host():
    return HostMemory(HostConfig(dram_mb=4096))


class TestPrivateBlock:
    def test_allocation_accounted(self, host):
        block = host.allocate_block(100, "heap")
        assert host.used_mb == pytest.approx(100)
        assert block.pages == 100 * 256

    def test_free_returns_pages(self, host):
        block = host.allocate_block(100, "heap")
        block.free()
        assert host.used_mb == 0

    def test_double_free_raises(self, host):
        block = host.allocate_block(10, "heap")
        block.free()
        with pytest.raises(MemoryError_):
            block.free()

    def test_grow(self, host):
        block = host.allocate_block(10, "heap")
        block.grow(256)  # 1 MiB
        assert host.used_mb == pytest.approx(11)

    def test_grow_after_free_raises(self, host):
        block = host.allocate_block(10, "heap")
        block.free()
        with pytest.raises(MemoryError_):
            block.grow(1)

    def test_negative_size_raises(self, host):
        with pytest.raises(MemoryError_):
            host.allocate_block(-1, "heap")


class TestSharedSegment:
    def test_segment_resident_once(self, host):
        segment = host.create_segment(100, "kernel")
        segment.attach()
        segment.attach()
        assert host.used_mb == pytest.approx(100)

    def test_dirty_allocates_private_copies(self, host):
        segment = host.create_segment(100, "kernel")
        mapper = segment.attach()
        segment.dirty(mapper, 256 * 10)  # 10 MiB
        assert host.used_mb == pytest.approx(110)
        assert segment.dirty_pages(mapper) == 2560

    def test_dirty_saturates_at_segment_size(self, host):
        segment = host.create_segment(10, "kernel")
        mapper = segment.attach()
        segment.dirty(mapper, 10**9)
        assert segment.dirty_pages(mapper) == segment.pages
        assert host.used_mb == pytest.approx(20)

    def test_detach_frees_copies(self, host):
        segment = host.create_segment(10, "kernel")
        mapper = segment.attach()
        segment.dirty(mapper, 256)
        segment.detach(mapper)
        assert host.used_mb == 0  # no pins, no mappers -> released

    def test_pin_keeps_segment_resident(self, host):
        segment = host.create_segment(10, "kernel")
        segment.pin()
        mapper = segment.attach()
        segment.detach(mapper)
        assert host.used_mb == pytest.approx(10)
        segment.unpin()
        assert host.used_mb == 0

    def test_unpin_unpinned_raises(self, host):
        segment = host.create_segment(10, "kernel")
        with pytest.raises(MemoryError_):
            segment.unpin()

    def test_detach_unknown_mapper_raises(self, host):
        segment = host.create_segment(10, "kernel")
        with pytest.raises(MemoryError_):
            segment.detach(99)

    def test_released_segment_refaults_on_attach(self, host):
        segment = host.create_segment(10, "kernel")
        mapper = segment.attach()
        segment.detach(mapper)
        assert host.used_mb == 0
        segment.attach()
        assert host.used_mb == pytest.approx(10)


class TestPssAccounting:
    def test_single_mapper_pss_is_full_size(self, host):
        segment = host.create_segment(100, "kernel")
        mapper = segment.attach()
        assert segment.pss_pages(mapper) == pytest.approx(segment.pages)

    def test_two_clean_mappers_split_pss(self, host):
        segment = host.create_segment(100, "kernel")
        m1, m2 = segment.attach(), segment.attach()
        assert segment.pss_pages(m1) == pytest.approx(segment.pages / 2)
        assert segment.pss_pages(m2) == pytest.approx(segment.pages / 2)

    def test_n_mappers_each_get_1_over_n(self, host):
        segment = host.create_segment(100, "kernel")
        mappers = [segment.attach() for _ in range(10)]
        for mapper in mappers:
            assert segment.pss_pages(mapper) == \
                pytest.approx(segment.pages / 10)

    def test_dirty_pages_charged_fully(self, host):
        segment = host.create_segment(100, "kernel")
        m1, m2 = segment.attach(), segment.attach()
        segment.dirty(m1, segment.pages)  # m1 fully private
        assert segment.pss_pages(m1) == pytest.approx(segment.pages)
        # m2's clean pages are now shared only with the page cache copy.
        assert segment.pss_pages(m2) == pytest.approx(segment.pages)

    def test_uss_is_dirty_pages(self, host):
        segment = host.create_segment(100, "kernel")
        mapper = segment.attach()
        segment.dirty(mapper, 512)
        assert segment.uss_pages(mapper) == 512

    def test_pss_sums_to_at_most_resident(self, host):
        segment = host.create_segment(64, "kernel")
        mappers = [segment.attach() for _ in range(4)]
        for index, mapper in enumerate(mappers):
            segment.dirty(mapper, index * 500)
        total_pss = sum(segment.pss_pages(m) for m in mappers)
        assert total_pss <= segment.resident_pages() + 1e-6


class TestDirtyAggregate:
    """The running total-dirty aggregate that makes pss_pages O(1)."""

    def _reference_pss(self, segment, mapper_id):
        """The pre-aggregate formula: explicit sum over the other mappers."""
        dirty = segment.dirty_pages(mapper_id)
        clean = segment.pages - dirty
        if clean == 0:
            return float(dirty)
        expected_other_sharers = sum(
            1.0 - segment.dirty_pages(other) / segment.pages
            for other in segment._dirty_by_mapper if other != mapper_id)
        return dirty + clean / (1.0 + expected_other_sharers)

    def test_aggregate_tracks_explicit_sum(self, host):
        segment = host.create_segment(100, "kernel")
        mappers = [segment.attach() for _ in range(8)]
        for index, mapper in enumerate(mappers):
            segment.dirty(mapper, index * 700)
        segment.detach(mappers.pop(3))
        segment.dirty(mappers[0], 123)
        assert segment.total_dirty_pages == sum(
            segment.dirty_pages(m) for m in mappers)

    def test_pss_matches_explicit_sum(self, host):
        segment = host.create_segment(100, "kernel")
        mappers = [segment.attach() for _ in range(6)]
        for index, mapper in enumerate(mappers):
            segment.dirty(mapper, index * 900)
        for mapper in mappers:
            assert segment.pss_pages(mapper) == pytest.approx(
                self._reference_pss(segment, mapper), rel=1e-12)

    def test_pss_matches_after_detach_and_saturation(self, host):
        segment = host.create_segment(50, "kernel")
        mappers = [segment.attach() for _ in range(5)]
        segment.dirty(mappers[1], segment.pages + 999)  # saturates
        segment.detach(mappers.pop(1))
        segment.dirty(mappers[2], 777)
        for mapper in mappers:
            assert segment.pss_pages(mapper) == pytest.approx(
                self._reference_pss(segment, mapper), rel=1e-12)

    def test_aggregate_zero_when_all_detached(self, host):
        segment = host.create_segment(10, "kernel")
        segment.pin()
        mapper = segment.attach()
        segment.dirty(mapper, 1000)
        segment.detach(mapper)
        assert segment.total_dirty_pages == 0
        assert segment.resident_pages() == segment.pages
