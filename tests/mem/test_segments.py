"""Unit tests for private blocks and shared CoW segments."""

import pytest

from repro.config import HostConfig
from repro.errors import MemoryError_
from repro.mem.host_memory import HostMemory


@pytest.fixture
def host():
    return HostMemory(HostConfig(dram_mb=4096))


class TestPrivateBlock:
    def test_allocation_accounted(self, host):
        block = host.allocate_block(100, "heap")
        assert host.used_mb == pytest.approx(100)
        assert block.pages == 100 * 256

    def test_free_returns_pages(self, host):
        block = host.allocate_block(100, "heap")
        block.free()
        assert host.used_mb == 0

    def test_double_free_raises(self, host):
        block = host.allocate_block(10, "heap")
        block.free()
        with pytest.raises(MemoryError_):
            block.free()

    def test_grow(self, host):
        block = host.allocate_block(10, "heap")
        block.grow(256)  # 1 MiB
        assert host.used_mb == pytest.approx(11)

    def test_grow_after_free_raises(self, host):
        block = host.allocate_block(10, "heap")
        block.free()
        with pytest.raises(MemoryError_):
            block.grow(1)

    def test_negative_size_raises(self, host):
        with pytest.raises(MemoryError_):
            host.allocate_block(-1, "heap")


class TestSharedSegment:
    def test_segment_resident_once(self, host):
        segment = host.create_segment(100, "kernel")
        segment.attach()
        segment.attach()
        assert host.used_mb == pytest.approx(100)

    def test_dirty_allocates_private_copies(self, host):
        segment = host.create_segment(100, "kernel")
        mapper = segment.attach()
        segment.dirty(mapper, 256 * 10)  # 10 MiB
        assert host.used_mb == pytest.approx(110)
        assert segment.dirty_pages(mapper) == 2560

    def test_dirty_saturates_at_segment_size(self, host):
        segment = host.create_segment(10, "kernel")
        mapper = segment.attach()
        segment.dirty(mapper, 10**9)
        assert segment.dirty_pages(mapper) == segment.pages
        assert host.used_mb == pytest.approx(20)

    def test_detach_frees_copies(self, host):
        segment = host.create_segment(10, "kernel")
        mapper = segment.attach()
        segment.dirty(mapper, 256)
        segment.detach(mapper)
        assert host.used_mb == 0  # no pins, no mappers -> released

    def test_pin_keeps_segment_resident(self, host):
        segment = host.create_segment(10, "kernel")
        segment.pin()
        mapper = segment.attach()
        segment.detach(mapper)
        assert host.used_mb == pytest.approx(10)
        segment.unpin()
        assert host.used_mb == 0

    def test_unpin_unpinned_raises(self, host):
        segment = host.create_segment(10, "kernel")
        with pytest.raises(MemoryError_):
            segment.unpin()

    def test_detach_unknown_mapper_raises(self, host):
        segment = host.create_segment(10, "kernel")
        with pytest.raises(MemoryError_):
            segment.detach(99)

    def test_released_segment_refaults_on_attach(self, host):
        segment = host.create_segment(10, "kernel")
        mapper = segment.attach()
        segment.detach(mapper)
        assert host.used_mb == 0
        segment.attach()
        assert host.used_mb == pytest.approx(10)


class TestPssAccounting:
    def test_single_mapper_pss_is_full_size(self, host):
        segment = host.create_segment(100, "kernel")
        mapper = segment.attach()
        assert segment.pss_pages(mapper) == pytest.approx(segment.pages)

    def test_two_clean_mappers_split_pss(self, host):
        segment = host.create_segment(100, "kernel")
        m1, m2 = segment.attach(), segment.attach()
        assert segment.pss_pages(m1) == pytest.approx(segment.pages / 2)
        assert segment.pss_pages(m2) == pytest.approx(segment.pages / 2)

    def test_n_mappers_each_get_1_over_n(self, host):
        segment = host.create_segment(100, "kernel")
        mappers = [segment.attach() for _ in range(10)]
        for mapper in mappers:
            assert segment.pss_pages(mapper) == \
                pytest.approx(segment.pages / 10)

    def test_dirty_pages_charged_fully(self, host):
        segment = host.create_segment(100, "kernel")
        m1, m2 = segment.attach(), segment.attach()
        segment.dirty(m1, segment.pages)  # m1 fully private
        assert segment.pss_pages(m1) == pytest.approx(segment.pages)
        # m2's clean pages are now shared only with the page cache copy.
        assert segment.pss_pages(m2) == pytest.approx(segment.pages)

    def test_uss_is_dirty_pages(self, host):
        segment = host.create_segment(100, "kernel")
        mapper = segment.attach()
        segment.dirty(mapper, 512)
        assert segment.uss_pages(mapper) == 512

    def test_pss_sums_to_at_most_resident(self, host):
        segment = host.create_segment(64, "kernel")
        mappers = [segment.attach() for _ in range(4)]
        for index, mapper in enumerate(mappers):
            segment.dirty(mapper, index * 500)
        total_pss = sum(segment.pss_pages(m) for m in mappers)
        assert total_pss <= segment.resident_pages() + 1e-6
