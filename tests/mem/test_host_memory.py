"""Unit tests for host memory accounting and swapping."""

import pytest

from repro.config import HostConfig
from repro.errors import MemoryError_, OutOfMemoryError
from repro.mem.host_memory import HostMemory, mb_to_pages, pages_to_mb


class TestConversions:
    def test_round_trip(self):
        assert pages_to_mb(mb_to_pages(170)) == pytest.approx(170)

    def test_one_mb_is_256_pages(self):
        assert mb_to_pages(1) == 256


class TestHostMemory:
    def test_paper_host_threshold(self):
        """128 GB at swappiness 60 -> swap threshold ~76.8 GB."""
        host = HostMemory(HostConfig())
        assert pages_to_mb(host.swap_threshold_pages) == \
            pytest.approx(131072 * 0.6)

    def test_swapping_flag(self):
        host = HostMemory(HostConfig(dram_mb=1000,
                                     swappiness_threshold=0.6))
        host.allocate_block(600, "x")
        assert not host.is_swapping
        host.allocate_block(1, "x")
        assert host.is_swapping

    def test_oom_beyond_swap_budget(self):
        host = HostMemory(HostConfig(dram_mb=1000))
        host.allocate_block(1400, "x")
        with pytest.raises(OutOfMemoryError):
            host.allocate_block(200, "x")

    def test_peak_tracking(self):
        host = HostMemory(HostConfig(dram_mb=1000))
        block = host.allocate_block(500, "x")
        block.free()
        assert host.used_mb == 0
        assert pages_to_mb(host.peak_pages) == pytest.approx(500)

    def test_free_more_than_used_raises(self):
        host = HostMemory(HostConfig(dram_mb=1000))
        with pytest.raises(MemoryError_):
            host._account_free(10)

    def test_utilization(self):
        host = HostMemory(HostConfig(dram_mb=1000))
        host.allocate_block(250, "x")
        assert host.utilization() == pytest.approx(0.25)

    def test_free_pages_before_swap(self):
        host = HostMemory(HostConfig(dram_mb=1000,
                                     swappiness_threshold=0.5))
        host.allocate_block(400, "x")
        assert pages_to_mb(host.free_pages_before_swap) == pytest.approx(100)
