"""Unit tests for guest address spaces."""

import pytest

from repro.config import HostConfig
from repro.errors import MemoryError_
from repro.mem.address_space import AddressSpace
from repro.mem.host_memory import HostMemory


@pytest.fixture
def host():
    return HostMemory(HostConfig(dram_mb=8192))


class TestPrivateRegions:
    def test_map_and_measure(self, host):
        space = AddressSpace(host, "vm1")
        space.map_private("kernel", 60)
        space.map_private("heap", 20)
        assert space.rss_mb() == pytest.approx(80)
        assert space.pss_mb() == pytest.approx(80)
        assert space.uss_mb() == pytest.approx(80)

    def test_duplicate_region_raises(self, host):
        space = AddressSpace(host, "vm1")
        space.map_private("kernel", 60)
        with pytest.raises(MemoryError_):
            space.map_private("kernel", 60)

    def test_dirty_private_is_noop(self, host):
        space = AddressSpace(host, "vm1")
        space.map_private("heap", 20)
        space.dirty_fraction("heap", 1.0)
        assert space.pss_mb() == pytest.approx(20)

    def test_grow_private(self, host):
        space = AddressSpace(host, "vm1")
        space.map_private("heap", 20)
        space.grow_mb("heap", 5)
        assert space.rss_mb() == pytest.approx(25)

    def test_unknown_region_raises(self, host):
        space = AddressSpace(host, "vm1")
        with pytest.raises(MemoryError_):
            space.dirty_mb("nope", 1)

    def test_unmap_all_idempotent(self, host):
        space = AddressSpace(host, "vm1")
        space.map_private("heap", 20)
        space.unmap_all()
        space.unmap_all()
        assert host.used_mb == 0

    def test_map_after_close_raises(self, host):
        space = AddressSpace(host, "vm1")
        space.unmap_all()
        with pytest.raises(MemoryError_):
            space.map_private("heap", 10)


class TestSharedRegions:
    def test_clones_share_pss(self, host):
        segment = host.create_segment(100, "kernel")
        spaces = [AddressSpace(host, f"vm{i}") for i in range(4)]
        for space in spaces:
            space.map_segment("kernel", segment)
        for space in spaces:
            assert space.pss_mb() == pytest.approx(25)
        assert host.used_mb == pytest.approx(100)

    def test_dirty_breaks_sharing(self, host):
        segment = host.create_segment(100, "heap")
        a = AddressSpace(host, "a")
        b = AddressSpace(host, "b")
        a.map_segment("heap", segment)
        b.map_segment("heap", segment)
        a.dirty_fraction("heap", 0.5)
        assert a.uss_mb() == pytest.approx(50)
        assert host.used_mb == pytest.approx(150)
        # b remains clean; its PSS rises as fewer pages are co-mapped.
        assert b.uss_mb() == 0

    def test_dirty_overflow_spills_to_anon(self, host):
        segment = host.create_segment(10, "heap")
        space = AddressSpace(host, "a")
        space.map_segment("heap", segment)
        space.dirty_mb("heap", 15)  # 10 CoW + 5 fresh anon
        assert space.rss_mb() == pytest.approx(15)
        assert space.uss_mb() == pytest.approx(15)

    def test_grow_shared_region(self, host):
        segment = host.create_segment(10, "heap")
        space = AddressSpace(host, "a")
        space.map_segment("heap", segment)
        space.grow_mb("heap", 7)
        assert space.rss_mb() == pytest.approx(17)

    def test_unmap_releases_overflow_and_copies(self, host):
        segment = host.create_segment(10, "heap")
        segment.pin()
        space = AddressSpace(host, "a")
        space.map_segment("heap", segment)
        space.dirty_mb("heap", 15)
        space.unmap_all()
        assert host.used_mb == pytest.approx(10)  # only the pinned segment

    def test_region_pss_mb(self, host):
        segment = host.create_segment(60, "kernel")
        a = AddressSpace(host, "a")
        b = AddressSpace(host, "b")
        a.map_segment("kernel", segment)
        b.map_segment("kernel", segment)
        assert a.region_pss_mb("kernel") == pytest.approx(30)

    def test_mixed_private_and_shared(self, host):
        segment = host.create_segment(50, "kernel")
        space = AddressSpace(host, "vm")
        space.map_segment("kernel", segment)
        space.map_private("vmm", 8)
        other = AddressSpace(host, "vm2")
        other.map_segment("kernel", segment)
        assert space.pss_mb() == pytest.approx(25 + 8)
        assert space.rss_mb() == pytest.approx(58)
