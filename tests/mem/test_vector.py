"""Vectorized fleet PSS accounting agrees with the Python reference."""

from __future__ import annotations

import math

from repro.mem import vector


class _Space:
    """Stub address space exposing only pss_pages()."""

    def __init__(self, pages: float) -> None:
        self._pages = pages

    def pss_pages(self) -> float:
        return self._pages


class TestFleetPss:
    def test_empty_fleet_is_zero(self):
        assert vector.fleet_pss_mb([]) == 0.0
        assert vector.fleet_pss_mb_python([]) == 0.0

    def test_pages_array_matches_inputs(self):
        pages = vector.fleet_pss_pages([_Space(1.5), _Space(0.0), _Space(7.0)])
        assert list(pages) == [1.5, 0.0, 7.0]
        assert pages.typecode == "d"

    def test_small_fleet_uses_sequential_sum_exactly(self):
        # Below _VECTOR_MIN the vector path IS the python path, so the
        # two must be bit-identical, not merely close.
        spaces = [_Space(float(i) / 3.0) for i in range(vector._VECTOR_MIN - 1)]
        assert vector.fleet_pss_mb(spaces) == vector.fleet_pss_mb_python(spaces)

    def test_large_fleet_parity_within_ulps(self):
        # numpy's pairwise summation may reorder float adds; the results
        # must agree to float precision (why golden paths stay sequential).
        spaces = [_Space((i % 97) * 0.7 + 0.01) for i in range(500)]
        fast = vector.fleet_pss_mb(spaces)
        reference = vector.fleet_pss_mb_python(spaces)
        assert math.isclose(fast, reference, rel_tol=1e-12)

    def test_determinism_across_runs(self):
        spaces = [_Space(float(i) * 0.31) for i in range(64)]
        assert vector.fleet_pss_mb(spaces) == vector.fleet_pss_mb(spaces)

    def test_python_fallback_ignores_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "_np", None)
        spaces = [_Space(2.0) for _ in range(64)]
        assert vector.fleet_pss_mb(spaces) == vector.fleet_pss_mb_python(spaces)
