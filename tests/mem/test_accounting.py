"""Unit tests for smem-style reporting."""

import pytest

from repro.config import HostConfig
from repro.mem.accounting import region_breakdown, smem_report
from repro.mem.address_space import AddressSpace
from repro.mem.host_memory import HostMemory


@pytest.fixture
def host():
    return HostMemory(HostConfig(dram_mb=4096))


def test_report_rows_match_spaces(host):
    segment = host.create_segment(100, "kernel")
    spaces = []
    for i in range(3):
        space = AddressSpace(host, f"vm{i}")
        space.map_segment("kernel", segment)
        space.map_private("vmm", 8)
        spaces.append(space)
    report = smem_report(host, spaces)
    assert len(report.rows) == 3
    for row in report.rows:
        assert row.pss_mb == pytest.approx(100 / 3 + 8)
        assert row.rss_mb == pytest.approx(108)
        assert row.uss_mb == pytest.approx(8)


def test_report_totals(host):
    space = AddressSpace(host, "vm")
    space.map_private("heap", 64)
    report = smem_report(host, [space])
    assert report.total_pss_mb == pytest.approx(64)
    assert report.mean_pss_mb == pytest.approx(64)
    assert report.host_used_mb == pytest.approx(64)
    assert not report.host_swapping


def test_empty_report(host):
    report = smem_report(host, [])
    assert report.mean_pss_mb == 0.0
    assert report.rows == []


def test_as_table_renders(host):
    space = AddressSpace(host, "vm")
    space.map_private("heap", 10)
    table = smem_report(host, [space]).as_table()
    assert "vm" in table
    assert "PSS" in table
    assert "host used" in table


def test_region_breakdown(host):
    segment = host.create_segment(40, "kernel")
    a = AddressSpace(host, "a")
    b = AddressSpace(host, "b")
    a.map_segment("kernel", segment)
    b.map_segment("kernel", segment)
    a.map_private("heap", 10)
    totals = region_breakdown([a, b])
    assert totals["kernel"] == pytest.approx(40)
    assert totals["heap"] == pytest.approx(10)
