"""Unit tests for CSV export."""

import csv
from pathlib import Path

import pytest

from repro.bench.export import (export_all, write_factor_csv,
                                write_fig12_csv, write_latency_figure_csv,
                                write_memory_series_csv)
from repro.bench.factors import FactorRow
from repro.bench.results import (FigureResult, LatencyRow, MemoryPoint,
                                 MemorySeries)


def _read(path: Path):
    with path.open(newline="") as handle:
        return list(csv.reader(handle))


class TestWriters:
    def test_latency_csv(self, tmp_path):
        figure = FigureResult("fig6a", "t")
        figure.rows.append(LatencyRow("fireworks", "snapshot", 10, 20, 5))
        out = tmp_path / "fig6a.csv"
        write_latency_figure_csv(figure, out)
        rows = _read(out)
        assert rows[0][:2] == ["platform", "mode"]
        assert rows[1][0] == "fireworks"
        assert float(rows[1][5]) == pytest.approx(35.0)

    def test_memory_csv(self, tmp_path):
        series = MemorySeries("fireworks", max_vms_before_swap=553)
        series.points.append(MemoryPoint(50, 7000.0, 140.0))
        out = tmp_path / "fig10.csv"
        write_memory_series_csv({"fireworks": series}, out)
        rows = _read(out)
        assert rows[1] == ["fireworks", "50", "7000.0", "140.00", "553"]

    def test_factor_csv(self, tmp_path):
        rows_in = {"w": FactorRow("w", 1000.0, 400.0, 100.0)}
        out = tmp_path / "fig11.csv"
        write_factor_csv(rows_in, out)
        rows = _read(out)
        assert float(rows[1][4]) == pytest.approx(2.5)
        assert float(rows[1][5]) == pytest.approx(10.0)

    def test_fig12_csv(self, tmp_path):
        out = tmp_path / "fig12.csv"
        write_fig12_csv({"w": {"firecracker": 184.0, "+post-jit": 45.0}},
                        out)
        rows = _read(out)
        assert rows[0] == ["workload", "firecracker", "+post-jit"]
        assert rows[1] == ["w", "184.00", "45.00"]


class TestExportAll:
    def test_selected_figures_only(self, tmp_path):
        written = export_all(str(tmp_path), figures=["fig11"])
        assert written == ["fig11.csv"]
        assert (tmp_path / "fig11.csv").exists()
        rows = _read(tmp_path / "fig11.csv")
        assert len(rows) == 9  # header + 4 benchmarks x 2 languages

    def test_fig9_export_names(self, tmp_path):
        written = export_all(str(tmp_path), figures=["fig9"])
        assert set(written) == {"fig9a.csv", "fig9b.csv"}

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        export_all(str(nested), figures=["fig11"])
        assert nested.is_dir()
