"""Tests for the offline Pareto policy search (``repro search``)."""

from __future__ import annotations

import json

import pytest

from repro.bench import search as search_mod
from repro.bench.engine import experiment_registry, run_experiments
from repro.bench.search import (DEFAULT_CANDIDATES, SMOKE_CANDIDATES,
                                SearchCandidateOutcome, build_search_result,
                                dominates, generate_candidates,
                                pareto_frontier, render_search_figure,
                                run_search)
from repro.bench.serialization import encode_result
from repro.policy import resolve_autoscale, resolve_placement


def _canonical(result):
    return json.dumps(encode_result(result), sort_keys=True,
                      separators=(",", ":"))


def _outcome(index, name, p99, warm, shed):
    return SearchCandidateOutcome(
        index=index, name=name, placement="hash", placement_source="dsl",
        autoscale="none", autoscale_source="builtin", keepalive_ms=600.0,
        requests=100, completed=90, p50_ms=p99 / 2, p99_ms=p99,
        shed_rate=shed, mean_warm_mb=warm)


class TestCandidateGeneration:
    def test_deterministic_for_a_seed(self):
        assert generate_candidates(2022, 24) == generate_candidates(2022, 24)

    def test_prefix_stable(self):
        # The engine shards regenerate per-index; growing count must only
        # append, never reshuffle earlier candidates.
        assert generate_candidates(2022, 24)[:10] \
            == generate_candidates(2022, 10)

    def test_seed_changes_mutated_tail(self):
        a = generate_candidates(2022, 24)
        b = generate_candidates(7, 24)
        assert a[7:] != b[7:]

    def test_candidate_zero_is_builtin_baseline(self):
        baseline = generate_candidates(2022, 24)[0]
        assert baseline.name == "baseline-rr-none"
        assert baseline.placement == "round-robin"
        assert baseline.autoscale == "none"

    def test_every_candidate_resolves(self):
        for candidate in generate_candidates(2022, DEFAULT_CANDIDATES):
            placement = resolve_placement(candidate.placement)
            autoscale = resolve_autoscale(candidate.autoscale)
            assert placement.source in ("builtin", "dsl")
            assert autoscale.source in ("builtin", "dsl")
            assert candidate.keepalive_ms > 0


class TestDominance:
    def test_strict_dominance(self):
        a = _outcome(0, "a", 100.0, 50.0, 0.0)
        b = _outcome(1, "b", 200.0, 60.0, 0.1)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_equal_is_not_dominance(self):
        a = _outcome(0, "a", 100.0, 50.0, 0.0)
        b = _outcome(1, "b", 100.0, 50.0, 0.0)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_trade_off_is_not_dominance(self):
        a = _outcome(0, "a", 100.0, 80.0, 0.0)
        b = _outcome(1, "b", 200.0, 50.0, 0.0)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_frontier_keeps_trade_offs_drops_dominated(self):
        best_latency = _outcome(0, "lat", 100.0, 80.0, 0.0)
        best_memory = _outcome(1, "mem", 200.0, 50.0, 0.0)
        dominated = _outcome(2, "bad", 250.0, 90.0, 0.2)
        frontier = pareto_frontier((best_latency, best_memory, dominated))
        assert [one.name for one in frontier] == ["lat", "mem"]

    def test_build_search_result_derives_dominators(self):
        baseline = _outcome(0, "baseline", 200.0, 60.0, 0.1)
        winner = _outcome(1, "winner", 100.0, 50.0, 0.0)
        loser = _outcome(2, "loser", 300.0, 70.0, 0.2)
        result = build_search_result((loser, winner, baseline))
        assert result.baseline == "baseline"
        assert [one.name for one in result.outcomes] \
            == ["baseline", "winner", "loser"]
        assert result.dominators == ("winner",)
        assert "winner" in result.frontier
        assert "loser" not in result.frontier


class TestSmokeSearch:
    @pytest.fixture(scope="class")
    def smoke(self):
        return run_search(smoke=True)

    def test_shape(self, smoke):
        assert smoke.baseline == "baseline-rr-none"
        assert len(smoke.outcomes) == SMOKE_CANDIDATES
        assert smoke.outcomes[0].placement_source == "builtin"
        assert smoke.outcomes[1].placement_source == "dsl"
        assert smoke.frontier

    def test_frontier_is_non_dominated(self, smoke):
        by_name = {one.name: one for one in smoke.outcomes}
        for name in smoke.frontier:
            assert not any(dominates(other, by_name[name])
                           for other in smoke.outcomes
                           if other.name != name)

    def test_byte_deterministic(self, smoke):
        assert _canonical(run_search(smoke=True)) == _canonical(smoke)

    def test_figure_renders(self, smoke):
        text = "\n".join(render_search_figure(smoke))
        assert "frontier" in text
        assert "baseline-rr-none" in text
        for one in smoke.outcomes:
            assert one.name in text


class TestFullSearch:
    def test_searched_policy_dominates_the_baseline(self):
        # The search acceptance bar: >= 20 candidates and at least one
        # searched (DSL) policy beating round-robin + none autoscale on
        # p99, warm memory, AND shed rate simultaneously.
        result = run_search()
        assert len(result.outcomes) >= 20
        assert result.dominators
        by_name = {one.name: one for one in result.outcomes}
        assert any(by_name[name].placement_source == "dsl"
                   for name in result.dominators)


class TestEngineWiring:
    def test_search_experiment_registered(self):
        definition = experiment_registry()["search"]
        assert len(definition.shards) == DEFAULT_CANDIDATES
        assert all(shard.experiment == "search"
                   for shard in definition.shards)

    def test_engine_run_matches_serial(self, tmp_path):
        # The sharded engine path (with caching) must reproduce the
        # serial run_search bytes exactly.
        engine_result = run_experiments(
            ["search"], seed=2022, jobs=1, use_cache=True,
            cache_dir=tmp_path / "cache").results["search"]
        assert _canonical(engine_result) == _canonical(run_search(seed=2022))

    def test_outcome_roundtrips_through_codec(self):
        from repro.bench.serialization import decode_result
        outcome = _outcome(3, "roundtrip", 123.4, 56.7, 0.01)
        assert decode_result(encode_result(outcome)) == outcome
