"""Unit tests for the shared experiment harness."""

import pytest

from repro.bench.harness import (cold_and_warm, drain,
                                 fireworks_invocation, fresh_platform,
                                 install_all, invoke_once, provision_warm)
from repro.core.fireworks import FireworksPlatform
from repro.platforms.firecracker import FirecrackerPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.workloads import faasdom_spec


@pytest.fixture
def spec():
    return faasdom_spec("faas-netlatency", "nodejs")


class TestFreshPlatform:
    def test_isolated_hosts(self):
        a = fresh_platform(OpenWhiskPlatform)
        b = fresh_platform(OpenWhiskPlatform)
        assert a.sim is not b.sim
        assert a.host_memory is not b.host_memory

    def test_kwargs_forwarded(self):
        platform = fresh_platform(FireworksPlatform,
                                  restore_policy="reap")
        assert platform.restore_policy == "reap"

    def test_seed_controls_rng(self):
        a = fresh_platform(OpenWhiskPlatform, seed=1)
        b = fresh_platform(OpenWhiskPlatform, seed=1)
        assert a.sim.rng.stream("x").random() == \
            b.sim.rng.stream("x").random()


class TestInstallInvoke:
    def test_install_all_registers(self, spec):
        platform = fresh_platform(OpenWhiskPlatform)
        install_all(platform, [spec])
        assert platform.installed_functions() == (spec.name,)

    def test_invoke_once_returns_record(self, spec):
        platform = fresh_platform(OpenWhiskPlatform)
        install_all(platform, [spec])
        record = invoke_once(platform, spec.name)
        assert record.function == spec.name
        assert record.total_ms > 0


class TestColdAndWarm:
    def test_modes_are_correct(self, spec):
        cold, warm = cold_and_warm(FirecrackerPlatform, spec)
        assert cold.mode == "cold"
        assert warm.mode == "warm"
        assert warm.startup_ms < cold.startup_ms

    def test_openwhisk_warm_via_prior_invocation(self, spec):
        cold, warm = cold_and_warm(OpenWhiskPlatform, spec)
        assert warm.startup_ms < cold.startup_ms


class TestProvisionWarm:
    def test_sandbox_manager_path(self, spec):
        platform = fresh_platform(FirecrackerPlatform)
        install_all(platform, [spec])
        provision_warm(platform, spec.name)
        assert platform.pool.size(spec.name, platform.sim.now) == 1

    def test_openwhisk_fallback_path(self, spec):
        platform = fresh_platform(OpenWhiskPlatform)
        install_all(platform, [spec])
        provision_warm(platform, spec.name)  # = one cold invocation
        assert platform.cold_starts == 1
        record = invoke_once(platform, spec.name, mode="warm")
        assert record.mode == "warm"


class TestFireworksInvocation:
    def test_one_call_does_install_and_invoke(self, spec):
        record = fireworks_invocation(spec)
        assert record.mode == "snapshot"
        assert record.startup_ms < 60


class TestDrain:
    def test_drains_background_teardowns(self, spec):
        platform = fresh_platform(FireworksPlatform)
        install_all(platform, [spec])
        invoke_once(platform, spec.name)
        drain(platform)
        image = platform.image_for(spec.name)
        assert platform.host_memory.used_mb == pytest.approx(image.size_mb)
