"""The open-loop load experiment: determinism, chaos, and accounting.

The serving layer's value depends on its runs being *replayable*: two
identically-seeded ``repro load`` runs must be byte-identical — including
under a mid-trace host crash — and every submitted request must be
accounted for exactly once (completed, shed, or failed), with no leaked
admission-queue slots or warm workers afterwards.
"""

import json

import pytest

from repro.bench.load import (LOAD_MODES, LOAD_PLATFORMS, build_load_trace,
                              run_load_platform)
from repro.bench.serialization import encode_result
from repro.chaos.plan import ChaosPlan
from repro.cli import main
from repro.errors import ValidationError

# Small but non-trivial: a few hundred events, queueing visible.
SMALL = dict(n_hosts=3, n_functions=8, duration_ms=20_000.0,
             popular_interarrival_ms=100.0, seed=7)


def _canonical(outcome) -> bytes:
    """The exact bytes the CLI's --json path emits for one outcome."""
    return json.dumps(encode_result(outcome), sort_keys=True,
                      separators=(",", ":")).encode()


class TestSeededDeterminism:
    def test_two_identical_seeds_are_byte_identical(self):
        first = run_load_platform("fireworks", "predictive", **SMALL)
        second = run_load_platform("fireworks", "predictive", **SMALL)
        assert _canonical(first) == _canonical(second)

    def test_different_seeds_differ(self):
        first = run_load_platform("fireworks", "predictive", **SMALL)
        changed = dict(SMALL, seed=8)
        second = run_load_platform("fireworks", "predictive", **changed)
        assert _canonical(first) != _canonical(second)

    def test_cli_json_is_byte_identical_across_runs(self, capsys):
        argv = ["load", "--platform", "fireworks", "--mode", "predictive",
                "--hosts", "3", "--functions", "8",
                "--duration-ms", "20000", "--seed", "7",
                "--popular-interarrival-ms", "100", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert "fireworks@predictive" in payload


class TestChaosCrashMidTrace:
    """One host dies mid-trace; the run stays deterministic and clean."""

    # Host 2 is the hash home of every function in the SMALL config —
    # crashing it mid-trace displaces queued and in-flight work.
    PLAN_KW = dict(at_ms=8_000.0, host_id=2)

    def _run(self):
        plan = ChaosPlan.single_crash(**self.PLAN_KW)
        return run_load_platform("fireworks", "predictive",
                                 chaos_plan=plan, return_platform=True,
                                 **SMALL)

    def test_chaos_run_is_byte_identical_across_runs(self):
        first, _ = self._run()
        second, _ = self._run()
        assert _canonical(first) == _canonical(second)

    def test_every_submission_is_accounted_exactly_once(self):
        outcome, platform = self._run()
        assert outcome.requests > 0
        assert outcome.completed + outcome.shed + outcome.failed \
            == outcome.requests
        assert outcome.completed == len(platform.records)
        assert outcome.failed == len(platform.failed_invocations)
        assert outcome.shed == len(platform.shedded_invocations)

    def test_no_leaked_queue_slots_or_warm_workers(self):
        _, platform = self._run()
        crashed = platform.cluster.host(self.PLAN_KW["host_id"])
        assert crashed.down
        # The drained run left no queued waiter anywhere, no busy slot,
        # and the dead host's warm pool is empty.
        now = platform.sim.now
        for host in platform.cluster.hosts:
            if host.admission is not None:
                assert host.admission.depth == 0
            assert host.active == 0
        assert crashed.pool.live_entries(now) == []
        assert crashed.pool.drain_all() == []
        # Queued work displaced by the crash failed over or failed
        # loudly; silent loss would show up as an accounting gap above.
        flushed = (crashed.admission.flushed_down
                   if crashed.admission is not None else 0)
        assert flushed >= 0

    def test_crash_actually_disrupted_the_run(self):
        plain = run_load_platform("fireworks", "predictive", **SMALL)
        disrupted, _ = self._run()
        assert _canonical(plain) != _canonical(disrupted)


class TestOutcomeShape:
    def test_registry_covers_all_platforms_and_modes(self):
        assert set(LOAD_PLATFORMS) == {"fireworks", "openwhisk",
                                       "firecracker", "gvisor", "catalyzer"}
        assert LOAD_MODES == ("none", "reactive", "predictive")

    def test_trace_is_seed_deterministic(self):
        first = build_load_trace(8, 20_000.0, 7)
        second = build_load_trace(8, 20_000.0, 7)
        assert first == second

    def test_unknown_platform_or_mode_raises(self):
        with pytest.raises(KeyError):
            run_load_platform("nope", "none", **SMALL)
        with pytest.raises(ValidationError, match="registered"):
            run_load_platform("fireworks", "sometimes", **SMALL)

    def test_rates_and_shares_are_bounded(self):
        outcome = run_load_platform("fireworks", "none", **SMALL)
        assert 0.0 <= outcome.shed_rate <= 1.0
        assert 0.0 <= outcome.goodput <= 1.0
        assert 0.0 <= outcome.cold_start_share <= 1.0
        assert outcome.as_line()
