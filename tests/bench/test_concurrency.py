"""Tests for the burst-load extension experiments."""

import pytest

from repro.bench.concurrency import run_burst, run_burst_comparison
from repro.core.fireworks import FireworksPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform


class TestRunBurst:
    def test_all_requests_complete(self):
        result = run_burst(FireworksPlatform, requests=32, cores=8)
        assert result.latency.count == 32
        assert result.requests == 32
        assert result.makespan_ms >= result.latency.p99_ms

    def test_queueing_appears_when_oversubscribed(self):
        under = run_burst(FireworksPlatform, requests=8, cores=8)
        over = run_burst(FireworksPlatform, requests=64, cores=8)
        assert under.mean_queue_wait_ms == 0.0
        assert over.mean_queue_wait_ms > 0.0
        assert over.peak_queue_length > 0

    def test_openwhisk_reuses_containers_under_burst(self):
        result = run_burst(OpenWhiskPlatform, requests=64, cores=8,
                           benchmark="faas-netlatency")
        # Later queued requests find containers released by earlier ones.
        assert result.warm_share > 0.5

    def test_deterministic(self):
        a = run_burst(FireworksPlatform, requests=16, cores=4, seed=3)
        b = run_burst(FireworksPlatform, requests=16, cores=4, seed=3)
        assert a.latency.p99_ms == b.latency.p99_ms


class TestBurstComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_burst_comparison(requests=128, cores=32)

    def test_fireworks_best_tail(self, comparison):
        fw = comparison["fireworks"].latency.p99_ms
        assert fw < comparison["openwhisk"].latency.p99_ms / 5
        assert fw < comparison["firecracker"].latency.p99_ms / 10

    def test_fireworks_shortest_makespan(self, comparison):
        makespans = {name: result.makespan_ms
                     for name, result in comparison.items()}
        assert min(makespans, key=makespans.get) == "fireworks"
