"""Tests for the one-shot report and the CLI's report command."""

import pytest

from repro.bench.report import full_report


@pytest.fixture(scope="module")
def report():
    return full_report(include_extensions=False)


class TestFullReport:
    def test_every_artifact_present(self, report):
        for needle in ("Table 1", "Table 2", "§5.1", "Figure 6",
                       "Figure 7", "Figure 9", "Figure 10", "Figure 11",
                       "Figure 12", "Scorecard"):
            assert needle in report, needle

    def test_all_claims_hold(self, report):
        assert "claims holding: 15/15" in report
        assert "[DEV]" not in report

    def test_extensions_toggle(self, report):
        assert "Extensions" not in report
        with_extensions = full_report(include_extensions=True)
        assert "Extensions" in with_extensions
        assert "burst:" in with_extensions

    def test_platform_rows_rendered(self, report):
        assert "fireworks" in report
        assert "openwhisk (c)" in report


class TestCliReport:
    def test_report_command(self, capsys):
        from repro.cli import main
        assert main(["report", "--no-extensions"]) == 0
        out = capsys.readouterr().out
        assert "claims holding: 15/15" in out

    def test_chart_flag(self, capsys):
        from repro.cli import main
        assert main(["run", "fig9", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "S=start-up" in out
        assert "|" in out
