"""Unit tests for latency statistics."""

import pytest

from repro.bench.stats import LatencyStats, histogram, percentile


class TestPercentile:
    def test_single_sample(self):
        assert percentile([42.0], 99) == 42.0

    def test_median_of_odd(self):
        assert percentile([1, 3, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        samples = list(range(101))
        assert percentile(samples, 0) == 0
        assert percentile(samples, 100) == 100

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_q_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_order_independent(self):
        a = [5, 1, 9, 3, 7]
        assert percentile(a, 90) == percentile(sorted(a), 90)


class TestLatencyStats:
    def test_from_samples(self):
        stats = LatencyStats.from_samples([10.0, 20.0, 30.0, 40.0])
        assert stats.count == 4
        assert stats.mean_ms == pytest.approx(25.0)
        assert stats.p50_ms == pytest.approx(25.0)
        assert stats.max_ms == 40.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples([])

    def test_as_line(self):
        line = LatencyStats.from_samples([1.0, 2.0]).as_line()
        assert "p99" in line and "n=2" in line

    def test_percentiles_ordered(self):
        stats = LatencyStats.from_samples(list(range(1000)))
        assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms <= stats.max_ms


class TestHistogram:
    def test_buckets(self):
        buckets = histogram([1, 2, 11, 12, 25], bucket_ms=10)
        assert buckets == [(0, 2), (10, 2), (20, 1)]

    def test_bad_bucket_raises(self):
        with pytest.raises(ValueError):
            histogram([1], bucket_ms=0)

    def test_empty_samples(self):
        assert histogram([], bucket_ms=10) == []
