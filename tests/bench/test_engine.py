"""The parallel experiment engine: determinism, caching, registry."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.bench.engine import (ResultCache, Shard, experiment_ids,
                                experiment_registry, resolve_ids,
                                run_experiments)
from repro.bench.serialization import (dumps_result, encode_result,
                                       loads_result)
from repro.bench.results import FigureResult, MemorySeries
from repro.config import default_parameters, params_fingerprint
from repro.errors import ReproError

#: A cheap but representative subset: FigureResult shards with a merged
#: geomean (fig6), MemorySeries shards (fig10), and per-point sweeps
#: (sensitivity) — everything the determinism guarantee names.
SUBSET = ["fig6", "fig10", "sensitivity"]


class TestRegistry:
    def test_every_cli_figure_is_an_experiment(self):
        from repro.cli import EXTENSIONS, FIGURES
        assert experiment_ids() == FIGURES + EXTENSIONS

    def test_shard_keys_unique_per_experiment(self):
        for definition in experiment_registry().values():
            keys = [shard.key for shard in definition.shards]
            assert len(keys) == len(set(keys)), definition.id

    def test_resolve_all_expands_in_order(self):
        assert resolve_ids(["all"]) == list(experiment_ids())

    def test_resolve_dedupes_preserving_order(self):
        assert resolve_ids(["fig10", "fig6", "fig10"]) == ["fig10", "fig6"]

    def test_resolve_unknown_id(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            resolve_ids(["fig99"])

    def test_jobs_must_be_positive(self):
        with pytest.raises(ReproError, match="jobs"):
            run_experiments(["table2"], jobs=0, use_cache=False)


class TestDeterminism:
    """Same seed => identical results across serial, parallel, cache-hit."""

    def test_serial_parallel_cached_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        serial = run_experiments(SUBSET, jobs=1, cache_dir=cache_dir)
        assert serial.stats.cache_hits == 0
        parallel = run_experiments(SUBSET, jobs=4, use_cache=False)
        cached = run_experiments(SUBSET, jobs=4, cache_dir=cache_dir)
        assert cached.stats.executed == 0
        assert cached.stats.cache_hits == serial.stats.shards_total

        assert serial.results == parallel.results == cached.results
        fig6 = serial.results["fig6"]["geomean"]
        assert isinstance(fig6, FigureResult)
        assert isinstance(serial.results["fig10"]["fireworks"], MemorySeries)

    def test_engine_matches_direct_drivers(self, tmp_path):
        from repro.bench.faasdom_experiments import run_fig6
        from repro.bench.memory import run_fig10
        outcome = run_experiments(["fig6", "fig10"], use_cache=False)
        assert outcome.results["fig6"] == run_fig6()
        assert outcome.results["fig10"] == run_fig10()

    def test_cached_payload_survives_disk(self, tmp_path):
        """Cache hits literally re-read binary blobs from disk — and
        still match."""
        cache_dir = str(tmp_path / "cache")
        first = run_experiments(["fig10"], cache_dir=cache_dir)
        entries = list((tmp_path / "cache" / "fig10").glob("*.bin"))
        assert len(entries) == 2  # one per platform shard
        for entry in entries:
            loads_result(entry.read_bytes())  # valid binary blob on disk
        second = run_experiments(["fig10"], cache_dir=cache_dir)
        assert second.results == first.results

    def test_legacy_json_entry_still_loads(self, tmp_path):
        """A pre-rewrite .json cache entry is read as a fallback."""
        cache_dir = str(tmp_path / "cache")
        first = run_experiments(["table2"], cache_dir=cache_dir)
        entry = next((tmp_path / "cache" / "table2").glob("*.bin"))
        stale = loads_result(entry.read_bytes())
        # Rewrite the entry in the legacy JSON format (encoded payload
        # under "payload") and drop the binary.
        stale["payload"] = encode_result(stale.pop("result"))
        entry.with_suffix(".json").write_text(json.dumps(stale))
        entry.unlink()
        again = run_experiments(["table2"], cache_dir=cache_dir)
        assert again.stats.cache_hits == 1
        assert again.results == first.results


class TestSingleCpuFallback:
    def test_single_cpu_runs_serially_and_logs(self, monkeypatch, caplog):
        import logging
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        with caplog.at_level(logging.INFO, logger="repro.bench.engine"):
            outcome = run_experiments(["table2"], jobs=4, use_cache=False)
        assert outcome.stats.executed == 1
        assert any("serially" in record.message
                   for record in caplog.records)

    def test_multi_cpu_keeps_pool_path(self, monkeypatch, caplog):
        import logging
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        with caplog.at_level(logging.INFO, logger="repro.bench.engine"):
            run_experiments(["fig10"], jobs=2, use_cache=False)
        assert not any("serially" in record.message
                       for record in caplog.records)


class TestResultCache:
    def _shard(self):
        return experiment_registry()["fig10"].shards[0]

    def test_key_depends_on_params(self):
        cache = ResultCache("unused")
        shard = self._shard()
        params = default_parameters()
        base = cache.key(shard, params_fingerprint(params), 2022)
        tweaked = dataclasses.replace(
            params, snapshot=dataclasses.replace(
                params.snapshot, restore_base_ms=99.0))
        assert cache.key(shard, params_fingerprint(tweaked), 2022) != base

    def test_key_depends_on_seed_and_shard(self):
        cache = ResultCache("unused")
        shard = self._shard()
        fingerprint = params_fingerprint(default_parameters())
        base = cache.key(shard, fingerprint, 2022)
        assert cache.key(shard, fingerprint, 2023) != base
        other = experiment_registry()["fig10"].shards[1]
        assert cache.key(other, fingerprint, 2022) != base

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_experiments(["table2"], cache_dir=cache_dir)
        entry = next((tmp_path / "cache" / "table2").glob("*.bin"))
        entry.write_bytes(b"RBC\x01 truncated garbage")
        again = run_experiments(["table2"], cache_dir=cache_dir)
        assert again.stats.executed == 1
        assert again.results == first.results

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_experiments(["table2"], cache_dir=cache_dir)
        entry = next((tmp_path / "cache" / "table2").glob("*.bin"))
        entry.write_bytes(entry.read_bytes()[:-10])
        again = run_experiments(["table2"], cache_dir=cache_dir)
        assert again.stats.executed == 1
        assert again.results == first.results

    def test_schema_bump_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiments(["table2"], cache_dir=cache_dir)
        entry = next((tmp_path / "cache" / "table2").glob("*.bin"))
        stale = loads_result(entry.read_bytes())
        stale["schema"] = -1
        entry.write_bytes(dumps_result(stale))
        again = run_experiments(["table2"], cache_dir=cache_dir)
        assert again.stats.executed == 1

    def test_no_cache_writes_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_experiments(["table2"], use_cache=False,
                        cache_dir=str(cache_dir))
        assert not cache_dir.exists()

    def test_prune_drops_foreign_entries(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiments(["table2"], cache_dir=cache_dir)
        stale_bin = tmp_path / "cache" / "table2" / ("f" * 32 + ".bin")
        stale_bin.write_bytes(b"junk")
        stale_json = tmp_path / "cache" / "table2" / ("e" * 32 + ".json")
        stale_json.write_text("{}")
        cache = ResultCache(cache_dir)
        assert cache.prune() == 2
        assert not stale_bin.exists()
        assert not stale_json.exists()
        assert run_experiments(["table2"],
                               cache_dir=cache_dir).stats.cache_hits == 1

    def test_stats_summary_mentions_counts(self, tmp_path):
        outcome = run_experiments(["table2"],
                                  cache_dir=str(tmp_path / "cache"))
        summary = outcome.stats.summary()
        assert "1 shards" in summary and "1 executed" in summary


class TestShard:
    def test_kwargs_are_hashable_and_ordered(self):
        shard = Shard(experiment="x", key="k", fn="table1",
                      kwargs=(("b", 2), ("a", 1)))
        assert shard.kwargs_dict() == {"b": 2, "a": 1}
        hash(shard)  # frozen dataclass: usable as a dict key


class TestProgressEvents:
    """run_experiments(progress=...) narrates the shard schedule."""

    def test_serial_run_emits_started_finished_pairs(self, tmp_path):
        events = []
        run_experiments(["table1", "table2"],
                        cache_dir=str(tmp_path / "cache"),
                        progress=events.append)
        assert [(e.kind, e.experiment) for e in events] == [
            ("started", "table1"), ("finished", "table1"),
            ("started", "table2"), ("finished", "table2")]
        assert all(e.total == 2 for e in events)
        assert [e.index for e in events] == [0, 0, 1, 1]

    def test_cached_rerun_emits_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiments(["table1"], cache_dir=cache_dir)
        events = []
        run_experiments(["table1"], cache_dir=cache_dir,
                        progress=events.append)
        assert [e.kind for e in events] == ["cache-hit"]

    def test_progress_never_influences_results(self, tmp_path):
        quiet = run_experiments(["table2"], use_cache=False)
        noisy = run_experiments(["table2"], use_cache=False,
                                progress=lambda event: None)
        assert encode_result(quiet.results["table2"]) == \
            encode_result(noisy.results["table2"])
