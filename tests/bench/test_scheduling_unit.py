"""Tests for the scheduling-policy experiment."""

import pytest

from repro.bench.scheduling import run_scheduling_comparison
from repro.platforms.scheduler import (POLICY_HASH, POLICY_ROUND_ROBIN)


@pytest.fixture(scope="module")
def comparison():
    return run_scheduling_comparison(n_functions=9, rounds=8, nodes=4)


class TestSchedulingComparison:
    def test_hash_beats_round_robin_on_warm_hits(self, comparison):
        """OpenWhisk's home-invoker hashing exists for a reason."""
        assert comparison[POLICY_HASH].warm_hit_rate > \
            comparison[POLICY_ROUND_ROBIN].warm_hit_rate + 0.1

    def test_round_robin_spreads_most_evenly(self, comparison):
        spreads = {policy: result.load_spread
                   for policy, result in comparison.items()}
        assert spreads[POLICY_ROUND_ROBIN] == min(spreads.values())

    def test_all_policies_complete_the_stream(self, comparison):
        counts = {result.latency.count for result in comparison.values()}
        assert len(counts) == 1  # same number of requests everywhere

    def test_warm_hits_translate_to_latency(self, comparison):
        assert comparison[POLICY_HASH].latency.mean_ms < \
            comparison[POLICY_ROUND_ROBIN].latency.mean_ms


class TestOpenWhiskOnCluster:
    def test_warm_containers_are_host_local(self):
        from repro.bench import (fresh_cluster_platform, install_all,
                                 invoke_once)
        from repro.platforms.openwhisk import OpenWhiskPlatform
        from repro.workloads import faasdom_spec

        platform = fresh_cluster_platform(OpenWhiskPlatform, n_hosts=2,
                                          policy=POLICY_ROUND_ROBIN)
        spec = faasdom_spec("faas-netlatency", "nodejs")
        install_all(platform, [spec])
        # Round-robin alternates hosts; with one function the second
        # request lands on the other host and must cold start.
        invoke_once(platform, spec.name)
        invoke_once(platform, spec.name)
        assert platform.cold_starts == 2
        # Third request wraps to host 0, whose container is warm.
        invoke_once(platform, spec.name)
        assert platform.warm_starts == 1

    def test_host_slots_released_after_invocation(self):
        from repro.bench import (fresh_cluster_platform, install_all,
                                 invoke_once)
        from repro.platforms.openwhisk import OpenWhiskPlatform
        from repro.workloads import faasdom_spec

        platform = fresh_cluster_platform(OpenWhiskPlatform, n_hosts=1,
                                          capacity_per_host=1)
        spec = faasdom_spec("faas-netlatency", "nodejs")
        install_all(platform, [spec])
        for _ in range(3):  # would deadlock if slots leaked
            invoke_once(platform, spec.name)
        assert platform.cluster.total_active() == 0
