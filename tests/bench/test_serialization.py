"""Round-trip tests for the loss-free result codec."""

from __future__ import annotations

import json
import math

import pytest

from repro.bench.results import (FigureResult, LatencyRow, MemoryPoint,
                                 MemorySeries)
from repro.bench.sensitivity import SensitivityPoint, SensitivityResult
from repro.bench.serialization import (decode_result, encode_result,
                                       register_result_type)
from repro.errors import ReproError


def roundtrip(obj):
    """Encode -> JSON text -> decode, exactly as the cache does."""
    return decode_result(json.loads(json.dumps(encode_result(obj))))


class TestPrimitives:
    def test_scalars(self):
        for value in (None, True, False, 0, -3, "x", 1.5, 0.1 + 0.2):
            assert roundtrip(value) == value

    def test_float_bit_exact(self):
        tricky = [1e-308, 1e308, 2.675, 1 / 3, math.pi]
        assert all(roundtrip(v) == v for v in tricky)

    def test_non_finite_floats(self):
        assert roundtrip(float("inf")) == float("inf")
        assert roundtrip(float("-inf")) == float("-inf")
        assert math.isnan(roundtrip(float("nan")))

    def test_tuple_stays_tuple(self):
        assert roundtrip((1, 2, (3, 4))) == (1, 2, (3, 4))

    def test_non_string_dict_keys_keep_type(self):
        mapping = {20.0: "a", 60.0: "b", 3: "c"}
        decoded = roundtrip(mapping)
        assert decoded == mapping
        assert all(isinstance(key, (int, float)) for key in decoded)

    def test_dict_insertion_order_kept(self):
        mapping = {"z": 1, "a": 2, "m": 3}
        assert list(roundtrip(mapping)) == ["z", "a", "m"]


class TestDataclasses:
    def test_figure_result_roundtrip(self):
        figure = FigureResult(figure_id="fig6a", title="t")
        figure.rows.append(LatencyRow(platform="p", mode="cold",
                                      startup_ms=1.25, exec_ms=0.5,
                                      other_ms=0.125))
        figure.notes.append("a note")
        assert roundtrip(figure) == figure

    def test_memory_series_roundtrip(self):
        series = MemorySeries(platform="fireworks")
        series.points.append(MemoryPoint(n_vms=50, host_used_mb=1024.5,
                                         mean_pss_mb=20.25))
        series.max_vms_before_swap = 553
        assert roundtrip(series) == series

    def test_nested_structures(self):
        sweep = SensitivityResult(
            parameter="k", metric_name="m",
            points=[SensitivityPoint(value=2000.0, metric=13.5)])
        nested = {"sweeps": {"k": sweep}, "rates": (20.0, 60.0)}
        assert roundtrip(nested) == nested

    def test_unknown_dataclass_rejected(self):
        from dataclasses import dataclass

        @dataclass
        class NotRegistered:
            x: int

        with pytest.raises(ReproError, match="not registered"):
            encode_result(NotRegistered(x=1))

    def test_unknown_payload_type_rejected(self):
        with pytest.raises(ReproError, match="cannot encode"):
            encode_result(object())

    def test_register_requires_dataclass(self):
        with pytest.raises(ReproError, match="not a dataclass"):
            register_result_type(dict)

    def test_decode_unknown_type_name(self):
        with pytest.raises(ReproError, match="unknown result type"):
            decode_result({"$dc": "Bogus", "fields": {}})
