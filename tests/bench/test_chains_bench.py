"""Unit tests for the `figure chains` experiment driver."""

import pytest

from repro.bench.chains import (CHAIN_DAGS, CHAIN_POLICIES, ChainOutcome,
                                _resolve_chain_policy, build_chain_trace,
                                run_chains_platform,
                                shipped_placement_document, tenant_dags,
                                tenant_diamond_dag, tenant_events_db,
                                tenant_pipeline_dag)
from repro.bench.serialization import (decode_result, dumps_result,
                                       encode_result, loads_result)
from repro.bench.stats import LatencyStats
from repro.errors import ValidationError
from repro.platforms.scheduler import POLICY_HASH

FAST = dict(n_hosts=2, n_tenants=2, duration_ms=30_000.0,
            mean_interarrival_ms=6_000.0)


def _outcome(**overrides):
    base = dict(platform="fireworks", policy="hash", n_hosts=2, tenants=2,
                chains=10, completed=8, failed=2, stages=30, triggers=4,
                shed_stages=1, failed_stages=1,
                latency=LatencyStats.from_samples([100.0, 200.0]),
                warm_stages=24, locality_hits=3, locality_chances=6)
    base.update(overrides)
    return ChainOutcome(**base)


class TestChainOutcome:
    def test_derived_metrics(self):
        outcome = _outcome()
        assert outcome.goodput == 0.8
        assert outcome.cold_stage_share == pytest.approx(0.2)
        assert outcome.locality_fraction == 0.5

    def test_zero_denominators(self):
        outcome = _outcome(chains=0, completed=0, stages=0, warm_stages=0,
                           locality_hits=0, locality_chances=0)
        assert outcome.goodput == 1.0
        assert outcome.cold_stage_share == 0.0
        assert outcome.locality_fraction == 0.0

    def test_as_line_mentions_the_row(self):
        line = _outcome().as_line()
        assert "fireworks" in line
        assert "chains=  10" in line
        assert "triggers=" in line

    def test_serialization_round_trips(self):
        outcome = _outcome()
        assert decode_result(encode_result(outcome)) == outcome
        assert loads_result(dumps_result(outcome)) == outcome


class TestTenantWorkflows:
    def test_diamond_shape(self):
        dag = tenant_diamond_dag("tenant-00")
        assert dag.entry == "split"
        assert {e.dst for e in dag.invoke_out_edges("split")} == \
            {"left", "right"}
        assert {e.src for e in dag.invoke_in_edges("join")} == \
            {"left", "right"}
        audit = dag.invoke_in_edges("audit")
        assert audit[0].when_key == "priority"
        # Only high-priority payloads take the audit edge.
        assert "audit" in dag.active_stages({"priority": "high"})
        assert "audit" not in dag.active_stages({"priority": "normal"})

    def test_pipeline_trigger_edge(self):
        dag = tenant_pipeline_dag("tenant-00")
        [trigger] = dag.trigger_edges()
        assert trigger.database == tenant_events_db("tenant-00")
        assert trigger.dst == "report"

    def test_tenant_namespaces_disjoint(self):
        a = {fn.name for dag in tenant_dags("tenant-00").values()
             for fn in dag.functions}
        b = {fn.name for dag in tenant_dags("tenant-01").values()
             for fn in dag.functions}
        assert not a & b
        assert set(tenant_dags("tenant-00")) == set(CHAIN_DAGS)


class TestPolicyResolution:
    def test_registered_name_passes_through(self):
        spec, name = _resolve_chain_policy(POLICY_HASH)
        assert spec == POLICY_HASH
        assert name == POLICY_HASH

    def test_shipped_document_loads_by_name(self):
        spec, name = _resolve_chain_policy("chain-affinity")
        assert name == "chain-affinity"
        assert isinstance(spec, dict)
        assert spec["domain"] == "placement"

    def test_mapping_passes_through(self):
        document = shipped_placement_document("chain-affinity")
        spec, name = _resolve_chain_policy(document)
        assert spec is document
        assert name == "chain-affinity"

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="no shipped placement"):
            _resolve_chain_policy("no-such-policy")


class TestTrace:
    def test_build_chain_trace_deterministic(self):
        a = build_chain_trace(3, 60_000.0, seed=9)
        b = build_chain_trace(3, 60_000.0, seed=9)
        assert a == b
        tenants, trace = a
        assert tenants == ["tenant-00", "tenant-01", "tenant-02"]
        assert {event.dag for event in trace} <= set(CHAIN_DAGS)


class TestRunChainsPlatform:
    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError, match="unknown chains platform"):
            run_chains_platform("lambda")

    def test_row_is_byte_deterministic(self):
        blobs = [dumps_result(run_chains_platform("fireworks", **FAST))
                 for _ in range(2)]
        assert blobs[0] == blobs[1]

    def test_row_accounting_consistent(self):
        outcome, platform, all_runs = run_chains_platform(
            "firecracker", return_platform=True, **FAST)
        assert outcome.platform == "firecracker"
        assert outcome.completed + outcome.failed == outcome.chains
        assert outcome.chains > 0
        assert outcome.stages == sum(sum(run.ledger.values())
                                     for run in all_runs)
        # At-most-once everywhere: no ledger entry ever exceeds one.
        for run in all_runs:
            assert all(count == 1 for count in run.ledger.values())
        assert outcome.triggers == len(
            [run for run in all_runs if run.trigger_database])

    def test_policy_changes_reporting_name(self):
        outcome = run_chains_platform("gvisor", policy="chain-affinity",
                                      **FAST)
        assert outcome.policy == "chain-affinity"
        assert outcome.locality_chances > 0


class TestEngineRegistration:
    def test_chains_experiment_registered(self):
        from repro.bench.engine import experiment_ids, experiment_registry
        assert "chains" in experiment_ids()
        definition = experiment_registry()["chains"]
        from repro.bench.load import LOAD_PLATFORMS
        expected = {f"{platform}@{policy}"
                    for platform in LOAD_PLATFORMS
                    for policy in CHAIN_POLICIES}
        assert {shard.key for shard in definition.shards} == expected

    def test_merge_keys_rows(self):
        from repro.bench.engine import experiment_registry
        definition = experiment_registry()["chains"]
        shards = {shard.key: _outcome() for shard in definition.shards}
        merged = definition.merge(shards)
        assert set(merged) == set(shards)

    def test_render_uses_as_line(self):
        from repro.bench.render import render_experiment_text
        result = {"fireworks@hash": _outcome()}
        text = render_experiment_text("chains", result)
        assert "fireworks" in text
        assert "goodput=" in text
