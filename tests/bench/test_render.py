"""Renderer unit tests: thread isolation and the error contract.

The renderer is shared between the CLI and the service registry, which
calls it from per-run worker threads — so it must never route output
through the process-global ``sys.stdout`` (regression: it used
``contextlib.redirect_stdout``, so two runs finishing concurrently could
interleave into each other's frozen ``figures_text`` artifact).
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.render import render_experiment_text, render_run_text
from repro.errors import ReproError


@pytest.fixture(scope="module")
def table_results():
    """Merged results for the two cheap table experiments."""
    from repro.bench.engine import run_experiments
    return run_experiments(["table1", "table2"], use_cache=False).results


class TestThreadIsolation:
    def test_nothing_leaks_to_global_stdout(self, table_results, capsys):
        text = render_experiment_text("table1", table_results["table1"])
        assert "fireworks" in text
        assert capsys.readouterr().out == ""

    def test_concurrent_renders_ignore_stdout_noise(self, table_results,
                                                    capsys):
        """Renders racing a thread that prints to stdout stay pristine."""
        expected = render_run_text(table_results)
        stop = threading.Event()

        def noise():
            while not stop.is_set():
                print("NOISE", end="")

        rendered = []

        def render():
            for _ in range(10):
                rendered.append(render_run_text(table_results))

        noisy = threading.Thread(target=noise)
        workers = [threading.Thread(target=render) for _ in range(4)]
        noisy.start()
        try:
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            stop.set()
            noisy.join()
        assert len(rendered) == 40
        assert all(text == expected for text in rendered)
        assert "NOISE" not in expected


class TestErrorContract:
    def test_unknown_figure_raises_reproerror(self):
        # ReproError, not SystemExit: the service worker thread's error
        # path only catches Exception, and SystemExit is a BaseException
        # that would kill the thread and wedge the run in 'running'.
        with pytest.raises(ReproError, match="unknown figure 'fig99'"):
            render_experiment_text("fig99", {})
