"""Unit tests for ASCII chart rendering."""

import pytest

from repro.bench.ascii_chart import render_bar, render_figure
from repro.bench.results import FigureResult, LatencyRow


@pytest.fixture
def figure():
    result = FigureResult("fig6a", "fact breakdown")
    result.rows.append(LatencyRow("openwhisk", "cold", 1500.0, 800.0, 10.0))
    result.rows.append(LatencyRow("fireworks", "snapshot", 18.0, 500.0,
                                  3.0))
    return result


class TestRenderBar:
    def test_segments_in_order(self):
        row = LatencyRow("p", "cold", 30.0, 20.0, 10.0)
        bar = render_bar(row, scale_ms_per_char=10.0)
        assert bar == "SSS" + "EE" + "."

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            render_bar(LatencyRow("p", "cold", 1, 1, 1), 0.0)

    def test_bar_length_tracks_total(self):
        row = LatencyRow("p", "cold", 100.0, 100.0, 0.0)
        assert len(render_bar(row, 10.0)) == 20

    def test_carry_avoids_systematic_truncation(self):
        # Three segments of 5 ms at 10 ms/char: 15 ms -> 1 char total,
        # not zero.
        row = LatencyRow("p", "cold", 5.0, 5.0, 5.0)
        assert len(render_bar(row, 10.0)) == 1


class TestRenderFigure:
    def test_contains_all_rows_and_legend(self, figure):
        text = render_figure(figure)
        assert "openwhisk (c)" in text
        assert "fireworks (both)" in text
        assert "S=start-up" in text

    def test_widest_row_fills_width(self, figure):
        text = render_figure(figure, width=40)
        bar_line = next(line for line in text.splitlines()
                        if "openwhisk" in line)
        bar = bar_line.split("|")[1]
        assert len(bar.rstrip()) in (39, 40)  # rounding may drop one char

    def test_small_width_rejected(self, figure):
        with pytest.raises(ValueError):
            render_figure(figure, width=5)

    def test_empty_figure(self):
        text = render_figure(FigureResult("figx", "empty"))
        assert "(no rows)" in text

    def test_relative_lengths_track_totals(self, figure):
        text = render_figure(figure, width=50)
        lines = [line for line in text.splitlines() if "|" in line]
        ow_bar = lines[0].split("|")[1].strip()
        fw_bar = lines[1].split("|")[1].strip()
        assert len(ow_bar) > 3 * len(fw_bar)
