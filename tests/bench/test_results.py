"""Unit tests for result containers and rendering."""

import pytest

from repro.bench.results import (FigureResult, LatencyRow, MemoryPoint,
                                 MemorySeries, PaperComparison,
                                 format_comparisons, geometric_mean)


class TestLatencyRow:
    def test_total(self):
        row = LatencyRow("fw", "snapshot", 10.0, 20.0, 5.0)
        assert row.total_ms == 35.0

    def test_labels(self):
        assert LatencyRow("fw", "cold", 1, 1, 1).label() == "fw (c)"
        assert LatencyRow("fw", "warm", 1, 1, 1).label() == "fw (w)"
        assert LatencyRow("fw", "snapshot", 1, 1, 1).label() == "fw (both)"


class TestFigureResult:
    def test_row_lookup(self):
        figure = FigureResult("fig6a", "t")
        row = LatencyRow("fw", "snapshot", 1, 2, 3)
        figure.rows.append(row)
        assert figure.row("fw", "snapshot") is row
        with pytest.raises(KeyError):
            figure.row("fw", "cold")

    def test_as_table_contains_rows_and_notes(self):
        figure = FigureResult("fig6a", "fact breakdown")
        figure.rows.append(LatencyRow("fw", "snapshot", 1, 2, 3))
        figure.notes.append("a note")
        table = figure.as_table()
        assert "fig6a" in table
        assert "fw (both)" in table
        assert "a note" in table


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_below_arithmetic_mean(self):
        values = [3.0, 5.0, 50.0]
        assert geometric_mean(values) < sum(values) / len(values)


class TestMemorySeries:
    def test_as_table(self):
        series = MemorySeries("fireworks", max_vms_before_swap=553)
        series.points.append(MemoryPoint(50, 10000.0, 140.0))
        table = series.as_table()
        assert "553" in table and "n=50" in table


class TestPaperComparison:
    def test_line_marks(self):
        ok = PaperComparison("x", "10x", "9.5x", holds=True)
        dev = PaperComparison("y", "2x", "8x", holds=False, comment="why")
        assert ok.as_line().startswith("[OK ]")
        assert dev.as_line().startswith("[DEV]")
        assert "why" in dev.as_line()

    def test_format_block(self):
        block = format_comparisons("fig6", [
            PaperComparison("a", "1", "1", True)])
        assert "fig6" in block
