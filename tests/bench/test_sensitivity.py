"""Unit tests for parameter-sensitivity analysis."""

import pytest

from repro.bench.sensitivity import (METRICS, PARAMETER_KNOBS,
                                     run_sensitivity)
from repro.errors import ReproError


class TestKnobsAndMetrics:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ReproError, match="knob"):
            run_sensitivity("nonsense.knob", [1.0],
                            "cold_start_speedup_x")

    def test_unknown_metric_rejected(self):
        with pytest.raises(ReproError, match="metric"):
            run_sensitivity("nodejs.hotness_threshold_units", [1.0],
                            "nonsense")

    def test_registries_nonempty(self):
        assert len(PARAMETER_KNOBS) >= 5
        assert len(METRICS) >= 3

    def test_invalid_swept_value_rejected(self):
        from repro.validation import InvalidParametersError
        with pytest.raises(InvalidParametersError):
            run_sensitivity("nodejs.snapshot_working_set_fraction",
                            [1.5], "cold_start_speedup_x")


class TestDirections:
    """Each sweep must move the metric in the physically right direction."""

    def test_hotness_threshold_raises_exec_improvement(self):
        result = run_sensitivity(
            "nodejs.hotness_threshold_units", [2000.0, 20000.0],
            "node_exec_improvement_pct")
        # Later tier-up -> baselines interpret longer -> Fireworks' edge
        # grows.
        assert result.points[0].metric < result.points[1].metric

    def test_working_set_lowers_cold_start_speedup(self):
        result = run_sensitivity(
            "nodejs.snapshot_working_set_fraction", [0.05, 0.60],
            "cold_start_speedup_x")
        # Bigger working set -> slower restore -> smaller speedup.
        assert result.points[0].metric > result.points[1].metric

    def test_steady_dirty_lowers_consolidation(self):
        result = run_sensitivity(
            "nodejs.steady_state_dirty_fraction", [0.1, 0.8],
            "consolidation_ratio")
        # More CoW breakage under load -> less sharing -> fewer extra VMs.
        assert result.points[0].metric > result.points[1].metric

    def test_metric_range_reported(self):
        result = run_sensitivity(
            "snapshot.restore_per_working_mb_ms", [0.1, 1.0],
            "cold_start_speedup_x")
        assert result.metric_range > 0
        assert "sensitivity" in result.as_table()
