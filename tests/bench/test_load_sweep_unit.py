"""Unit tests for the sustained-load sweep."""

import pytest

from repro.bench.concurrency import LoadPoint, run_load_sweep
from repro.bench.stats import LatencyStats
from repro.core.fireworks import FireworksPlatform
from repro.platforms.firecracker import FirecrackerPlatform


class TestLoadPoint:
    def test_saturation_flag(self):
        stats = LatencyStats.from_samples([10.0, 10.0, 10.0])
        calm = LoadPoint(10.0, 10.0, stats, mean_queue_wait_ms=1.0)
        stressed = LoadPoint(10.0, 5.0, stats, mean_queue_wait_ms=50.0)
        assert not calm.saturated
        assert stressed.saturated


class TestSweep:
    def test_fireworks_flat_under_load(self):
        points = run_load_sweep(FireworksPlatform,
                                rates_rps=(30.0, 300.0),
                                duration_ms=4000.0)
        assert points[30.0].latency.p50_ms == \
            pytest.approx(points[300.0].latency.p50_ms, rel=0.10)

    def test_firecracker_saturates(self):
        points = run_load_sweep(FirecrackerPlatform, rates_rps=(200.0,),
                                duration_ms=4000.0)
        point = points[200.0]
        assert point.saturated
        # Throughput ~ cores / boot-dominated service time.
        assert point.achieved_rps < 50

    def test_achieved_tracks_offered_when_unsaturated(self):
        points = run_load_sweep(FireworksPlatform, rates_rps=(100.0,),
                                duration_ms=6000.0)
        assert points[100.0].achieved_rps == pytest.approx(100.0, rel=0.3)

    def test_deterministic(self):
        a = run_load_sweep(FireworksPlatform, rates_rps=(50.0,),
                           duration_ms=3000.0, seed=5)
        b = run_load_sweep(FireworksPlatform, rates_rps=(50.0,),
                           duration_ms=3000.0, seed=5)
        assert a[50.0].latency.p99_ms == b[50.0].latency.p99_ms
