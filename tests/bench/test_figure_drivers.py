"""Unit tests for the per-figure experiment drivers (structure, not bands —
the bands live in benchmarks/ and tests/integration/)."""

import pytest

from repro.bench.faasdom_experiments import (run_faasdom_benchmark,
                                             run_faasdom_figure)
from repro.bench.factors import run_factor_analysis
from repro.bench.memory import run_fig12
from repro.bench.paper import comparison_summary
from repro.bench.results import PaperComparison
from repro.bench.tables import run_table1, run_table2


class TestFaasdomDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_faasdom_benchmark("faas-fact", "nodejs")

    def test_seven_bars(self, result):
        assert len(result.rows) == 7  # 3 platforms x 2 modes + fireworks

    def test_figure_id_mapping(self, result):
        assert result.figure_id == "fig6a"
        python_result = run_faasdom_benchmark("faas-netlatency", "python")
        assert python_result.figure_id == "fig7d"

    def test_notes_present(self, result):
        assert len(result.notes) == 2
        assert "cold start-up speedup" in result.notes[1]

    def test_full_figure_has_geomean(self):
        figure = run_faasdom_figure("nodejs")
        assert set(figure) == {"faas-fact", "faas-matrix-mult",
                               "faas-diskio", "faas-netlatency", "geomean"}
        geomean = figure["geomean"]
        assert len(geomean.rows) == 7

    def test_geomean_between_extremes(self):
        figure = run_faasdom_figure("nodejs")
        totals = [figure[b].row("fireworks", "snapshot").total_ms
                  for b in ("faas-fact", "faas-matrix-mult", "faas-diskio",
                            "faas-netlatency")]
        geomean_total = figure["geomean"].row("fireworks",
                                              "snapshot").total_ms
        assert min(totals) <= geomean_total <= max(totals)


class TestFactorDriver:
    def test_row_fields_consistent(self):
        row = run_factor_analysis("faas-netlatency", "nodejs")
        assert row.workload == "faas-netlatency-nodejs"
        assert row.baseline_ms > row.os_snapshot_ms > row.post_jit_ms
        assert row.post_jit_speedup == pytest.approx(
            row.os_snapshot_speedup * row.post_jit_over_os_speedup)

    def test_as_line_renders(self):
        line = run_factor_analysis("faas-netlatency", "python").as_line()
        assert "baseline=" in line and "+post-jit=" in line


class TestFig12Driver:
    def test_subset_selection(self):
        results = run_fig12(benchmarks=["faas-netlatency"],
                            languages=["nodejs"], n_vms=4)
        assert list(results) == ["faas-netlatency-nodejs"]
        per_config = results["faas-netlatency-nodejs"]
        assert set(per_config) == {"firecracker", "+os-snapshot",
                                   "+post-jit"}
        assert all(value > 0 for value in per_config.values())


class TestTables:
    def test_table1_six_rows_paper_order(self):
        rows = run_table1()
        assert [row["platform"] for row in rows] == [
            "firecracker", "openwhisk", "gvisor", "cloudflare-workers",
            "catalyzer", "fireworks"]

    def test_table2_languages(self):
        rows = run_table2()
        serverlessbench = [row for row in rows
                           if row["application"].startswith("Serverless")]
        assert all(row["language"] == "Node.js"
                   for row in serverlessbench)


class TestComparisonSummary:
    def test_counts(self):
        comparisons = [
            PaperComparison("a", "1", "1", holds=True),
            PaperComparison("b", "1", "2", holds=False),
        ]
        summary = comparison_summary(comparisons)
        assert summary == {"total": 2, "holds": 1, "deviates": 1}
