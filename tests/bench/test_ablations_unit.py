"""Unit tests for the ablation drivers' result structures."""

import pytest

from repro.bench.ablations import (KeepAliveOutcome,
                                   run_catalyzer_comparison,
                                   run_deopt_experiment,
                                   run_regeneration_demo,
                                   run_remote_store_ablation,
                                   run_store_eviction_demo)


class TestDeoptDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_deopt_experiment()

    def test_deopts_occur(self, result):
        assert result.total_deopts >= 3  # one per distinct skill shape

    def test_winner_flag_consistent(self, result):
        assert result.fireworks_still_wins == \
            (result.fireworks_mean_ms < result.openwhisk_mean_ms)


class TestStoreEvictionDriver:
    def test_counts_reconcile(self):
        result = run_store_eviction_demo(capacity_images=3)
        assert result["installed"] == \
            result["resident_images"] + result["evictions"]
        assert len(result["resident_keys"]) == result["resident_images"]

    def test_capacity_one(self):
        result = run_store_eviction_demo(capacity_images=1)
        assert result["resident_images"] == 1
        assert result["evictions"] == 7


class TestRegenerationDriver:
    def test_startup_stable_across_generations(self):
        result = run_regeneration_demo()
        assert result["generation"] == 2.0
        assert result["startup_after_ms"] == pytest.approx(
            result["startup_before_ms"], rel=0.05)


class TestRemoteStoreDriver:
    def test_fetch_cost_scales_with_image(self):
        result = run_remote_store_ablation()
        # Download dominates: remote - local ~ image/bandwidth + rtt.
        transfer_ms = result["remote_fetch_ms"] - result["local_hit_ms"]
        assert transfer_ms > result["image_mb"] / 2.0  # >= slow-ish link


class TestCatalyzerDriver:
    def test_result_shape(self):
        results = run_catalyzer_comparison(benchmark="faas-netlatency")
        assert set(results) == {"catalyzer", "fireworks"}
        for values in results.values():
            assert values["cold_startup_ms"] > 0
            assert values["exec_ms"] > 0


class TestKeepAliveOutcome:
    def test_line_format(self):
        outcome = KeepAliveOutcome("x", 12.0, 0.5, 100.0)
        line = outcome.as_line()
        assert "warm-hit= 50.0%" in line
        assert "idle-mem=" in line
