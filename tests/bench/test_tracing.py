"""Unit tests for Chrome-trace export."""

import json

import pytest

from repro.bench import fresh_platform, install_chain, invoke_once
from repro.bench.tracing import to_chrome_trace_json, trace_events
from repro.core import FireworksPlatform
from repro.platforms.base import InvocationRecord
from repro.workloads import alexa_skills_chain


def _record(function="fn", submitted=100.0, startup=10.0, exec_ms=20.0,
            other=5.0, queue=0.0):
    record = InvocationRecord(function=function, platform="fireworks",
                              mode="snapshot", submitted_ms=submitted)
    record.startup_ms = startup
    record.exec_ms = exec_ms
    record.other_ms = other
    record.queue_wait_ms = queue
    return record


class TestTraceEvents:
    def test_phases_become_spans(self):
        events = trace_events([_record()])
        names = {event["name"] for event in events}
        assert names == {"fn:frontend", "fn:startup", "fn:exec"}

    def test_zero_phases_omitted(self):
        events = trace_events([_record(other=0.0)])
        names = {event["name"] for event in events}
        assert "fn:frontend" not in names

    def test_queue_span_present_when_waited(self):
        events = trace_events([_record(other=8.0, queue=3.0)])
        spans = {event["name"]: event for event in events}
        assert spans["fn:queue"]["dur"] == pytest.approx(3000.0)
        assert spans["fn:frontend"]["dur"] == pytest.approx(5000.0)

    def test_spans_are_sequential(self):
        events = trace_events([_record()])
        ordered = sorted(events, key=lambda e: e["ts"])
        for earlier, later in zip(ordered, ordered[1:]):
            assert later["ts"] == pytest.approx(
                earlier["ts"] + earlier["dur"])

    def test_children_on_deeper_lanes(self):
        parent = _record(function="parent")
        parent.children.append(_record(function="child", submitted=120.0))
        events = trace_events([parent])
        tids = {event["name"].split(":")[0]: event["tid"]
                for event in events}
        assert tids["child"] == tids["parent"] + 1

    def test_timestamps_in_microseconds(self):
        events = trace_events([_record(submitted=100.0)])
        assert min(event["ts"] for event in events) == \
            pytest.approx(100000.0)


class TestInstallSpans:
    def test_install_phase_spans(self):
        from repro.bench import install_all
        from repro.bench.tracing import install_trace_events
        from repro.workloads import faasdom_spec
        platform = fresh_platform(FireworksPlatform)
        install_all(platform, [faasdom_spec("faas-fact", "python")])
        events = install_trace_events(platform.install_reports.values())
        phases = {event["name"].rsplit(":", 1)[1] for event in events}
        assert phases == {"annotate", "boot+load", "jit", "snapshot"}
        # Back-to-back layout.
        ordered = sorted(events, key=lambda e: e["ts"])
        for earlier, later in zip(ordered, ordered[1:]):
            assert later["ts"] == pytest.approx(
                earlier["ts"] + earlier["dur"])

    def test_combined_document(self):
        from repro.bench import install_all, invoke_once
        from repro.bench.tracing import to_chrome_trace_json
        from repro.workloads import faasdom_spec
        platform = fresh_platform(FireworksPlatform)
        install_all(platform, [faasdom_spec("faas-fact", "python")])
        invoke_once(platform, "faas-fact-python")
        document = json.loads(to_chrome_trace_json(
            platform.records,
            install_reports=platform.install_reports.values()))
        categories = {event["cat"] for event in document["traceEvents"]}
        assert "install" in categories
        assert "fireworks" in categories


class TestChromeJson:
    def test_valid_json_document(self):
        document = json.loads(to_chrome_trace_json([_record()]))
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == 3

    def test_real_chain_trace(self):
        platform = fresh_platform(FireworksPlatform)
        chain = alexa_skills_chain()
        install_chain(platform, chain)
        invoke_once(platform, chain.entry, payload={"skill": "reminder"})
        document = json.loads(to_chrome_trace_json(platform.records))
        names = {event["name"] for event in document["traceEvents"]}
        assert any(name.startswith("alexa-frontend") for name in names)
        assert any(name.startswith("alexa-reminder") for name in names)
