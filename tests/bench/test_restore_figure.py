"""The restore figure's acceptance criteria, asserted as tests.

The figure exists to demonstrate two claims; these tests pin them so a
model change that silently breaks either one fails loudly:

* the warm ``lazy`` restore moves fewer bytes than whole-image prefetch
  at equal-or-better latency;
* streaming transfers cut time-to-runnable for off-home placements while
  every byte still lands (the residual just moves off the critical path).
"""

import hashlib
import json

import pytest

from repro.bench.restore import (run_restore_figure, run_restore_policy,
                                 run_streaming_transfer)
from repro.bench.serialization import encode_result
from repro.config import default_parameters
from repro.snapshot.restorer import POLICY_LAZY, POLICY_REAP


@pytest.fixture(scope="module")
def figure():
    return run_restore_figure(default_parameters())


class TestLazyAcceptance:
    @pytest.mark.parametrize("language", ["nodejs", "python"])
    def test_warm_lazy_moves_fewer_bytes_than_whole_image(self, figure,
                                                          language):
        lazy = figure[f"fireworks@{POLICY_LAZY}@{language}"]
        reap = figure[f"fireworks@{POLICY_REAP}@{language}"]
        # reap's *cold* row is whole-image prefetch (no profile yet).
        assert lazy.warm_bytes_mb < reap.cold_bytes_mb
        assert lazy.warm_bytes_mb < lazy.image_mb

    def test_warm_lazy_latency_beats_whole_image_prefetch(self, figure):
        lazy = figure[f"fireworks@{POLICY_LAZY}@nodejs"]
        reap = figure[f"fireworks@{POLICY_REAP}@nodejs"]
        assert lazy.warm_restore_ms <= reap.cold_restore_ms

    def test_lazy_warm_ledger(self, figure):
        lazy = figure[f"fireworks@{POLICY_LAZY}@nodejs"]
        assert lazy.warm_bytes_mb == pytest.approx(
            lazy.warm_prefetched_mb + lazy.warm_demand_faulted_mb)
        assert lazy.warm_prefetched_mb > 0.0

    def test_recorderless_lazy_never_warms_up(self, figure):
        """fc-snapshot has no working-set recorder: lazy there keeps
        demand-faulting everything — the honest contrast."""
        cell = figure[f"fc-snapshot@{POLICY_LAZY}@nodejs"]
        assert cell.warm_prefetched_mb == 0.0
        assert cell.warm_bytes_mb == pytest.approx(cell.cold_bytes_mb)


class TestStreamingAcceptance:
    def test_streaming_cuts_time_to_runnable(self, figure):
        full = figure["stream@full"]
        streaming = figure["stream@streaming"]
        assert streaming.mean_transfer_ms < full.mean_transfer_ms
        assert streaming.mean_off_home_total_ms < full.mean_off_home_total_ms

    def test_streaming_moves_critical_path_bytes_off(self, figure):
        full = figure["stream@full"]
        streaming = figure["stream@streaming"]
        assert streaming.foreground_mb < full.foreground_mb
        assert streaming.background_mb > 0.0
        assert full.background_mb == 0.0

    def test_every_byte_still_lands(self, figure):
        assert figure["stream@full"].stores_complete
        assert figure["stream@streaming"].stores_complete

    def test_streamed_transfer_counted(self, figure):
        streaming = figure["stream@streaming"]
        assert streaming.streamed_transfers >= 1
        assert streaming.streamed_transfers <= streaming.transfers


def _digest(result) -> str:
    blob = json.dumps(encode_result(result), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class TestDeterminism:
    def test_policy_cell_replays_byte_identically(self):
        params = default_parameters()
        first = run_restore_policy("fireworks", POLICY_LAZY, "nodejs",
                                   params, seed=7)
        second = run_restore_policy("fireworks", POLICY_LAZY, "nodejs",
                                    params, seed=7)
        assert _digest(first) == _digest(second)

    def test_streaming_cell_replays_byte_identically(self):
        params = default_parameters()
        first = run_streaming_transfer("streaming", params, seed=7)
        second = run_streaming_transfer("streaming", params, seed=7)
        assert _digest(first) == _digest(second)
