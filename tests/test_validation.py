"""Unit tests for parameter validation."""

from dataclasses import replace

import pytest

from repro.config import HostConfig, default_parameters
from repro.validation import (InvalidParametersError, validate,
                              validate_or_raise)


@pytest.fixture
def params():
    return default_parameters()


def _override_runtime(params, language, **fields):
    runtimes = dict(params.runtimes)
    runtimes[language] = replace(runtimes[language], **fields)
    return params.with_overrides(runtimes=runtimes)


def _override_layout(params, language, **fields):
    layouts = dict(params.memory_layouts)
    layouts[language] = replace(layouts[language], **fields)
    return params.with_overrides(memory_layouts=layouts)


class TestDefaultsAreValid:
    def test_no_problems(self, params):
        assert validate(params) == []

    def test_validate_or_raise_passes(self, params):
        validate_or_raise(params)  # no exception


class TestHostProblems:
    def test_zero_cores(self, params):
        bad = params.with_overrides(host=HostConfig(cores=0))
        assert any("cores" in problem for problem in validate(bad))

    def test_swappiness_out_of_range(self, params):
        bad = params.with_overrides(
            host=HostConfig(swappiness_threshold=1.5))
        assert any("swappiness" in problem for problem in validate(bad))


class TestRuntimeProblems:
    def test_zero_interp_rate(self, params):
        bad = _override_runtime(params, "nodejs", interp_units_per_ms=0.0)
        assert any("interp_units_per_ms" in problem
                   for problem in validate(bad))

    def test_negative_launch(self, params):
        bad = _override_runtime(params, "python", launch_ms=-1.0)
        assert any("launch" in problem for problem in validate(bad))


class TestLayoutProblems:
    def test_fraction_out_of_range(self, params):
        bad = _override_layout(params, "nodejs",
                               exec_dirty_heap_fraction=1.5)
        assert any("exec_dirty_heap_fraction" in problem
                   for problem in validate(bad))

    def test_guest_larger_than_vm(self, params):
        bad = _override_layout(params, "nodejs", kernel_mb=1000)
        assert any("exceeds the microVM" in problem
                   for problem in validate(bad))


class TestSnapshotProblems:
    def test_cold_faster_than_warm_rejected(self, params):
        bad = params.with_overrides(snapshot=replace(
            params.snapshot, restore_per_working_mb_cold_ms=0.01))
        assert any("cold" in problem.lower() for problem in validate(bad))

    def test_zero_store_capacity(self, params):
        bad = params.with_overrides(snapshot=replace(
            params.snapshot, store_capacity_images=0))
        assert any("store_capacity" in problem
                   for problem in validate(bad))


class TestOrderingProblems:
    def test_gvisor_io_cheaper_than_container_rejected(self, params):
        latencies = dict(params.sandbox_latency)
        latencies["gvisor"] = replace(latencies["gvisor"],
                                      disk_io_base_ms=0.0,
                                      syscall_overhead_ms=0.0)
        bad = params.with_overrides(sandbox_latency=latencies)
        assert any("Sentry" in problem for problem in validate(bad))


class TestRaise:
    def test_collects_all_problems(self, params):
        bad = params.with_overrides(host=HostConfig(cores=0, dram_mb=-1))
        with pytest.raises(InvalidParametersError) as excinfo:
            validate_or_raise(bad)
        assert len(excinfo.value.problems) >= 2
