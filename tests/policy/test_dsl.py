"""The policy DSL compiler, registry, and domain adapters.

The compiler's job is to make bad documents impossible to *load*: every
structural problem — unknown signal, wrong scope, missing branch, silly
number — must surface as a :class:`ValidationError` carrying a JSON-path
into the document, at config-parse time, never as a mid-simulation
surprise.  The registry's job is one namespace per decision domain for
built-ins and documents alike.
"""

import math

import pytest

from repro.errors import NoHostAvailableError, ValidationError
from repro.platforms.keepalive import HybridHistogramKeepAlive
from repro.platforms.scheduler import InvokerNode, home_index
from repro.policy import (DslAutoscalePolicy, DslKeepAlivePolicy,
                          DslPlacementPolicy, PolicyRegistry, compile_policy,
                          default_registry, load_policy_dir,
                          resolve_autoscale, resolve_keepalive,
                          resolve_placement, shipped_policy_dir)


def _placement_doc(tree):
    return {"name": "t", "domain": "placement", "tree": tree}


ARGMIN_ACTIVE = {
    "choose": "argmin",
    "score": [{"signal": "active"}],
    "where": [{"signal": "has_room", "op": ">=", "value": 1}],
}


class TestCompiler:
    def test_valid_placement_document_compiles(self):
        compiled = compile_policy(_placement_doc(ARGMIN_ACTIVE))
        assert compiled.name == "t"
        assert compiled.domain == "placement"

    def test_error_carries_json_path(self):
        doc = _placement_doc({
            "choose": "argmin",
            "score": [{"signal": "nope"}],
        })
        with pytest.raises(ValidationError, match=r"\$\.tree\.score\[0\]"):
            compile_policy(doc)

    def test_non_object_document(self):
        with pytest.raises(ValidationError, match=r"\$"):
            compile_policy(["not", "a", "policy"])

    def test_unknown_domain(self):
        with pytest.raises(ValidationError, match="unknown domain"):
            compile_policy({"name": "t", "domain": "weather",
                            "tree": {"value": 1}})

    def test_unknown_document_key(self):
        doc = _placement_doc(ARGMIN_ACTIVE)
        doc["extra"] = 1
        with pytest.raises(ValidationError, match="'extra'"):
            compile_policy(doc)

    def test_if_requires_both_branches(self):
        doc = _placement_doc({
            "if": {"signal": "any_room", "op": ">=", "value": 1},
            "then": ARGMIN_ACTIVE,
        })
        with pytest.raises(ValidationError, match="'else'"):
            compile_policy(doc)

    def test_bad_operator(self):
        doc = _placement_doc({
            "if": {"signal": "any_room", "op": "~=", "value": 1},
            "then": ARGMIN_ACTIVE, "else": ARGMIN_ACTIVE,
        })
        with pytest.raises(ValidationError, match="op"):
            compile_policy(doc)

    def test_bool_is_not_a_number(self):
        doc = _placement_doc({
            "if": {"signal": "any_room", "op": ">=", "value": True},
            "then": ARGMIN_ACTIVE, "else": ARGMIN_ACTIVE,
        })
        with pytest.raises(ValidationError):
            compile_policy(doc)

    def test_value_leaf_rejected_in_placement(self):
        with pytest.raises(ValidationError, match="choose among hosts"):
            compile_policy(_placement_doc({"value": 3}))

    def test_choose_rejected_outside_placement(self):
        with pytest.raises(ValidationError, match="placement-only"):
            compile_policy({"name": "t", "domain": "keepalive",
                            "tree": ARGMIN_ACTIVE})

    def test_node_scope_signal_rejected_in_aggregate_condition(self):
        doc = _placement_doc({
            "if": {"signal": "active", "op": ">=", "value": 1},
            "then": ARGMIN_ACTIVE, "else": ARGMIN_ACTIVE,
        })
        with pytest.raises(ValidationError):
            compile_policy(doc)

    def test_required_signal_argument(self):
        doc = {"name": "t", "domain": "keepalive",
               "tree": {"value": {"signal": "gap_percentile_ms"}}}
        with pytest.raises(ValidationError, match="q"):
            compile_policy(doc)

    def test_quantile_out_of_range(self):
        doc = {"name": "t", "domain": "keepalive",
               "tree": {"value": {
                   "signal": {"name": "gap_percentile_ms", "q": 1.5}}}}
        with pytest.raises(ValidationError):
            compile_policy(doc)

    def test_autoscale_requires_candidates(self):
        with pytest.raises(ValidationError, match="candidates"):
            compile_policy({"name": "t", "domain": "autoscale",
                            "tree": {"value": 0}})

    def test_mode_gated_autoscale_signal(self):
        # 'pressured' only exists under the queue-state enumeration.
        doc = {"name": "t", "domain": "autoscale",
               "candidates": "home-hosts",
               "tree": {"if": {"signal": "pressured", "op": ">=",
                               "value": 1},
                        "then": {"value": 1}, "else": {"value": 0}}}
        with pytest.raises(ValidationError, match="pressured"):
            compile_policy(doc)

    def test_depth_limit(self):
        tree = ARGMIN_ACTIVE
        for _ in range(40):
            tree = {"if": {"signal": "any_room", "op": ">=", "value": 1},
                    "then": tree, "else": dict(ARGMIN_ACTIVE)}
        with pytest.raises(ValidationError, match="deep"):
            compile_policy(_placement_doc(tree))

    def test_self_referential_document_rejected(self):
        tree = {"if": {"signal": "any_room", "op": ">=", "value": 1},
                "then": ARGMIN_ACTIVE}
        tree["else"] = tree   # cycle: the depth limit must catch it
        with pytest.raises(ValidationError, match="deep"):
            compile_policy(_placement_doc(tree))


class TestRegistry:
    def test_builtin_names(self):
        registry = default_registry()
        assert registry.names("placement") == (
            "round-robin", "least-loaded", "hash", "snapshot-locality")
        assert registry.names("keepalive") == ("fixed", "hybrid-histogram")
        assert registry.names("autoscale") == ("none", "reactive",
                                               "predictive")

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValidationError,
                           match="registered: round-robin"):
            default_registry().entry("placement", "alphabetical")

    def test_unknown_domain(self):
        with pytest.raises(ValidationError, match="unknown policy domain"):
            default_registry().names("weather")

    def test_duplicate_registration_refused(self):
        registry = PolicyRegistry()
        doc = _placement_doc(ARGMIN_ACTIVE)
        registry.register_document(doc)
        with pytest.raises(ValidationError, match="already registered"):
            registry.register_document(doc)

    def test_shipped_documents_all_load(self):
        registry = load_policy_dir(shipped_policy_dir())
        assert "dsl-hash" in registry.names("placement")
        assert "dsl-hybrid-histogram" in registry.names("keepalive")
        assert "dsl-reactive" in registry.names("autoscale")
        entry = registry.entry("placement", "dsl-hash")
        assert entry.source == "dsl"
        assert entry.compiled is not None

    def test_create_returns_fresh_instances(self):
        registry = load_policy_dir(shipped_policy_dir())
        first = registry.create("keepalive", "dsl-hybrid-histogram")
        second = registry.create("keepalive", "dsl-hybrid-histogram")
        assert first is not second


class TestResolvers:
    def test_resolve_placement_name_doc_instance(self):
        builtin = resolve_placement("hash")
        assert builtin.name == "hash" and builtin.source == "builtin"
        dsl = resolve_placement(_placement_doc(ARGMIN_ACTIVE))
        assert dsl.source == "dsl"
        assert resolve_placement(dsl) is dsl
        with pytest.raises(ValidationError):
            resolve_placement(42)

    def test_resolve_autoscale_name_doc_instance(self):
        builtin = resolve_autoscale("none")
        assert builtin.name == "none" and not builtin.active
        doc = {"name": "t", "domain": "autoscale",
               "candidates": "queue-state", "tree": {"value": 0}}
        dsl = resolve_autoscale(doc)
        assert dsl.source == "dsl"
        assert resolve_autoscale(dsl) is dsl
        with pytest.raises(ValidationError):
            resolve_autoscale(3.5)

    def test_resolve_keepalive_name_doc_instance(self):
        builtin = resolve_keepalive("hybrid-histogram")
        assert isinstance(builtin, HybridHistogramKeepAlive)
        doc = {"name": "t", "domain": "keepalive",
               "tree": {"value": 1000}}
        dsl = resolve_keepalive(doc)
        assert dsl.window_ms("anything") == 1000
        assert resolve_keepalive(dsl) is dsl
        with pytest.raises(ValidationError):
            resolve_keepalive(object())


def _nodes(actives, capacity=4):
    return [InvokerNode(node_id=i, capacity=capacity, active=a)
            for i, a in enumerate(actives)]


class TestDslPlacement:
    def _policy(self, name):
        return load_policy_dir(shipped_policy_dir()).create("placement",
                                                            name)

    def test_round_robin_cursor_advances_past_chosen(self):
        policy = self._policy("dsl-round-robin")
        nodes = _nodes([0, 0, 0])
        chosen, cursor = policy.select(nodes, "fn", rr_cursor=1)
        assert chosen.node_id == 1
        assert cursor == 2

    def test_round_robin_skips_full_node(self):
        policy = self._policy("dsl-round-robin")
        nodes = _nodes([4, 0, 0])   # node 0 full
        chosen, cursor = policy.select(nodes, "fn", rr_cursor=0)
        assert chosen.node_id == 1
        assert cursor == 2

    def test_all_full_raises_and_preserves_cursor(self):
        policy = self._policy("dsl-round-robin")
        nodes = _nodes([4, 4, 4])
        with pytest.raises(NoHostAvailableError):
            policy.select(nodes, "fn", rr_cursor=2)

    def test_non_rr_policies_leave_cursor_alone(self):
        policy = self._policy("dsl-hash")
        nodes = _nodes([0, 0, 0])
        chosen, cursor = policy.select(nodes, "fn", rr_cursor=2)
        assert chosen.node_id == home_index("fn", 3)
        assert cursor == 2

    def test_empty_node_list(self):
        policy = self._policy("dsl-hash")
        with pytest.raises(NoHostAvailableError):
            policy.select([], "fn", rr_cursor=0)


class TestDslKeepAlive:
    def test_fixed_document_window(self):
        policy = load_policy_dir(shipped_policy_dir()).create(
            "keepalive", "dsl-fixed")
        assert policy.window_ms("any") == 600_000.0

    def test_hybrid_document_warmup_fallback(self):
        policy = load_policy_dir(shipped_policy_dir()).create(
            "keepalive", "dsl-hybrid-histogram")
        policy.observe_arrival("fn", 0.0)
        policy.observe_arrival("fn", 100.0)
        assert policy.window_ms("fn") == 600_000.0   # < 3 gaps observed


class TestDslAutoscale:
    def test_none_document_is_active_but_silent(self):
        # A DSL doc that always answers 0 *does* tick (it is a live
        # policy), it just never asks for warm workers.
        doc = {"name": "quiet", "domain": "autoscale",
               "candidates": "queue-state", "tree": {"value": 0}}
        policy = resolve_autoscale(doc)
        assert policy.active

    def test_domain_mismatch_rejected(self):
        compiled = compile_policy(_placement_doc(ARGMIN_ACTIVE))
        with pytest.raises(ValueError, match="not autoscale"):
            DslAutoscalePolicy(compiled)
        with pytest.raises(ValueError, match="not keepalive"):
            DslKeepAlivePolicy(compiled)
        keepalive = compile_policy({"name": "t", "domain": "keepalive",
                                    "tree": {"value": 1.0}})
        with pytest.raises(ValueError, match="not placement"):
            DslPlacementPolicy(keepalive)


class TestSignalValues:
    def test_capacity_left_unbounded_without_capacity(self):
        class Node:
            node_id = 0
            active = 2
            has_room = True
            capacity = None

        doc = _placement_doc({
            "choose": "argmin",
            "score": [{"signal": "capacity_left"}],
        })
        policy = resolve_placement(doc)
        chosen, _ = policy.select([Node()], "fn", rr_cursor=0)
        assert chosen.node_id == 0

    def test_weighted_argmax_breaks_ties_toward_low_node_id(self):
        doc = _placement_doc({
            "choose": "argmax",
            "score": [{"signal": "active", "weight": 0.0}],
        })
        policy = resolve_placement(doc)
        chosen, _ = policy.select(_nodes([1, 1, 1]), "fn", rr_cursor=0)
        assert chosen.node_id == 0

    def test_infinite_percentile_comparisons(self):
        # No observed gaps: gap_percentile_ms is +inf, which must compare
        # sanely (inf <= horizon is False) instead of crashing.
        doc = {"name": "t", "domain": "keepalive",
               "tree": {"if": {"signal": {"name": "gap_percentile_ms",
                                          "q": 0.9},
                               "op": "<=", "value": 1000},
                        "then": {"value": 1.0},
                        "else": {"value": 2.0}}}
        policy = resolve_keepalive(doc)
        assert policy.window_ms("never-seen") == 2.0
        assert math.isinf(policy._resolver("never-seen")(
            compile_policy(doc).tree.condition.lhs))
