"""Documentation meta-test: every public module, class and function in the
library carries a docstring — deliverable (e) of the reproduction."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


ALL_MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if not inspect.isfunction(attr):
                    continue
                if not (attr.__doc__ and attr.__doc__.strip()):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module_name}: missing docstrings on {undocumented}")
