"""Unit tests for the host core pool."""

import pytest

from repro.errors import SimulationError
from repro.host.cpu import HostCpu
from repro.sim import Simulation


@pytest.fixture
def sim():
    return Simulation()


class TestHostCpu:
    def test_needs_at_least_one_core(self, sim):
        with pytest.raises(SimulationError):
            HostCpu(sim, cores=0)

    def test_parallel_up_to_capacity(self, sim):
        cpu = HostCpu(sim, cores=2)
        finish = []

        def job(duration):
            claim = yield from cpu.acquire()
            try:
                yield sim.timeout(duration)
                finish.append(sim.now)
            finally:
                cpu.release(claim)

        for _ in range(4):
            sim.process(job(10))
        sim.run()
        # 4 jobs, 2 cores, 10 ms each -> two waves.
        assert finish == [10.0, 10.0, 20.0, 20.0]

    def test_queue_statistics(self, sim):
        cpu = HostCpu(sim, cores=1)

        def job():
            claim = yield from cpu.acquire()
            try:
                yield sim.timeout(5)
            finally:
                cpu.release(claim)

        for _ in range(3):
            sim.process(job())
        sim.run()
        assert cpu.total_claims == 3
        # Waits: 0, 5, 10 ms -> mean 5 ms.
        assert cpu.mean_queue_wait_ms == pytest.approx(5.0)
        assert cpu.peak_queue_length == 2

    def test_busy_and_queue_length(self, sim):
        cpu = HostCpu(sim, cores=1)
        held = []

        def holder():
            claim = yield from cpu.acquire()
            held.append(claim)
            yield sim.timeout(100)

        sim.process(holder())
        sim.process(holder())
        sim.run(until=1)
        assert cpu.busy_cores == 1
        assert cpu.queue_length == 1

    def test_no_claims_mean_wait_zero(self, sim):
        assert HostCpu(sim).mean_queue_wait_ms == 0.0
