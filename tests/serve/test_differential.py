"""Differential tests: the API and the CLI are two fronts over one path.

The service's figures artifact must be *byte-identical* to the output a
user gets from the CLI for the same experiments, and both must address
the same cache entries — a CLI run immediately after an API run (same
cache dir, same seed) should be a pure cache read.  Any drift between
the two fronts — a renderer fork, a key ingredient mismatch — fails
these tests on the first byte.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.cli import main
from repro.serve.app import create_app
from repro.serve.testclient import ASGITestClient

from tests.serve.test_service_e2e import wait_done

#: The experiments both fronts run (fast, multi-experiment, multi-shard).
EXPERIMENTS = ["table1", "table2", "snapshot-creation"]

SCENARIO = {
    "name": "diff",
    "title": "differential scenario",
    "experiments": EXPERIMENTS,
    "seed": 2022,   # the engine's DEFAULT_SEED: the CLI `figure` path
    "jobs": 1,      # runs under exactly this seed
}


@pytest.fixture(scope="module")
def api_run(tmp_path_factory):
    """One finished API run against a module-shared cache directory."""
    tmp_path = tmp_path_factory.mktemp("differential")
    root = tmp_path / "scenarios"
    root.mkdir()
    (root / "diff.json").write_text(json.dumps(SCENARIO))
    cache_dir = tmp_path / "cache"
    client = ASGITestClient(create_app(scenario_root=root,
                                       cache_dir=str(cache_dir)))
    run_id = client.post("/experiments", json_body={
        "scenario": "diff"}).json()["id"]
    snapshot = wait_done(client, run_id)
    assert snapshot["state"] == "done"
    return client, run_id, cache_dir


class TestApiVersusCli:
    def test_figures_byte_identical_to_cli_figure(self, api_run, capsys):
        client, run_id, cache_dir = api_run
        api_figures = client.get(f"/experiments/{run_id}/figures").body

        assert main(["figure", *EXPERIMENTS,
                     "--cache-dir", str(cache_dir)]) == 0
        cli_stdout = capsys.readouterr().out.encode("utf-8")

        assert hashlib.sha256(api_figures).hexdigest() == \
            hashlib.sha256(cli_stdout).hexdigest()
        assert api_figures == cli_stdout

    def test_cli_reuses_the_api_runs_cache_entries(self, api_run, capsys):
        """Same cache keys: the CLI run right after the API run computes
        nothing — every shard is a hit in the API's cache dir."""
        client, run_id, cache_dir = api_run
        shards_total = client.get(
            f"/experiments/{run_id}").json()["shards_total"]

        assert main(["figure", *EXPERIMENTS,
                     "--cache-dir", str(cache_dir)]) == 0
        stderr = capsys.readouterr().err
        assert f"{shards_total} cached, 0 executed" in stderr

    def test_figures_byte_identical_to_cli_run_scenario(
            self, api_run, tmp_path, monkeypatch, capsys):
        """The `repro run <scenario>` front agrees too, from the same
        scenario document."""
        client, run_id, cache_dir = api_run
        api_figures = client.get(f"/experiments/{run_id}/figures").body

        root = tmp_path / "scenarios"
        root.mkdir()
        (root / "diff.json").write_text(json.dumps(SCENARIO))
        monkeypatch.setenv("REPRO_SCENARIOS", str(root))
        assert main(["run", "diff", "--cache-dir", str(cache_dir)]) == 0
        captured = capsys.readouterr()
        assert captured.out.encode("utf-8") == api_figures
        assert "3 cached" in captured.err

    def test_results_json_matches_a_direct_engine_encode(self, api_run):
        """The /results artifact is the canonical encoding of exactly
        what the engine returns — no serve-layer reshaping."""
        from repro.bench.engine import run_experiments
        from repro.bench.serialization import encode_result
        client, run_id, cache_dir = api_run
        api_results = client.get(f"/experiments/{run_id}/results").body

        outcome = run_experiments(EXPERIMENTS, seed=2022,
                                  cache_dir=str(cache_dir))
        expected = json.dumps(
            {name: encode_result(result)
             for name, result in outcome.results.items()},
            sort_keys=True, separators=(",", ":")).encode("utf-8")
        assert api_results == expected

    def test_cache_directory_layout_is_the_engines(self, api_run):
        """The API populated the cache exactly where the engine's
        ResultCache puts entries: one .bin per shard, per experiment."""
        client, run_id, cache_dir = api_run
        for experiment in EXPERIMENTS:
            entries = list((cache_dir / experiment).glob("*.bin"))
            assert len(entries) == 1, experiment
