"""End-to-end tests for the experiment service over the ASGI test client.

These drive the full submit → poll → stream → fetch loop in-process:
the real app callable, the real registry threads, the real engine —
only the socket is skipped.  The headline assertion is the service's
determinism guarantee: two consecutive submissions of the same scenario
produce byte-identical (sha256-equal) results and figures payloads,
whether the shards were computed or served from the cache.
"""

from __future__ import annotations

import hashlib
import json
import threading

import pytest

from repro.bench.serialization import BINARY_MAGIC
from repro.serve.app import create_app
from repro.serve.registry import ExperimentRun
from repro.serve.scenarios import Scenario
from repro.serve.testclient import ASGITestClient

#: One cheap scenario (sub-second) the whole module drives.
SMOKE = {
    "name": "smoke",
    "title": "two fast tables",
    "description": "",
    "experiments": ["table1", "table2"],
    "seed": 2022,
    "jobs": 1,
    "tags": ["smoke"],
    "docs": [],
}


@pytest.fixture()
def client(tmp_path):
    """A test client over a fresh app, library, and cache directory."""
    root = tmp_path / "scenarios"
    root.mkdir()
    (root / "smoke.json").write_text(json.dumps(SMOKE))
    app = create_app(scenario_root=root,
                     cache_dir=str(tmp_path / "cache"))
    return ASGITestClient(app)


def wait_done(client, run_id, polls=60):
    """Long-poll until the run reaches a terminal state; return snapshot."""
    after = 0
    for _ in range(polls):
        snapshot = client.get(
            f"/experiments/{run_id}?wait=5&after={after}").json()
        if snapshot["state"] in ("done", "failed"):
            return snapshot
        after = snapshot["last_seq"]
    raise AssertionError(f"run {run_id} never finished: {snapshot}")


class TestDiscovery:
    def test_index_maps_the_endpoints(self, client):
        body = client.get("/").json()
        assert body["service"] == "repro.serve"
        assert body["endpoints"]["submit"] == "POST /experiments"

    def test_healthz(self, client):
        assert client.get("/healthz").json() == {"ok": True}

    def test_scenarios_listing_and_detail(self, client):
        listing = client.get("/scenarios").json()
        assert [one["name"] for one in listing] == ["smoke"]
        detail = client.get("/scenarios/smoke").json()
        assert detail == SMOKE

    def test_unknown_scenario_404_lists_known(self, client):
        response = client.get("/scenarios/nope")
        assert response.status == 404
        assert "smoke" in response.json()["error"]

    def test_unknown_route_404(self, client):
        assert client.get("/frobnicate").status == 404

    def test_wrong_method_405_names_allowed(self, client):
        response = client.post("/scenarios/smoke", json_body={})
        assert response.status == 405
        assert "GET" in response.json()["error"]


class TestSubmitPollStreamFetch:
    """The full loop, plus the byte-identity acceptance criterion."""

    def test_submit_returns_201_with_links(self, client):
        response = client.post("/experiments", json_body={
            "scenario": "smoke"})
        assert response.status == 201
        body = response.json()
        assert response.header("location") == f"/experiments/{body['id']}"
        assert body["links"]["results"].endswith("/results")
        wait_done(client, body["id"])

    def test_end_to_end_submit_poll_stream_fetch(self, client):
        run_id = client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"]

        # Poll (long-poll) until done; the snapshot accounts every shard.
        snapshot = wait_done(client, run_id)
        assert snapshot["state"] == "done"
        assert snapshot["shards_done"] == snapshot["shards_total"] == 2
        assert {one["status"] for one in snapshot["shards"]} <= {
            "cached", "done"}
        assert snapshot["stats"]["shards_total"] == 2

        # Stream: the finite SSE log replays the whole run in order.
        stream = client.get(f"/experiments/{run_id}/events")
        assert stream.status == 200
        assert stream.header("content-type").startswith("text/event-stream")
        events = stream.sse_events()
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run-queued"
        assert kinds[1] == "run-started"
        assert kinds[-1] == "run-finished"
        assert [event["seq"] for event in events] == list(
            range(1, len(events) + 1))
        shard_kinds = {kind for kind in kinds if kind.startswith("shard-")}
        assert shard_kinds <= {"shard-started", "shard-finished",
                               "shard-cache-hit"}

        # Fetch: all three artifacts exist and are well-formed.
        results = client.get(f"/experiments/{run_id}/results")
        assert results.status == 200
        assert set(results.json()) == {"table1", "table2"}
        binary = client.get(
            f"/experiments/{run_id}/results?format=binary")
        assert binary.status == 200
        assert binary.body.startswith(BINARY_MAGIC)
        figures = client.get(f"/experiments/{run_id}/figures")
        assert figures.status == 200
        assert "== table1 ==" in figures.text
        traces = client.get(f"/experiments/{run_id}/traces").json()
        assert traces["otherData"]["deterministic"] is False
        assert len(traces["traceEvents"]) >= 2

    def test_two_consecutive_runs_are_byte_identical(self, client):
        """The acceptance bar: sha256(results) and sha256(figures) agree
        across a computed run and its cache-served rerun."""
        digests = []
        for attempt in range(2):
            run_id = client.post("/experiments", json_body={
                "scenario": "smoke"}).json()["id"]
            snapshot = wait_done(client, run_id)
            assert snapshot["state"] == "done"
            results = client.get(f"/experiments/{run_id}/results").body
            figures = client.get(f"/experiments/{run_id}/figures").body
            binary = client.get(
                f"/experiments/{run_id}/results?format=binary").body
            digests.append((hashlib.sha256(results).hexdigest(),
                            hashlib.sha256(figures).hexdigest(),
                            hashlib.sha256(binary).hexdigest()))
        assert digests[0] == digests[1]

    def test_second_run_hits_the_cache(self, client):
        first = client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"]
        wait_done(client, first)
        second = client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"]
        snapshot = wait_done(client, second)
        assert snapshot["stats"]["cache_hits"] == 2
        assert snapshot["stats"]["executed"] == 0

    def test_inline_scenario_document(self, client):
        response = client.post("/experiments", json_body={
            "scenario": {"name": "inline", "title": "inline doc",
                         "experiments": ["table2"]}})
        assert response.status == 201
        snapshot = wait_done(client, response.json()["id"])
        assert snapshot["state"] == "done"
        assert snapshot["scenario"]["name"] == "inline"

    def test_runs_listing_preserves_submission_order(self, client):
        ids = [client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"] for _ in range(2)]
        for run_id in ids:
            wait_done(client, run_id)
        listing = client.get("/experiments").json()
        assert [one["id"] for one in listing] == ids


def get_with_deadline(client, path, seconds=15.0):
    """GET *path* on a worker thread; fail if it never returns.

    Guards the SSE regression tests: a stream that never closes must
    fail the test, not hang the suite.
    """
    result = {}

    def fetch():
        result["response"] = client.get(path)

    worker = threading.Thread(target=fetch, daemon=True)
    worker.start()
    worker.join(seconds)
    assert "response" in result, \
        f"GET {path} did not finish in {seconds}s (stream never closed)"
    return result["response"]


class TestSseResume:
    """``?since=N`` resumption, including the finished-run edges.

    Regression: resuming a finished run at (or past) its terminal
    event's seq used to busy-spin forever — wait_events returned an
    empty list instantly, the handler sent a keep-alive and looped.
    The stream must close instead.
    """

    @pytest.fixture()
    def finished(self, client):
        run_id = client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"]
        wait_done(client, run_id)
        events = client.get(f"/experiments/{run_id}/events").sse_events()
        assert events[-1]["event"] == "run-finished"
        return run_id, events

    def test_resume_mid_log_replays_the_tail_and_closes(self, client,
                                                        finished):
        run_id, events = finished
        response = get_with_deadline(
            client, f"/experiments/{run_id}/events?since=2")
        assert response.sse_events() == events[2:]

    def test_resume_at_terminal_seq_closes_empty(self, client, finished):
        run_id, events = finished
        terminal_seq = events[-1]["seq"]
        response = get_with_deadline(
            client, f"/experiments/{run_id}/events?since={terminal_seq}")
        assert response.status == 200
        assert response.sse_events() == []

    def test_resume_past_terminal_seq_closes_empty(self, client, finished):
        run_id, events = finished
        since = events[-1]["seq"] + 7
        response = get_with_deadline(
            client, f"/experiments/{run_id}/events?since={since}")
        assert response.status == 200
        assert response.sse_events() == []

    def test_resume_past_terminal_of_failed_run_closes(self, client,
                                                       monkeypatch):
        from repro.errors import ReproError

        def explode(*args, **kwargs):
            raise ReproError("synthetic engine failure")

        monkeypatch.setattr("repro.bench.engine.run_experiments", explode)
        run_id = client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"]
        wait_done(client, run_id)
        events = client.get(f"/experiments/{run_id}/events").sse_events()
        assert events[-1]["event"] == "run-failed"
        response = get_with_deadline(
            client,
            f"/experiments/{run_id}/events?since={events[-1]['seq']}")
        assert response.sse_events() == []


class TestErrorPaths:
    def test_unknown_run_404(self, client):
        for suffix in ("", "/events", "/results", "/figures", "/traces"):
            response = client.get(f"/experiments/run-9999{suffix}")
            assert response.status == 404, suffix

    def test_unknown_scenario_name_404_with_path(self, client):
        response = client.post("/experiments", json_body={
            "scenario": "nope"})
        assert response.status == 404
        body = response.json()
        assert body["path"] == "scenario"
        assert "smoke" in body["error"]

    def test_invalid_inline_scenario_422_with_json_path(self, client):
        response = client.post("/experiments", json_body={
            "scenario": {"name": "x", "title": "t",
                         "experiments": ["table1", "fig99"]}})
        assert response.status == 422
        body = response.json()
        assert body["path"] == "scenario.experiments[1]"
        assert "fig99" in body["error"]

    def test_unknown_submit_key_422(self, client):
        response = client.post("/experiments", json_body={
            "scenario": "smoke", "bogus": 1})
        assert response.status == 422
        assert response.json()["path"] == "bogus"

    def test_missing_scenario_key_422(self, client):
        response = client.post("/experiments", json_body={"seed": 1})
        assert response.status == 422
        assert response.json()["path"] == "scenario"

    def test_zero_jobs_422(self, client):
        response = client.post("/experiments", json_body={
            "scenario": "smoke", "jobs": 0})
        assert response.status == 422
        assert response.json()["path"] == "jobs"

    def test_non_boolean_use_cache_422(self, client):
        response = client.post("/experiments", json_body={
            "scenario": "smoke", "use_cache": "yes"})
        assert response.status == 422
        assert response.json()["path"] == "use_cache"

    def test_malformed_json_body_400(self, client):
        response = client.post("/experiments", body=b"{not json")
        assert response.status == 400
        assert "not valid JSON" in response.json()["error"]

    def test_empty_body_400(self, client):
        assert client.post("/experiments", body=b"").status == 400

    def test_artifacts_of_unfinished_run_409(self, client):
        # A hand-planted running run: deterministic, no race with a real
        # worker thread.
        app = client.app
        scenario = Scenario(name="stuck", title="t",
                            experiments=("table1",))
        run = ExperimentRun(id="run-7777", scenario=scenario, seed=2022,
                            jobs=1, use_cache=True, state="running")
        with app.registry._cond:
            app.registry._runs["run-7777"] = run
            app.registry._order.append("run-7777")
        for artifact in ("results", "figures", "traces"):
            response = client.get(f"/experiments/run-7777/{artifact}")
            assert response.status == 409, artifact
            assert "running" in response.json()["error"]

    def test_bad_results_format_422(self, client):
        run_id = client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"]
        wait_done(client, run_id)
        response = client.get(
            f"/experiments/{run_id}/results?format=msgpack")
        assert response.status == 422
        assert response.json()["path"] == "format"

    def test_failed_run_reports_the_engine_error(self, client, monkeypatch):
        """An engine error fails the run cleanly: run-failed event, error
        in the snapshot, 409 on every artifact."""
        from repro.errors import ReproError

        def explode(*args, **kwargs):
            raise ReproError("synthetic engine failure")

        monkeypatch.setattr("repro.bench.engine.run_experiments", explode)
        run_id = client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"]
        snapshot = wait_done(client, run_id)
        assert snapshot["state"] == "failed"
        assert "synthetic engine failure" in snapshot["error"]
        events = client.get(
            f"/experiments/{run_id}/events").sse_events()
        assert events[-1]["event"] == "run-failed"
        response = client.get(f"/experiments/{run_id}/results")
        assert response.status == 409
        assert "synthetic engine failure" in response.json()["error"]


class TestSubmitOverrides:
    def test_seed_override_changes_results(self, client):
        base = client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"]
        wait_done(client, base)
        other = client.post("/experiments", json_body={
            "scenario": "smoke", "seed": 7}).json()["id"]
        snapshot = wait_done(client, other)
        assert snapshot["seed"] == 7
        # Different seed means different cache keys: nothing was reused.
        assert snapshot["stats"]["cache_hits"] == 0

    def test_use_cache_false_recomputes(self, client):
        first = client.post("/experiments", json_body={
            "scenario": "smoke"}).json()["id"]
        wait_done(client, first)
        second = client.post("/experiments", json_body={
            "scenario": "smoke", "use_cache": False}).json()["id"]
        snapshot = wait_done(client, second)
        assert snapshot["stats"]["cache_hits"] == 0
        assert snapshot["stats"]["executed"] == 2


class TestChainsScenario:
    """The shipped multi-tenant-chains scenario, end to end.

    The DAG-executor experiment is not special-cased anywhere in the
    service; this locks the whole path — shipped scenario file, submit
    by name, parallel shards, SSE log, results/figures fetch — for the
    chains experiment id specifically.
    """

    @pytest.fixture()
    def chains_client(self, tmp_path):
        import pathlib
        shipped = (pathlib.Path(__file__).resolve().parents[2]
                   / "scenarios" / "multi-tenant-chains.json")
        root = tmp_path / "scenarios"
        root.mkdir()
        (root / shipped.name).write_text(shipped.read_text())
        app = create_app(scenario_root=root,
                         cache_dir=str(tmp_path / "cache"))
        return ASGITestClient(app)

    def test_shipped_scenario_runs_to_done(self, chains_client):
        from repro.bench.chains import CHAIN_POLICIES
        from repro.bench.load import LOAD_PLATFORMS
        client = chains_client
        detail = client.get("/scenarios/multi-tenant-chains").json()
        assert detail["experiments"] == ["chains"]

        run_id = client.post("/experiments", json_body={
            "scenario": "multi-tenant-chains"}).json()["id"]
        snapshot = wait_done(client, run_id, polls=240)
        assert snapshot["state"] == "done"
        expected = {f"{platform}@{policy}"
                    for platform in LOAD_PLATFORMS
                    for policy in CHAIN_POLICIES}
        assert snapshot["shards_total"] == len(expected)

        results = client.get(f"/experiments/{run_id}/results").json()
        assert set(results) == {"chains"}
        from repro.bench.serialization import decode_result
        assert set(decode_result(results["chains"])) == expected
        figures = client.get(f"/experiments/{run_id}/figures")
        assert "goodput=" in figures.text
        kinds = [event["event"]
                 for event in client.get(
                     f"/experiments/{run_id}/events").sse_events()]
        assert kinds[-1] == "run-finished"
