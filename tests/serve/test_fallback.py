"""Regression: a parallel submission on a single-CPU host must not hang.

The engine demotes ``jobs > 1`` to a serial run when ``os.cpu_count()``
is 1 (a fork pool there only adds IPC overhead — and historically the
hang risk this test pins down).  The service inherits that protection:
a scenario submitted with ``jobs: 4`` on a one-core box completes, logs
the serial fallback, and still closes its progress stream.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.serve.app import create_app
from repro.serve.testclient import ASGITestClient

from tests.serve.test_service_e2e import wait_done

SCENARIO = {
    "name": "wide",
    "title": "a deliberately parallel scenario",
    "experiments": ["table1", "table2"],
    "jobs": 4,
}


@pytest.fixture()
def client(tmp_path, monkeypatch):
    monkeypatch.setattr("os.cpu_count", lambda: 1)
    root = tmp_path / "scenarios"
    root.mkdir()
    (root / "wide.json").write_text(json.dumps(SCENARIO))
    return ASGITestClient(create_app(
        scenario_root=root, cache_dir=str(tmp_path / "cache")))


def test_single_cpu_serve_falls_back_to_serial(client, caplog):
    caplog.set_level(logging.INFO, logger="repro.bench.engine")
    run_id = client.post("/experiments", json_body={
        "scenario": "wide"}).json()["id"]
    snapshot = wait_done(client, run_id)

    # The run completed instead of wedging on a useless fork pool...
    assert snapshot["state"] == "done"
    assert snapshot["jobs"] == 4          # the request was honoured...
    assert snapshot["stats"]["executed"] == 2

    # ...because the engine demoted it to the serial path, and said so.
    assert any("single-CPU host" in record.message
               and "serially" in record.message
               for record in caplog.records)

    # The progress stream still terminates (no dangling SSE consumer).
    events = client.get(f"/experiments/{run_id}/events").sse_events()
    assert events[-1]["event"] == "run-finished"


def test_single_cpu_cli_figure_falls_back_too(tmp_path, monkeypatch,
                                              caplog, capsys):
    """Same guard on the CLI front: `figure --jobs 8` on one core."""
    from repro.cli import main
    monkeypatch.setattr("os.cpu_count", lambda: 1)
    caplog.set_level(logging.INFO, logger="repro.bench.engine")
    assert main(["figure", "table1", "--jobs", "8",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "== table1 ==" in capsys.readouterr().out
    assert any("single-CPU host" in record.message
               for record in caplog.records)
