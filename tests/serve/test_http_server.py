"""Socket-level tests for the stdlib HTTP adapter behind ``repro serve``.

The in-process client skips the HTTP framing layer; this suite boots the
real :class:`ThreadingHTTPServer` bridge on an ephemeral port and drives
it with :mod:`urllib` — request parsing, chunked SSE framing, and JSON
error bodies all cross a real socket.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.http import make_server

SCENARIO = {
    "name": "smoke",
    "title": "one fast table",
    "experiments": ["table2"],
}


@pytest.fixture()
def base_url(tmp_path):
    root = tmp_path / "scenarios"
    root.mkdir()
    (root / "smoke.json").write_text(json.dumps(SCENARIO))
    server = make_server("127.0.0.1", 0, scenario_root=root,
                         cache_dir=str(tmp_path / "cache"))
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def fetch(url, data=None):
    request = urllib.request.Request(url, data=data)
    if data is not None:
        request.add_header("content-type", "application/json")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read()


def test_health_and_scenarios_over_a_real_socket(base_url):
    status, body = fetch(f"{base_url}/healthz")
    assert status == 200 and json.loads(body) == {"ok": True}
    status, body = fetch(f"{base_url}/scenarios")
    assert [one["name"] for one in json.loads(body)] == ["smoke"]


def test_submit_poll_and_fetch_over_a_real_socket(base_url):
    status, body = fetch(f"{base_url}/experiments",
                         data=json.dumps({"scenario": "smoke"}).encode())
    assert status == 201
    run_id = json.loads(body)["id"]

    for _ in range(60):
        _, body = fetch(f"{base_url}/experiments/{run_id}?wait=5")
        snapshot = json.loads(body)
        if snapshot["state"] in ("done", "failed"):
            break
    assert snapshot["state"] == "done"

    # The SSE stream arrives chunked and closes after the terminal event.
    status, stream = fetch(f"{base_url}/experiments/{run_id}/events")
    assert status == 200
    events = [json.loads(line[len("data: "):])
              for line in stream.decode().splitlines()
              if line.startswith("data: ")]
    assert events[0]["event"] == "run-queued"
    assert events[-1]["event"] == "run-finished"

    status, body = fetch(f"{base_url}/experiments/{run_id}/figures")
    assert status == 200 and b"== table2 ==" in body


def test_error_bodies_cross_the_socket_as_json(base_url):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(f"{base_url}/experiments/run-9999")
    assert excinfo.value.code == 404
    assert "run-9999" in json.loads(excinfo.value.read())["error"]
