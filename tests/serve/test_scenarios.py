"""Tests for the named-scenario library: schema, loader, coverage.

Two contracts matter here.  First, the loader's error discipline: the
*only* exception that escapes is :class:`ValidationError`, and its
message names a JSON path into the offending document.  Second, the
shipped ``scenarios/`` library is complete: every engine experiment id
is reachable through at least one named scenario, and every experiment
page under ``docs/`` has a scenario pointing back at it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.engine import experiment_ids
from repro.errors import ValidationError
from repro.serve.scenarios import (SCENARIO_ENV_VAR, Scenario,
                                   default_library_root, dump_scenario,
                                   load_named_scenario, load_scenario,
                                   load_scenario_file,
                                   load_scenario_library, scenario_names)

REPO_ROOT = Path(__file__).resolve().parents[2]

VALID = {
    "name": "smoke",
    "title": "a smoke scenario",
    "experiments": ["table1", "table2"],
}


class TestLoadScenario:
    def test_minimal_document(self):
        scenario = load_scenario(VALID)
        assert scenario.name == "smoke"
        assert scenario.experiments == ("table1", "table2")
        assert scenario.seed == 2022 and scenario.jobs == 1
        assert scenario.tags == () and scenario.docs == ()

    def test_full_document_round_trips_exactly(self):
        document = {
            "name": "full", "title": "t", "description": "d",
            "experiments": ["fig6"], "seed": 7, "jobs": 3,
            "tags": ["paper"], "docs": ["docs/service.md"],
        }
        scenario = load_scenario(document)
        assert dump_scenario(scenario) == document
        assert load_scenario(dump_scenario(scenario)) == scenario

    @pytest.mark.parametrize("document, path", [
        ("not a mapping", "scenario"),
        ({**VALID, "bogus": 1}, "scenario.bogus"),
        ({"title": "t", "experiments": ["fig6"]}, "scenario.name"),
        ({"name": "x", "experiments": ["fig6"]}, "scenario.title"),
        ({"name": "x", "title": "t"}, "scenario.experiments"),
        ({**VALID, "name": "Bad_Name"}, "scenario.name"),
        ({**VALID, "experiments": []}, "scenario.experiments"),
        ({**VALID, "experiments": "fig6"}, "scenario.experiments"),
        ({**VALID, "experiments": ["fig6", "nope"]},
         "scenario.experiments[1]"),
        ({**VALID, "experiments": ["fig6", "fig6"]},
         "scenario.experiments[1]"),
        ({**VALID, "seed": -1}, "scenario.seed"),
        ({**VALID, "seed": True}, "scenario.seed"),
        ({**VALID, "seed": "2022"}, "scenario.seed"),
        ({**VALID, "jobs": 0}, "scenario.jobs"),
        ({**VALID, "tags": [1]}, "scenario.tags[0]"),
        ({**VALID, "docs": "docs/x.md"}, "scenario.docs"),
    ])
    def test_invalid_documents_name_their_path(self, document, path):
        with pytest.raises(ValidationError) as excinfo:
            load_scenario(document)
        assert str(excinfo.value).startswith(path + ": ")

    def test_unknown_experiment_lists_known_ids(self):
        with pytest.raises(ValidationError) as excinfo:
            load_scenario({**VALID, "experiments": ["fig99"]})
        message = str(excinfo.value)
        assert "fig99" in message
        assert "table1" in message and "fig6" in message

    def test_custom_path_prefix(self):
        with pytest.raises(ValidationError) as excinfo:
            load_scenario({}, path="body.scenario")
        assert str(excinfo.value).startswith("body.scenario.")


class TestScenarioFiles:
    def test_load_json_file(self, tmp_path):
        path = tmp_path / "smoke.json"
        path.write_text(json.dumps(VALID))
        assert load_scenario_file(path) == load_scenario(VALID)

    def test_missing_file_is_a_validation_error(self, tmp_path):
        with pytest.raises(ValidationError) as excinfo:
            load_scenario_file(tmp_path / "absent.json")
        assert "cannot read" in str(excinfo.value)

    def test_invalid_json_is_a_validation_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError) as excinfo:
            load_scenario_file(path)
        assert "invalid JSON" in str(excinfo.value)

    def test_yaml_file_loads_when_pyyaml_present(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "smoke.yaml"
        path.write_text(yaml.safe_dump(VALID))
        assert load_scenario_file(path) == load_scenario(VALID)


class TestLibrary:
    def test_filename_must_match_name(self, tmp_path):
        (tmp_path / "alpha.json").write_text(
            json.dumps({**VALID, "name": "beta"}))
        with pytest.raises(ValidationError) as excinfo:
            load_scenario_library(tmp_path)
        assert "must match its filename" in str(excinfo.value)

    def test_missing_root_is_a_validation_error(self, tmp_path):
        with pytest.raises(ValidationError) as excinfo:
            load_scenario_library(tmp_path / "nowhere")
        assert "does not exist" in str(excinfo.value)

    def test_non_scenario_files_are_skipped(self, tmp_path):
        (tmp_path / "smoke.json").write_text(json.dumps(VALID))
        (tmp_path / "README.md").write_text("not a scenario")
        (tmp_path / "policies").mkdir()
        assert tuple(load_scenario_library(tmp_path)) == ("smoke",)

    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        (tmp_path / "smoke.json").write_text(json.dumps(VALID))
        monkeypatch.setenv(SCENARIO_ENV_VAR, str(tmp_path))
        assert default_library_root() == tmp_path
        assert scenario_names() == ("smoke",)

    def test_unknown_named_scenario_lists_known(self, tmp_path):
        (tmp_path / "smoke.json").write_text(json.dumps(VALID))
        with pytest.raises(ValidationError) as excinfo:
            load_named_scenario("nope", root=tmp_path)
        assert "smoke" in str(excinfo.value)


class TestShippedLibrary:
    """The repo's own ``scenarios/`` directory is internally consistent."""

    @pytest.fixture(scope="class")
    def library(self):
        return load_scenario_library(REPO_ROOT / "scenarios")

    def test_library_loads_and_is_nonempty(self, library):
        assert len(library) >= 15
        for scenario in library.values():
            assert isinstance(scenario, Scenario)

    def test_every_engine_experiment_is_covered(self, library):
        covered = {experiment for scenario in library.values()
                   for experiment in scenario.experiments}
        missing = set(experiment_ids()) - covered
        assert not missing, (
            f"engine experiments not reachable from any scenario: "
            f"{sorted(missing)}")

    def test_every_docs_experiment_page_has_a_scenario(self, library):
        """The acceptance bar: each docs/ experiment page is one
        ``repro run <name>`` away."""
        linked = {doc for scenario in library.values()
                  for doc in scenario.docs}
        for page in ("docs/chaos.md", "docs/cluster.md", "docs/scale.md",
                     "docs/lazy-restore.md", "docs/policies.md",
                     "docs/calibration.md"):
            assert page in linked, f"no scenario links {page}"

    def test_docs_links_point_at_real_files(self, library):
        for scenario in library.values():
            for doc in scenario.docs:
                assert (REPO_ROOT / doc).is_file(), (
                    f"{scenario.name} links missing doc {doc}")

    def test_scenario_names_do_not_shadow_figure_ids(self, library):
        """``repro run <name>`` resolves figures first; a scenario named
        after a figure id could never run."""
        from repro.cli import FIGURES
        clashes = set(library) & set(FIGURES)
        assert not clashes, f"scenario names shadowed by figures: {clashes}"

    def test_paper_repro_runs_the_paper_figures(self, library):
        scenario = library["paper-repro"]
        assert "fig6" in scenario.experiments
        assert scenario.seed == 2022

    def test_search_smoke_is_ci_sized(self, library):
        assert library["search-smoke"].experiments == ("search-smoke",)
