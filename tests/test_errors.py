"""Tests for the exception hierarchy: every error is catchable as
ReproError, and subsystem groupings hold."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc_cls", [
        errors.SimulationError,
        errors.MemoryError_,
        errors.OutOfMemoryError,
        errors.StorageError,
        errors.SnapshotNotFoundError,
        errors.NetworkError,
        errors.AddressConflictError,
        errors.RuntimeModelError,
        errors.DeoptimizationError,
        errors.SandboxError,
        errors.PlatformError,
        errors.FunctionNotFoundError,
        errors.AnnotationError,
        errors.BusError,
        errors.DatabaseError,
        errors.DocumentConflictError,
    ])
    def test_everything_is_a_repro_error(self, exc_cls):
        assert issubclass(exc_cls, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc_cls("boom")

    def test_subsystem_groupings(self):
        assert issubclass(errors.OutOfMemoryError, errors.MemoryError_)
        assert issubclass(errors.SnapshotNotFoundError, errors.StorageError)
        assert issubclass(errors.AddressConflictError, errors.NetworkError)
        assert issubclass(errors.FunctionNotFoundError,
                          errors.PlatformError)
        assert issubclass(errors.DocumentConflictError,
                          errors.DatabaseError)

    def test_injected_faults_are_repro_errors(self):
        from repro.faults import InjectedFault, SnapshotCorruptedError
        assert issubclass(InjectedFault, errors.ReproError)
        assert issubclass(SnapshotCorruptedError, InjectedFault)

    def test_fault_carries_kind_and_key(self):
        from repro.faults import InjectedFault
        fault = InjectedFault("db", "wages")
        assert fault.kind == "db"
        assert fault.key == "wages"
        assert "wages" in str(fault)

    def test_repro_errors_are_not_builtin_shadows(self):
        """MemoryError_ deliberately does not subclass builtin MemoryError
        (which is not an Exception subclass pattern we want to catch)."""
        assert not issubclass(errors.MemoryError_, MemoryError)
