"""Unit tests for sandbox lifecycle and memory wiring."""

import pytest

from repro.errors import SandboxError
from repro.sandbox import (Container, GVisorSandbox, MicroVM, V8Isolate,
                           STATE_CREATED, STATE_PAUSED, STATE_RUNNING,
                           STATE_STOPPED)
from tests.helpers import run


@pytest.fixture
def microvm(sim, params, host):
    return MicroVM(sim, params, host, "nodejs", name="vm-under-test")


class TestLifecycle:
    def test_boot_sequence_timing(self, sim, params, host, microvm):
        assert microvm.state == STATE_CREATED
        run(sim, microvm.boot())
        latency = params.latency("microvm")
        assert sim.now == pytest.approx(
            latency.create_ms + latency.os_boot_ms)
        assert microvm.state == STATE_RUNNING
        assert microvm.boot_completed_at == sim.now

    def test_double_boot_raises(self, sim, params, host, microvm):
        run(sim, microvm.boot())
        with pytest.raises(SandboxError):
            run(sim, microvm.boot())

    def test_pause_resume_cycle(self, sim, params, host, microvm):
        run(sim, microvm.boot())
        run(sim, microvm.pause())
        assert microvm.state == STATE_PAUSED
        run(sim, microvm.resume())
        assert microvm.state == STATE_RUNNING

    def test_pause_when_not_running_raises(self, sim, params, microvm):
        with pytest.raises(SandboxError):
            run(sim, microvm.pause())

    def test_resume_when_not_paused_raises(self, sim, params, microvm):
        run(sim, microvm.boot())
        with pytest.raises(SandboxError):
            run(sim, microvm.resume())

    def test_stop_releases_memory(self, sim, params, host, microvm):
        run(sim, microvm.boot())
        assert host.used_mb > 0
        run(sim, microvm.stop())
        assert microvm.state == STATE_STOPPED
        assert host.used_mb == 0

    def test_double_stop_raises(self, sim, params, host, microvm):
        run(sim, microvm.boot())
        run(sim, microvm.stop())
        with pytest.raises(SandboxError):
            run(sim, microvm.stop())


class TestMemoryWiring:
    def test_vm_boot_maps_kernel(self, sim, params, host, microvm):
        run(sim, microvm.boot())
        layout = params.memory_layout("nodejs")
        assert microvm.space.region_rss_mb("kernel") == \
            pytest.approx(layout.kernel_mb)
        assert microvm.space.region_rss_mb("vmm") == \
            pytest.approx(layout.vmm_overhead_mb)

    def test_container_has_no_guest_kernel(self, sim, params, host):
        container = Container(sim, params, host, "nodejs")
        run(sim, container.boot())
        assert not container.space.has_region("kernel")

    def test_gvisor_maps_sentry(self, sim, params, host):
        gvisor = GVisorSandbox(sim, params, host, "nodejs")
        run(sim, gvisor.boot())
        # Sentry is a user-space kernel: present but smaller than a guest
        # kernel.
        assert gvisor.space.has_region("kernel")
        assert gvisor.space.region_rss_mb("kernel") < \
            params.memory_layout("nodejs").kernel_mb

    def test_isolate_is_tiny(self, sim, params, host):
        isolate = V8Isolate(sim, params, host, "nodejs")
        run(sim, isolate.boot())
        isolate.map_runtime_memory()
        assert isolate.rss_mb() < 5

    def test_full_stack_memory_near_170mb(self, sim, params, host, microvm):
        """§5.1 footnote: the average sandbox is ~170 MB."""
        run(sim, microvm.boot())
        microvm.map_runtime_memory()
        microvm.map_app_memory()
        microvm.map_jit_memory()
        layout = params.memory_layout("nodejs")
        guest = microvm.rss_mb() - layout.vmm_overhead_mb
        assert guest == pytest.approx(170, abs=10)

    def test_jit_memory_mapped_once(self, sim, params, host, microvm):
        run(sim, microvm.boot())
        microvm.map_runtime_memory()
        microvm.map_app_memory()
        microvm.map_jit_memory()
        microvm.map_jit_memory()  # idempotent
        assert microvm.space.has_region("jit_code")


class TestBootTimeOrdering:
    def test_cold_boot_ordering_across_mechanisms(self, sim, params, host):
        """Fig 6: Firecracker cold boot slowest, container fastest."""
        def boot_time(sandbox_cls):
            from repro.sim import Simulation
            local = Simulation()
            from repro.mem import HostMemory
            sandbox = sandbox_cls(local, params, HostMemory(params.host),
                                  "nodejs")
            run(local, sandbox.boot())
            return local.now

        microvm_ms = boot_time(MicroVM)
        container_ms = boot_time(Container)
        gvisor_ms = boot_time(GVisorSandbox)
        assert container_ms < gvisor_ms < microvm_ms


class TestIsolationLabels:
    def test_table1_isolation_levels(self, sim, params, host):
        assert "high" in MicroVM.isolation.lower()
        assert "medium" in Container.isolation.lower()
        assert "medium" in GVisorSandbox.isolation.lower()
        assert "low" in V8Isolate.isolation.lower()
