"""Unit tests for microVM specifics: guest identity and MMDS."""

import pytest

from repro.errors import SandboxError
from repro.net.address import IpAddress, MacAddress
from repro.sandbox.microvm import MicroVM, Mmds

GUEST_IP = IpAddress.parse("10.0.0.2")
GUEST_MAC = MacAddress(0x02F17E000001)


class TestGuestIdentity:
    def test_assign_once(self, sim, params, host):
        vm = MicroVM(sim, params, host, "nodejs")
        vm.assign_guest_addresses(GUEST_IP, GUEST_MAC)
        assert vm.guest_ip == GUEST_IP
        assert vm.guest_mac == GUEST_MAC

    def test_reassign_raises(self, sim, params, host):
        vm = MicroVM(sim, params, host, "nodejs")
        vm.assign_guest_addresses(GUEST_IP, GUEST_MAC)
        with pytest.raises(SandboxError):
            vm.assign_guest_addresses(GUEST_IP, GUEST_MAC)


class TestMmds:
    def test_put_get(self):
        mmds = Mmds()
        mmds.put("fcID", "fc42")
        assert mmds.get("fcID") == "fc42"

    def test_missing_key_raises(self):
        with pytest.raises(SandboxError):
            Mmds().get("fcID")

    def test_snapshot_excludes_mmds(self):
        """MMDS is host-side state: clones must NOT inherit it (§3.5 —
        it is exactly how clones are told apart)."""
        mmds = Mmds()
        mmds.put("fcID", "fc1")
        mmds.snapshot_excluded()
        with pytest.raises(SandboxError):
            mmds.get("fcID")

    def test_overwrite(self):
        mmds = Mmds()
        mmds.put("k", "1")
        mmds.put("k", "2")
        assert mmds.get("k") == "2"
