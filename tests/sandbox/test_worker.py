"""Unit tests for the worker composite (sandbox + runtime + app)."""

import pytest

from repro.errors import SandboxError
from repro.runtime import make_runtime
from repro.runtime.interpreter import AppCode, GuestFunction
from repro.runtime.ops import Compute, Respond, program
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from tests.helpers import run


@pytest.fixture
def app():
    return AppCode(name="app", language="nodejs",
                   guest_functions=(GuestFunction("main", 500.0, 3.0),))


@pytest.fixture
def worker(sim, params, host):
    vm = MicroVM(sim, params, host, "nodejs")
    return Worker(sim, vm, make_runtime(sim, params, "nodejs"))


class TestColdStart:
    def test_cold_start_full_cost(self, sim, params, worker, app):
        run(sim, worker.cold_start(app))
        latency = params.latency("microvm")
        runtime_cfg = params.runtime("nodejs")
        assert sim.now == pytest.approx(
            latency.create_ms + latency.os_boot_ms + runtime_cfg.launch_ms
            + runtime_cfg.app_load_base_ms)
        assert worker.app is app

    def test_cold_start_maps_all_stage_memory(self, sim, worker, app):
        run(sim, worker.cold_start(app))
        space = worker.sandbox.space
        for region in ("vmm", "kernel", "runtime", "app", "heap"):
            assert space.has_region(region), region
        assert not space.has_region("jit_code")  # nothing compiled yet


class TestInvoke:
    def test_invoke_before_running_raises(self, sim, worker):
        with pytest.raises(SandboxError):
            run(sim, worker.invoke(program(Compute(1))))

    def test_invoke_returns_breakdown(self, sim, worker, app):
        run(sim, worker.cold_start(app))
        breakdown = run(sim, worker.invoke(program(Compute(1800),
                                                   Respond())))
        assert breakdown.compute_ms == pytest.approx(100)
        assert worker.invocations == 1

    def test_first_tier_up_maps_jit_memory(self, sim, params, worker, app):
        run(sim, worker.cold_start(app))
        hot_units = params.runtime("nodejs").hotness_threshold_units + 5000
        run(sim, worker.invoke(program(Compute(hot_units))))
        assert worker.sandbox.space.has_region("jit_code")

    def test_cold_worker_exec_dirties_memory_once(self, sim, worker, app):
        run(sim, worker.cold_start(app))
        rss_before = worker.sandbox.rss_mb()
        run(sim, worker.invoke(program(Compute(10))))
        rss_after_first = worker.sandbox.rss_mb()
        assert rss_after_first > rss_before  # exec_extra_anon growth
        run(sim, worker.invoke(program(Compute(10))))
        assert worker.sandbox.rss_mb() == pytest.approx(rss_after_first)

    def test_force_jit_maps_jit_region(self, sim, worker, app):
        run(sim, worker.cold_start(app))
        run(sim, worker.force_jit())
        assert worker.sandbox.space.has_region("jit_code")
        assert worker.runtime.jit.optimized_functions() == ("main",)


class TestSteadyState:
    def test_enter_steady_state_grows_memory(self, sim, worker, app):
        run(sim, worker.cold_start(app))
        run(sim, worker.invoke(program(Compute(10))))
        before = worker.sandbox.rss_mb()
        worker.enter_steady_state()
        assert worker.sandbox.rss_mb() > before

    def test_steady_state_idempotent(self, sim, worker, app):
        run(sim, worker.cold_start(app))
        run(sim, worker.invoke(program(Compute(10))))
        worker.enter_steady_state()
        once = worker.sandbox.rss_mb()
        worker.enter_steady_state()
        assert worker.sandbox.rss_mb() == pytest.approx(once)


class TestPassthrough:
    def test_pause_resume_stop(self, sim, worker, app):
        run(sim, worker.cold_start(app))
        run(sim, worker.pause())
        run(sim, worker.resume())
        run(sim, worker.stop())
        assert worker.pss_mb() == 0
