"""Property-based tests: the discrete-event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulation

delays = st.lists(st.floats(min_value=0.0, max_value=1000.0,
                            allow_nan=False),
                  min_size=1, max_size=30)


class TestClockMonotonicity:
    @given(delays)
    @settings(max_examples=80)
    def test_event_processing_is_time_ordered(self, delay_list):
        sim = Simulation()
        seen = []
        sim.add_trace_hook(lambda t, e: seen.append(t))
        for delay in delay_list:
            sim.timeout(delay)
        sim.run()
        assert seen == sorted(seen)
        assert sim.now == max(delay_list)

    @given(delays)
    @settings(max_examples=80)
    def test_sequential_process_sums_delays(self, delay_list):
        sim = Simulation()

        def proc():
            for delay in delay_list:
                yield sim.timeout(delay)
            return sim.now

        total = sim.run(sim.process(proc()))
        assert abs(total - sum(delay_list)) < 1e-6

    @given(st.lists(delays, min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_parallel_processes_finish_at_their_own_sums(self, groups):
        sim = Simulation()
        finishes = {}

        def proc(tag, my_delays):
            for delay in my_delays:
                yield sim.timeout(delay)
            finishes[tag] = sim.now

        for tag, group in enumerate(groups):
            sim.process(proc(tag, group))
        sim.run()
        for tag, group in enumerate(groups):
            assert abs(finishes[tag] - sum(group)) < 1e-6

    @given(delays, st.integers(0, 3))
    @settings(max_examples=50)
    def test_determinism_across_runs(self, delay_list, seed):
        def trace(seed_value):
            sim = Simulation(seed=seed_value)
            order = []

            def proc(tag, delay):
                yield sim.timeout(delay)
                order.append((tag, sim.now))

            for tag, delay in enumerate(delay_list):
                sim.process(proc(tag, delay))
            sim.run()
            return order

        assert trace(seed) == trace(seed)
