"""Property-based tests: JIT tiering invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NODEJS_RUNTIME, PYTHON_RUNTIME
from repro.runtime.jit import INTERPRETED, OPTIMIZED, JitEngine

units_lists = st.lists(st.floats(min_value=0.0, max_value=50000.0,
                                 allow_nan=False),
                       min_size=1, max_size=15)


class TestTieringInvariants:
    @given(units_lists)
    @settings(max_examples=80)
    def test_cost_components_non_negative(self, workloads):
        engine = JitEngine(NODEJS_RUNTIME)
        engine.register("main")
        for units in workloads:
            cost = engine.execute("main", units)
            assert cost.exec_ms >= 0
            assert cost.jit_compile_ms >= 0
            assert cost.deopt_ms >= 0

    @given(units_lists)
    @settings(max_examples=80)
    def test_tiering_never_slower_than_pure_interpretation(self, workloads):
        """Tier-up pays compile once, then wins — total time across any
        invocation sequence stays within one compile of pure interp."""
        engine = JitEngine(NODEJS_RUNTIME)
        state = engine.register("main")
        total = sum(engine.execute("main", units).total_ms
                    for units in workloads)
        pure_interp = sum(workloads) / NODEJS_RUNTIME.interp_units_per_ms
        max_compile = (state.code_units / 1000.0) * \
            NODEJS_RUNTIME.jit_compile_ms_per_kunit
        assert total <= pure_interp + max_compile + 1e-6

    @given(units_lists)
    @settings(max_examples=80)
    def test_optimized_is_monotone_state(self, workloads):
        """Once optimized (and without deopts), a function never falls
        back to the interpreter."""
        engine = JitEngine(NODEJS_RUNTIME)
        engine.register("main")
        was_optimized = False
        for units in workloads:
            engine.execute("main", units)
            tier = engine.state("main").tier
            if was_optimized:
                assert tier == OPTIMIZED
            was_optimized = tier == OPTIMIZED

    @given(units_lists)
    @settings(max_examples=50)
    def test_cpython_stays_interpreted(self, workloads):
        engine = JitEngine(PYTHON_RUNTIME)
        engine.register("main")
        for units in workloads:
            engine.execute("main", units)
        assert engine.state("main").tier == INTERPRETED

    @given(st.floats(1.0, 200.0), st.floats(100.0, 100000.0))
    @settings(max_examples=60)
    def test_speedup_scales_optimized_exec(self, speedup, units):
        engine = JitEngine(PYTHON_RUNTIME)
        engine.register("main", jit_speedup=speedup)
        engine.force_compile("main")
        cost = engine.execute("main", units)
        expected = units / (PYTHON_RUNTIME.interp_units_per_ms * speedup)
        assert cost.exec_ms == pytest.approx(expected)


class TestDeoptInvariants:
    @given(st.lists(st.sampled_from([("int",), ("str",), ("float",),
                                     ("int", "str")]),
                    min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_each_shape_deopts_at_most_once(self, shapes):
        engine = JitEngine(NODEJS_RUNTIME)
        engine.register("main")
        engine.force_compile("main")
        for shape in shapes:
            engine.execute("main", 100.0, arg_shape=shape)
        assert engine.state("main").deopt_count <= len(set(shapes))
        # All seen shapes end up trained.
        assert set(shapes) <= engine.state("main").trained_shapes

    @given(st.lists(st.sampled_from([("a",), ("b",)]), min_size=1,
                    max_size=10))
    @settings(max_examples=40)
    def test_export_import_preserves_behaviour(self, shapes):
        engine = JitEngine(NODEJS_RUNTIME)
        engine.register("main")
        engine.force_compile("main")
        for shape in shapes:
            engine.execute("main", 50.0, arg_shape=shape)
        clone = JitEngine(NODEJS_RUNTIME)
        clone.import_state(engine.export_state())
        # A shape the original trained must not deopt in the clone.
        cost = clone.execute("main", 50.0, arg_shape=shapes[-1])
        assert cost.deopt_ms == 0
