"""Property tests: chunk maps, recorded working sets, and the lazy ledger.

Three invariants must hold for *any* image geometry and working-set size,
not just the calibrated defaults:

* the recorded chunk set is always a subset of the image's chunks, and it
  covers at least the recorded working set;
* a lazy restore's byte ledger is exact — ``covered + faulted ==
  touched``, bitwise, not approximately;
* a generation bump (ASLR regeneration, §6) invalidates the profile.
"""

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import fresh_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.snapshot.chunks import ChunkMap
from repro.snapshot.prefetch import WorkingSetProfile
from repro.snapshot.restorer import POLICY_LAZY
from repro.workloads import faasdom_spec

sizes_mb = st.floats(min_value=0.125, max_value=4096.0,
                     allow_nan=False, allow_infinity=False)
chunk_sizes_mb = st.floats(min_value=0.125, max_value=64.0,
                           allow_nan=False, allow_infinity=False)


class TestChunkMapProperties:
    @given(size=sizes_mb, chunk=chunk_sizes_mb)
    @settings(max_examples=120)
    def test_chunk_sizes_ledger_to_image_size(self, size, chunk):
        cmap = ChunkMap(size, chunk)
        import pytest
        assert cmap.bytes_mb(cmap.all_chunks()) == pytest.approx(size)

    @given(size=sizes_mb, chunk=chunk_sizes_mb,
           want=st.floats(min_value=0.0, max_value=8192.0,
                          allow_nan=False, allow_infinity=False))
    @settings(max_examples=120)
    def test_spread_is_a_subset_of_the_image_chunks(self, size, chunk, want):
        cmap = ChunkMap(size, chunk)
        chunks = cmap.spread(want)
        assert set(chunks) <= set(cmap.all_chunks())
        assert list(chunks) == sorted(set(chunks))

    @given(size=sizes_mb, chunk=chunk_sizes_mb,
           want=st.floats(min_value=0.001, max_value=8192.0,
                          allow_nan=False, allow_infinity=False))
    @settings(max_examples=120)
    def test_spread_covers_the_want(self, size, chunk, want):
        cmap = ChunkMap(size, chunk)
        covered = cmap.bytes_mb(cmap.spread(want))
        # Coverage is capped by the image itself, otherwise >= want.
        assert covered >= min(want, size) - 1e-9


@functools.lru_cache(maxsize=1)
def _lazy_fixture():
    """One installed lazy-policy platform, built once for the module."""
    platform = fresh_platform(FireworksPlatform, restore_policy=POLICY_LAZY)
    spec = faasdom_spec("faas-fact", "nodejs")
    install_all(platform, [spec])
    invoke_once(platform, spec.name)  # record a real profile
    return platform, spec


def _plan_for_working_set(working_set_mb, chunk_size_mb):
    """The lazy plan with a synthetic profile of *working_set_mb* injected
    (exercises the ledger across arbitrary working-set geometries)."""
    platform, spec = _lazy_fixture()
    image = platform.image_for(spec.name)
    restorer = platform.manager.restorer
    profile = WorkingSetProfile(
        image_key=image.key,
        generation=image.generation,
        working_set_mb=working_set_mb,
        recorded_at_ms=0.0,
        chunks=image.chunk_map(chunk_size_mb).spread(working_set_mb),
        chunk_size_mb=chunk_size_mb,
    )
    original = platform.recorder._profiles.get(image.key)
    platform.recorder._profiles[image.key] = profile
    try:
        return restorer.lazy_plan(image)
    finally:
        if original is None:
            platform.recorder._profiles.pop(image.key, None)
        else:
            platform.recorder._profiles[image.key] = original


class TestLazyLedgerProperties:
    @given(working_set=st.floats(min_value=0.0, max_value=512.0,
                                 allow_nan=False, allow_infinity=False),
           chunk=chunk_sizes_mb)
    @settings(max_examples=80, deadline=None)
    def test_ledger_is_exact(self, working_set, chunk):
        plan = _plan_for_working_set(working_set, chunk)
        # Bitwise equality, by construction — not approx.
        assert plan.covered_mb + plan.faulted_mb == plan.touched_mb
        assert plan.bytes_moved_mb == plan.prefetch_mb + plan.faulted_mb

    @given(working_set=st.floats(min_value=0.0, max_value=512.0,
                                 allow_nan=False, allow_infinity=False),
           chunk=chunk_sizes_mb)
    @settings(max_examples=80, deadline=None)
    def test_prefetch_covers_at_least_covered(self, working_set, chunk):
        plan = _plan_for_working_set(working_set, chunk)
        assert plan.prefetch_mb >= plan.covered_mb
        assert plan.faulted_mb >= 0.0
        assert plan.n_faults == 0 or plan.faulted_mb > 0.0


class TestGenerationInvalidation:
    @given(bumps=st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_generation_bump_invalidates_profile(self, bumps):
        platform, spec = _lazy_fixture()
        image = platform.image_for(spec.name)
        assert platform.recorder.profile_for(image) is not None
        regenerated = image
        for _ in range(bumps):
            regenerated = regenerated.clone_for_regeneration()
        assert platform.recorder.profile_for(regenerated) is None
