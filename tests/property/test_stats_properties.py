"""Property-based tests: percentile and histogram invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.stats import LatencyStats, histogram, percentile

samples = st.lists(st.floats(min_value=0.0, max_value=1e6,
                             allow_nan=False),
                   min_size=1, max_size=200)


class TestPercentileProperties:
    @given(samples, st.floats(0.0, 100.0))
    @settings(max_examples=100)
    def test_within_sample_range(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @given(samples, st.floats(0.0, 100.0), st.floats(0.0, 100.0))
    @settings(max_examples=100)
    def test_monotone_in_q(self, values, q1, q2):
        low, high = sorted((q1, q2))
        assert percentile(values, low) <= percentile(values, high)

    @given(samples)
    @settings(max_examples=60)
    def test_p0_and_p100_are_extremes(self, values):
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    @given(samples, st.floats(0.0, 100.0), st.floats(0.1, 10.0))
    @settings(max_examples=60)
    def test_scale_equivariance(self, values, q, factor):
        scaled = [v * factor for v in values]
        assert percentile(scaled, q) == \
            abs(percentile(values, q) * factor) or \
            abs(percentile(scaled, q) - percentile(values, q) * factor) \
            < 1e-6 * max(1.0, max(scaled))


class TestStatsProperties:
    @given(samples)
    @settings(max_examples=60)
    def test_ordering_invariants(self, values):
        stats = LatencyStats.from_samples(values)
        assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms <= stats.max_ms
        # The mean may wobble by a ULP of the sum for near-identical values.
        tolerance = 1e-9 * max(1.0, max(values))
        assert min(values) - tolerance <= stats.mean_ms \
            <= max(values) + tolerance

    @given(samples, st.floats(0.5, 100.0))
    @settings(max_examples=60)
    def test_histogram_counts_everything(self, values, bucket):
        buckets = histogram(values, bucket_ms=bucket)
        assert sum(count for _start, count in buckets) == len(values)
        starts = [start for start, _count in buckets]
        assert starts == sorted(starts)
