"""Property tests fuzzing scenario documents through the loader.

Two properties define the loader's contract:

* **Round-trip**: any valid document survives ``load → dump → load``
  exactly — ``dump_scenario`` loses nothing and invents nothing.
* **Total validation**: for *arbitrary* input — valid, mutated, or pure
  garbage — the only exception that ever escapes :func:`load_scenario`
  is :class:`ValidationError`, and its message starts with a JSON path
  into the document (``scenario[.key[index]]: ...``).  No KeyError, no
  TypeError, no AttributeError, ever.
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.engine import experiment_ids
from repro.errors import ValidationError
from repro.serve.scenarios import dump_scenario, load_scenario

#: Every message escaping the loader is ``<json-path>: <message>`` where
#: the path is rooted at the document (``scenario``) and descends through
#: ``.key`` and ``[index]`` steps only.
PATH_RE = re.compile(r"^scenario(\.[A-Za-z0-9_-]+|\[\d+\])*: .+")

names = st.from_regex(r"[a-z0-9][a-z0-9-]{0,24}", fullmatch=True)

experiment_lists = st.lists(st.sampled_from(experiment_ids()),
                            min_size=1, max_size=5, unique=True)

#: Valid scenario documents: required keys always, optionals sometimes.
valid_documents = st.fixed_dictionaries(
    {"name": names,
     "title": st.text(min_size=1, max_size=40),
     "experiments": experiment_lists},
    optional={
        "description": st.text(max_size=40),
        "seed": st.integers(min_value=0, max_value=2 ** 31),
        "jobs": st.integers(min_value=1, max_value=16),
        "tags": st.lists(st.text(min_size=1, max_size=10), max_size=4),
        "docs": st.lists(st.text(min_size=1, max_size=20), max_size=4),
    })

#: Arbitrary JSON-shaped garbage (any shape a parsed file could take).
json_values = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=20)),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=4)),
    max_leaves=12)


class TestRoundTrip:
    @given(document=valid_documents)
    @settings(max_examples=60, deadline=None)
    def test_valid_documents_round_trip_exactly(self, document):
        scenario = load_scenario(document)
        dumped = dump_scenario(scenario)
        assert load_scenario(dumped) == scenario
        # dump is canonical: a second round-trip is a fixed point.
        assert dump_scenario(load_scenario(dumped)) == dumped

    @given(document=valid_documents)
    @settings(max_examples=60, deadline=None)
    def test_dump_preserves_every_given_key(self, document):
        dumped = dump_scenario(load_scenario(document))
        for key, value in document.items():
            assert dumped[key] == (list(value)
                                   if isinstance(value, (list, tuple))
                                   else value)


class TestTotalValidation:
    @given(document=json_values)
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_garbage_only_raises_validation_error(self,
                                                            document):
        try:
            load_scenario(document)
        except ValidationError as exc:
            # Garbage dict keys may need bracket-quoting, so only the
            # root + separator shape is asserted here; well-formed
            # mutations below get the strict path regex.
            message = str(exc)
            assert message.startswith("scenario"), message
            assert ": " in message, message
        # Any non-ValidationError escapes to hypothesis and fails loudly.

    @given(document=valid_documents, key=st.sampled_from(
        ("name", "title", "experiments", "seed", "jobs", "tags", "docs")),
        junk=json_values)
    @settings(max_examples=120, deadline=None)
    def test_mutated_documents_fail_with_a_path_or_load(self, document,
                                                        key, junk):
        """Replace one field with garbage: either the result is still a
        valid document (the garbage happened to be well-typed) or the
        error names a JSON path rooted at that document."""
        mutated = dict(document)
        mutated[key] = junk
        try:
            scenario = load_scenario(mutated)
        except ValidationError as exc:
            assert PATH_RE.match(str(exc)), str(exc)
        else:
            # If it loaded, the junk really was schema-conformant.
            assert dump_scenario(scenario)[key] == (
                list(junk) if isinstance(junk, (list, tuple)) else junk)

    @given(document=valid_documents, extra=names, junk=json_values)
    @settings(max_examples=60, deadline=None)
    def test_unknown_keys_are_always_rejected(self, document, extra,
                                              junk):
        if extra in ("name", "title", "description", "experiments",
                     "seed", "jobs", "tags", "docs"):
            return
        mutated = dict(document)
        mutated[extra] = junk
        with pytest.raises(ValidationError) as excinfo:
            load_scenario(mutated)
        assert str(excinfo.value).startswith(f"scenario.{extra}: ")
