"""Property-based tests: memory-model invariants under arbitrary workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HostConfig
from repro.mem.address_space import AddressSpace
from repro.mem.host_memory import HostMemory

# Generous host so random workloads never hit the OOM ceiling.
_HOST = HostConfig(dram_mb=1 << 20)


@st.composite
def dirty_sequences(draw):
    """A segment size plus a sequence of (mapper, pages) dirty operations."""
    pages = draw(st.integers(min_value=1, max_value=50000))
    n_mappers = draw(st.integers(min_value=1, max_value=8))
    ops = draw(st.lists(
        st.tuples(st.integers(0, n_mappers - 1),
                  st.integers(0, 60000)),
        max_size=20))
    return pages, n_mappers, ops


class TestSegmentInvariants:
    @given(dirty_sequences())
    @settings(max_examples=100)
    def test_accounting_invariants(self, case):
        pages, n_mappers, ops = case
        host = HostMemory(_HOST)
        segment = host.create_segment(pages / 256, "x")
        segment_pages = segment.pages
        mappers = [segment.attach() for _ in range(n_mappers)]
        for mapper_index, dirty_pages in ops:
            segment.dirty(mappers[mapper_index], dirty_pages)

        # Invariant 1: dirty never exceeds the segment size.
        for mapper in mappers:
            assert 0 <= segment.dirty_pages(mapper) <= segment_pages

        # Invariant 2: resident = segment + sum of private copies.
        expected = segment_pages + sum(segment.dirty_pages(m)
                                       for m in mappers)
        assert segment.resident_pages() == expected

        # Invariant 3: PSS of each mapper is between USS and RSS.
        for mapper in mappers:
            pss = segment.pss_pages(mapper)
            assert segment.uss_pages(mapper) - 1e-9 <= pss \
                <= segment_pages + segment.dirty_pages(mapper) + 1e-9

        # Invariant 4: total PSS never exceeds resident memory.
        total_pss = sum(segment.pss_pages(m) for m in mappers)
        assert total_pss <= segment.resident_pages() + 1e-6

        # Invariant 5: detaching everyone frees everything (no pins).
        for mapper in mappers:
            segment.detach(mapper)
        assert host.used_pages == 0

    @given(st.integers(1, 64), st.integers(1, 500))
    @settings(max_examples=50)
    def test_clean_sharing_splits_evenly(self, n_mappers, mb):
        host = HostMemory(_HOST)
        segment = host.create_segment(mb, "x")
        mappers = [segment.attach() for _ in range(n_mappers)]
        for mapper in mappers:
            assert segment.pss_pages(mapper) == \
                pytest.approx(segment.pages / n_mappers)


class TestAddressSpaceInvariants:
    @given(st.lists(st.tuples(st.sampled_from(["private", "shared"]),
                              st.integers(1, 200)),
                    min_size=1, max_size=6),
           st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_pss_bounded_by_rss(self, regions, fraction):
        host = HostMemory(_HOST)
        space = AddressSpace(host, "vm")
        other = AddressSpace(host, "other")
        for index, (kind, mb) in enumerate(regions):
            name = f"r{index}"
            if kind == "private":
                space.map_private(name, mb)
            else:
                segment = host.create_segment(mb, name)
                space.map_segment(name, segment)
                other.map_segment(name, segment)
        for index, _ in enumerate(regions):
            space.dirty_fraction(f"r{index}", fraction)
        assert space.uss_mb() - 1e-9 <= space.pss_mb() \
            <= space.rss_mb() + 1e-9

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_unmap_restores_host(self, sizes):
        host = HostMemory(_HOST)
        space = AddressSpace(host, "vm")
        for index, mb in enumerate(sizes):
            space.map_private(f"r{index}", mb)
        space.unmap_all()
        assert host.used_pages == 0
