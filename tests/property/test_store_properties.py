"""Property-based tests: the LRU snapshot store against a model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.disk import BlockDevice
from repro.storage.snapshot_store import SnapshotStore


class FakeImage:
    def __init__(self, size_mb: float) -> None:
        self.size_mb = size_mb
        self.evicted = False

    def on_evicted(self) -> None:
        self.evicted = True


keys = st.sampled_from([f"fn{i}" for i in range(6)])
ops = st.lists(st.tuples(st.sampled_from(["put", "get"]), keys),
               min_size=1, max_size=40)


class TestLruModel:
    @given(ops, st.integers(1, 4))
    @settings(max_examples=80)
    def test_matches_reference_lru(self, operations, capacity):
        """The store behaves exactly like a textbook LRU of `capacity`."""
        store = SnapshotStore(BlockDevice(10**6),
                              capacity_images=capacity)
        model: "OrderedDict[str, FakeImage]" = OrderedDict()

        for op, key in operations:
            if op == "put":
                image = FakeImage(10.0)
                store.put(key, image)
                if key in model:
                    del model[key]
                model[key] = image
                while len(model) > capacity:
                    model.popitem(last=False)
            else:
                if key in model:
                    assert store.get(key) is model[key]
                    model.move_to_end(key)
                else:
                    assert not store.contains(key)

            assert list(store.keys()) == list(model)

    @given(ops, st.integers(1, 4))
    @settings(max_examples=60)
    def test_evicted_images_always_notified(self, operations, capacity):
        store = SnapshotStore(BlockDevice(10**6),
                              capacity_images=capacity)
        all_images = []
        for op, key in operations:
            if op == "put":
                image = FakeImage(10.0)
                all_images.append((key, image))
                store.put(key, image)
        resident = {id(store.get(key)) for key in list(store.keys())}
        for _key, image in all_images:
            assert image.evicted == (id(image) not in resident)

    @given(ops)
    @settings(max_examples=40)
    def test_disk_usage_matches_resident_set(self, operations):
        store = SnapshotStore(BlockDevice(10**6), capacity_images=3)
        for op, key in operations:
            if op == "put":
                store.put(key, FakeImage(10.0))
        assert store.disk_used_mb == 10.0 * len(store)
        assert store.device.used_mb == store.disk_used_mb
