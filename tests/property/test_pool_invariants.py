"""Property-based tests: warm-pool and invoker-pool invariants.

The serving layer (repro.autoscale) turned both pools into concurrently
mutated state: admission hand-offs assign/release invoker slots, the
autoscaler parks and expires warm entries, the invoke path takes them,
and chaos drains everything at once.  These tests drive random
interleavings of those operations and check the invariants every caller
relies on:

* an invoker's ``active`` count is never negative and never exceeds its
  capacity;
* no warm entry is ever served twice — an entry leaves the pool exactly
  once, via exactly one of take / drain_expired / drain_all;
* expiry is monotonic in ``now_ms``: once an entry has lapsed it can
  never be taken at any later time;
* at any instant, ``drain_all`` ∪ (previously reaped/served entries) is
  a partition of everything ever added — nothing lost, nothing doubled;
* all of the above keep holding while an autoscaler-style control loop
  changes warm targets at random.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoHostAvailableError, PlatformError
from repro.platforms.pooling import WarmEntry, WarmPool
from repro.platforms.scheduler import POLICIES, InvokerPool


class _StubWorker:
    """Stands in for a sandbox; identity is all the pool cares about."""

    _next_id = 0

    def __init__(self):
        _StubWorker._next_id += 1
        self.worker_id = _StubWorker._next_id

    def pss_mb(self) -> float:
        return 100.0


FUNCTIONS = ("fn-a", "fn-b", "fn-c")

# One warm-pool operation: (op, function index, magnitude).
_pool_ops = st.lists(
    st.tuples(
        st.sampled_from(("add", "take", "advance", "drain_expired",
                         "drain_all", "target")),
        st.integers(0, len(FUNCTIONS) - 1),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False)),
    min_size=1, max_size=60)


class TestWarmPoolInvariants:
    """Random interleavings of add/take/expire/drain on one WarmPool."""

    MAX_WARM = 3   # autoscale cap mimicked by the 'target' op

    def _run_ops(self, ops):
        """Drive the pool; returns the full ledger for the final audit."""
        pool = WarmPool()
        now = 0.0
        added = {}     # id(entry) -> entry, everything ever parked
        served = []    # entries handed out by take()
        reaped = []    # entries returned by drain_expired()
        crashed = []   # entries returned by drain_all()

        def park(fn, ttl):
            entry = WarmEntry(_StubWorker(), now + ttl, paused=False)
            added[id(entry)] = entry
            pool.add(fn, entry)

        for op, fn_index, magnitude in ops:
            fn = FUNCTIONS[fn_index]
            if op == "add":
                park(fn, magnitude)
            elif op == "take":
                entry = pool.take(fn, now)
                if entry is not None:
                    # Never serve a stale entry, never serve one twice.
                    assert entry.expires_at_ms > now
                    assert id(entry) in added
                    assert all(id(entry) != id(e) for e in served)
                    served.append(entry)
            elif op == "advance":
                now += magnitude   # the clock is monotonic by construction
            elif op == "drain_expired":
                pool.expire_all(now)
                for entry in pool.drain_expired():
                    assert entry.expires_at_ms <= now
                    reaped.append(entry)
            elif op == "drain_all":
                drained = pool.drain_all()
                ids = [id(e) for e in drained]
                assert len(ids) == len(set(ids))
                crashed.extend(drained)
                assert pool.live_entries(now) == []
                assert pool.drain_expired() == []
            elif op == "target":
                # Autoscaler top-up: park until at target, capped.
                want = min(int(magnitude) % 5, self.MAX_WARM)
                before = pool.size(fn, now)
                while pool.size(fn, now) < want:
                    park(fn, 30.0)
                # Top-up adds at most (target - have), never past the cap
                # unless raw adds already overfilled the pool.
                assert pool.size(fn, now) == max(before, want)
        return pool, now, added, served, reaped, crashed

    @given(_pool_ops)
    @settings(max_examples=120)
    def test_no_entry_leaves_the_pool_twice(self, ops):
        pool, now, added, served, reaped, crashed = self._run_ops(ops)
        out = [id(e) for e in served + reaped + crashed]
        assert len(out) == len(set(out)), "an entry left the pool twice"

    @given(_pool_ops)
    @settings(max_examples=120)
    def test_drain_all_and_ledger_partition_everything_added(self, ops):
        pool, now, added, served, reaped, crashed = self._run_ops(ops)
        # Final crash-drain: whatever is still inside comes out exactly
        # once, and the four ways out partition everything ever added.
        remaining = pool.drain_all()
        out = [id(e) for e in served + reaped + crashed + remaining]
        assert sorted(out) == sorted(added)
        assert pool.drain_all() == []

    @given(_pool_ops)
    @settings(max_examples=120)
    def test_expiry_is_monotonic_in_now(self, ops):
        pool, now, added, served, reaped, crashed = self._run_ops(ops)
        # Anything still live now stays live at the same instant and is
        # exactly the complement of the lapsed set at a later instant.
        pool.expire_all(now)
        pool.drain_expired()       # flush anything already pending
        live_now = pool.live_entries(now)
        assert all(e.expires_at_ms > now for e in live_now)
        later = now + 1e9
        assert pool.live_entries(later) == []
        pool.expire_all(later)
        lapsed = pool.drain_expired()
        assert sorted(id(e) for e in lapsed) == \
            sorted(id(e) for e in live_now)


# One invoker-pool operation: pick (assign) or release on a random node.
_invoker_ops = st.lists(
    st.tuples(st.sampled_from(("pick", "release")),
              st.integers(0, len(FUNCTIONS) - 1)),
    min_size=1, max_size=80)


class TestInvokerPoolInvariants:
    """Random assign/release interleavings across every policy."""

    @given(_invoker_ops, st.sampled_from(POLICIES),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=120)
    def test_active_counts_stay_within_bounds(self, ops, policy,
                                              capacity, nodes):
        pool = InvokerPool(nodes=nodes, capacity_per_node=capacity,
                           policy=policy)
        outstanding = []   # nodes we owe a release
        for op, fn_index in ops:
            fn = FUNCTIONS[fn_index]
            if op == "pick":
                try:
                    node = pool.pick(fn)
                except NoHostAvailableError:
                    # Only legal when genuinely full everywhere.
                    assert pool.total_active() == nodes * capacity
                    continue
                outstanding.append(node)
            elif op == "release" and outstanding:
                outstanding.pop().release()
            for node in pool.nodes:
                assert 0 <= node.active <= capacity
        assert pool.total_active() == len(outstanding)

    @given(st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=40)
    def test_release_below_zero_is_refused(self, capacity, nodes):
        pool = InvokerPool(nodes=nodes, capacity_per_node=capacity)
        for node in pool.nodes:
            try:
                node.release()
                assert False, "released below zero"
            except PlatformError:
                pass
            assert node.active == 0
