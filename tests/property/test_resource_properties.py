"""Property-based tests: resources never leak slots, even under
interrupt storms (the abandonment semantics)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Interrupt, Resource, Simulation


@st.composite
def interrupt_plans(draw):
    n_jobs = draw(st.integers(min_value=2, max_value=12))
    capacity = draw(st.integers(min_value=1, max_value=3))
    interrupt_at = draw(st.lists(
        st.tuples(st.integers(0, n_jobs - 1),
                  st.floats(min_value=0.5, max_value=40.0)),
        max_size=6))
    return n_jobs, capacity, interrupt_at


class TestNoSlotLeaks:
    @given(interrupt_plans())
    @settings(max_examples=80)
    def test_all_slots_returned(self, plan):
        n_jobs, capacity, interrupt_at = plan
        sim = Simulation()
        cpu = Resource(sim, capacity=capacity)
        completed = []
        interrupted = []

        def job(index):
            req = cpu.request()
            try:
                yield req
                yield sim.timeout(10)
                completed.append(index)
            except Interrupt:
                interrupted.append(index)
            finally:
                # The canonical release pattern: the grant may race an
                # interrupt (slot assigned, Interrupt delivered first), so
                # release whenever the request was ever granted.
                if req.triggered:
                    cpu.release(req)

        processes = [sim.process(job(index)) for index in range(n_jobs)]

        def interrupter():
            for target_index, at_ms in sorted(interrupt_at,
                                              key=lambda x: x[1]):
                delay = at_ms - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                target = processes[target_index]
                if target.is_alive:
                    target.interrupt()

        sim.process(interrupter())
        sim.run()

        # Every slot came back; nothing waits forever.
        assert cpu.count == 0
        assert cpu.queue_length == 0
        # Every job either completed or was interrupted, never lost.
        assert len(completed) + len(interrupted) == n_jobs

    @given(st.integers(1, 4), st.integers(2, 10))
    @settings(max_examples=40)
    def test_throughput_unaffected_by_abandonment(self, capacity, n_jobs):
        """Interrupting every queued waiter leaves the holders intact."""
        sim = Simulation()
        cpu = Resource(sim, capacity=capacity)
        finished = []

        def holder(index):
            req = cpu.request()
            try:
                yield req
                yield sim.timeout(10)
                finished.append(index)
            except Interrupt:
                return
            finally:
                if req.triggered:
                    cpu.release(req)

        processes = [sim.process(holder(index)) for index in range(n_jobs)]

        def cull_queued():
            yield sim.timeout(1)
            for process in processes:
                if process.is_alive and cpu.queue_length > 0:
                    waiting = [p for p in processes if p.is_alive]
                    # interrupt the newest alive process (likely queued)
                    waiting[-1].interrupt()
                    yield sim.timeout(0.1)

        sim.process(cull_queued())
        sim.run()
        assert cpu.count == 0
        assert len(finished) >= min(capacity, n_jobs) - 1
