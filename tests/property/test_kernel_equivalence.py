"""Differential property tests: calendar queue vs the reference heap.

The calendar-queue rewrite's core promise is *exact* order preservation:
for any schedule — ties, urgent ranks, zero delays, far-future jumps,
interleaved cancels — the bucketed scheduler pops entries in precisely
the ``(time, urgent_rank, sequence)`` total order the single-heap kernel
used.  The golden figure hashes ride on that promise; these tests check
it exhaustively at two levels:

* queue level — random push/pop interleavings through
  :class:`~repro.sim.queues.CalendarEventQueue` and
  :class:`~repro.sim.queues.HeapEventQueue` must produce identical pop
  sequences;
* kernel level — full simulations built with ``Simulation(queue="calendar")``
  and ``Simulation(queue="heap")`` must fire the same callbacks at the
  same times in the same order, including through processes, interrupts
  and event cancellation (``Timeout`` never fires after its event fails).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Simulation
from repro.sim.queues import NB_BUCKETS, CalendarEventQueue, HeapEventQueue

# Delays that exercise every tier: same-time (0.0), sub-bucket fractions,
# exact bucket boundaries, the ring-window edge, and far-future overflow.
DELAYS = st.sampled_from([
    0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 7.75, 63.0, 511.0,
    float(NB_BUCKETS - 1), float(NB_BUCKETS), float(NB_BUCKETS) + 0.5,
    10_000.0,
])


# ---------------------------------------------------------------------------
# Queue level
# ---------------------------------------------------------------------------
@st.composite
def push_pop_scripts(draw):
    """A script of operations: ('push', delay, rank) or ('pop',)."""
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("push"), DELAYS,
                      st.sampled_from([0, 1, 1, 1])),  # urgent is rare
            st.tuples(st.just("pop"))),
        min_size=1, max_size=120))
    return ops


@given(push_pop_scripts())
@settings(max_examples=300, deadline=None)
def test_pop_order_identical(script):
    """Both queues pop the same entries in the same order, always."""
    calendar = CalendarEventQueue()
    heap = HeapEventQueue()
    sequence = 0
    now = 0.0
    for op in script:
        if op[0] == "push":
            _, delay, rank = op
            entry = (now + delay, rank, sequence, f"p{sequence}")
            sequence += 1
            calendar.push(entry)
            heap.push(entry)
        else:
            got = calendar.pop()
            expected = heap.pop()
            assert got == expected
            if got is not None:
                # The kernel's clock only moves forward on pops; model
                # that so pushed times are always >= the pop frontier
                # (the access pattern the calendar queue is proven for).
                now = got[0]
        assert len(calendar) == len(heap)
        assert bool(calendar) == bool(heap)
    # Drain: the remaining contents must agree too.
    while heap:
        assert calendar.pop() == heap.pop()
    assert calendar.pop() is None


@given(st.lists(st.tuples(DELAYS, st.sampled_from([0, 1])),
                min_size=1, max_size=200))
@settings(max_examples=200, deadline=None)
def test_bulk_push_then_drain(pushes):
    """Push everything, then drain: a pure priority-queue sort check."""
    calendar = CalendarEventQueue()
    heap = HeapEventQueue()
    for sequence, (delay, rank) in enumerate(pushes):
        entry = (delay, rank, sequence, sequence)
        calendar.push(entry)
        heap.push(entry)
    drained = []
    while calendar:
        drained.append(calendar.pop())
    expected = []
    while heap:
        expected.append(heap.pop())
    assert drained == expected
    assert drained == sorted(drained)


# ---------------------------------------------------------------------------
# Kernel level
# ---------------------------------------------------------------------------
@st.composite
def kernel_programs(draw):
    """A list of per-step actions a driver process performs."""
    return draw(st.lists(
        st.one_of(
            # (schedule a timeout with a recording callback, delay)
            st.tuples(st.just("timeout"), DELAYS),
            # (schedule via the fast path, delay)
            st.tuples(st.just("fast"), DELAYS),
            # (spawn a process that sleeps k times, delay per sleep)
            st.tuples(st.just("process"), DELAYS,
                      st.integers(min_value=1, max_value=3)),
            # (spawn a sleeping process, then interrupt it after a delay)
            st.tuples(st.just("interrupt"), DELAYS, DELAYS),
            # advance the driver itself
            st.tuples(st.just("sleep"), DELAYS)),
        min_size=1, max_size=25))


def _run_program(program, queue: str):
    """Execute *program* on a kernel using *queue*; return the event log."""
    sim = Simulation(seed=7, queue=queue)
    log = []

    def driver():
        from repro.sim import Interrupt
        for index, step in enumerate(program):
            kind = step[0]
            if kind == "timeout":
                timeout = sim.timeout(step[1], value=index)
                timeout.callbacks.append(
                    lambda ev, i=index: log.append(("cb", i, sim.now)))
            elif kind == "fast":
                sim.schedule_timeout(
                    step[1], lambda v, i=index: log.append(
                        ("fast", i, sim.now)))
            elif kind == "process":
                def sleeper(i=index, delay=step[1], count=step[2]):
                    for k in range(count):
                        yield sim.timeout(delay)
                        log.append(("proc", i, k, sim.now))
                sim.process(sleeper())
            elif kind == "interrupt":
                def victim(i=index, delay=step[1]):
                    try:
                        yield sim.timeout(delay + 1.0)
                        log.append(("slept", i, sim.now))
                    except Interrupt:
                        log.append(("interrupted", i, sim.now))
                target = sim.process(victim())
                def fire(v, t=target, i=index):
                    if t.is_alive:
                        t.interrupt(cause=i)
                sim.schedule_timeout(step[1], fire)
            else:  # sleep
                yield sim.timeout(step[0 + 1])
                log.append(("drv", index, sim.now))
        # Make the driver a generator even without any sleeps.
        if False:
            yield  # pragma: no cover

    sim.process(driver())
    sim.run()
    return log, sim.now, sim.events_processed


@given(kernel_programs())
@settings(max_examples=150, deadline=None)
def test_full_simulation_equivalence(program):
    """calendar-queue and heap kernels replay identical histories."""
    calendar_log, calendar_now, calendar_events = _run_program(
        program, "calendar")
    heap_log, heap_now, heap_events = _run_program(program, "heap")
    assert calendar_log == heap_log
    assert calendar_now == heap_now
    assert calendar_events == heap_events


@given(st.lists(DELAYS, min_size=1, max_size=30),
       st.integers(min_value=0, max_value=29))
@settings(max_examples=150, deadline=None)
def test_cancellation_equivalence(delays, cancel_index):
    """Failing one event mid-run never diverges the two kernels."""
    def run(queue):
        sim = Simulation(seed=7, strict=False, queue=queue)
        log = []
        events = [sim.event(f"e{i}") for i in range(len(delays))]
        for index, (event, delay) in enumerate(zip(events, delays)):
            event.callbacks.append(
                lambda ev, i=index: log.append((i, sim.now, ev.ok)))

            def complete(_value, ev=event, i=index):
                if not ev.triggered:
                    ev.succeed(value=i)
            sim.schedule_timeout(delay, complete)
        target = events[cancel_index % len(events)]

        def cancel(_value):
            if not target.triggered:
                target.fail(RuntimeError("cancelled"))
        sim.schedule_timeout(0.5, cancel)
        sim.run()
        return log, sim.now

    assert run("calendar") == run("heap")


def test_unknown_queue_rejected():
    import pytest

    from repro.errors import SimulationError
    with pytest.raises(SimulationError, match="queue"):
        Simulation(queue="wheel")
