"""Property-based tests: CouchDB revision/change-feed invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.couchdb import CouchDatabase
from repro.errors import DatabaseError, DocumentConflictError

doc_ids = st.sampled_from(["a", "b", "c", "d"])
ops = st.lists(st.tuples(st.sampled_from(["put", "put-stale", "delete"]),
                         doc_ids),
               min_size=1, max_size=40)


class TestRevisionModel:
    @given(ops)
    @settings(max_examples=80)
    def test_invariants_under_arbitrary_histories(self, operations):
        db = CouchDatabase("t")
        shadow = {}          # doc_id -> rev
        feed_len = 0

        for op, doc_id in operations:
            if op == "put":
                rev = shadow.get(doc_id)
                doc = db.put(doc_id, {"op": op}, rev=rev)
                shadow[doc_id] = doc.rev
                feed_len += 1
            elif op == "put-stale":
                if doc_id in shadow:
                    try:
                        db.put(doc_id, {}, rev=shadow[doc_id] - 1)
                        raise AssertionError("stale put accepted")
                    except DocumentConflictError:
                        pass
            else:  # delete
                if doc_id in shadow:
                    db.delete(doc_id, rev=shadow[doc_id])
                    del shadow[doc_id]
                    feed_len += 1
                else:
                    try:
                        db.delete(doc_id, rev=1)
                        raise AssertionError("delete of missing accepted")
                    except DatabaseError:
                        pass

        # Invariant 1: the shadow and the database agree on contents.
        assert {doc.doc_id for doc in db.all_docs()} == set(shadow)
        for doc_id, rev in shadow.items():
            assert db.get(doc_id).rev == rev

        # Invariant 2: the change feed counted every accepted mutation,
        # with strictly increasing sequence numbers.
        changes = db.changes_since(0)
        assert len(changes) == feed_len == db.last_seq
        seqs = [change.seq for change in changes]
        assert seqs == sorted(set(seqs))

    @given(ops)
    @settings(max_examples=40)
    def test_listeners_see_every_change(self, operations):
        db = CouchDatabase("t")
        seen = []
        db.subscribe(lambda _db, change: seen.append(change.seq))
        shadow = {}
        for op, doc_id in operations:
            if op == "put":
                doc = db.put(doc_id, {}, rev=shadow.get(doc_id))
                shadow[doc_id] = doc.rev
            elif op == "delete" and doc_id in shadow:
                db.delete(doc_id, rev=shadow.pop(doc_id))
        assert seen == [change.seq for change in db.changes_since(0)]

    @given(st.lists(doc_ids, min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_revisions_increase_monotonically(self, id_sequence):
        db = CouchDatabase("t")
        last_rev = {}
        for doc_id in id_sequence:
            doc = db.put(doc_id, {}, rev=last_rev.get(doc_id))
            if doc_id in last_rev:
                assert doc.rev == last_rev[doc_id] + 1
            else:
                assert doc.rev == 1
            last_rev[doc_id] = doc.rev
