"""Property tests for the DAG engine.

Three contracts, fuzzed:

* **Execution order**: for any random acyclic DAG the orchestrated
  executor dispatches exactly the active stages, in a valid topological
  order (an edge's source finishes before its destination starts), and
  the ledger records exactly one dispatch per executed stage — never a
  re-dispatch, never a skipped stage with a record.
* **Round-trip**: any valid DAG document survives
  ``dag_from_document → dag_to_document`` as a fixed point.
* **Total validation**: for arbitrary garbage or mutated documents the
  only exception that ever escapes :func:`dag_from_document` is
  :class:`ValidationError`, and its message starts with a JSON path
  rooted at ``dag``.  No KeyError, no TypeError, ever.
"""

from __future__ import annotations

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import fresh_platform
from repro.errors import ValidationError
from repro.platforms import FirecrackerPlatform
from repro.platforms.chains import (STATUS_OK, STATUS_SKIPPED,
                                    run_dag_once)
from repro.workloads import faasdom_spec
from repro.workloads.dag import (DagEdge, DagSpec, DagStage,
                                 dag_from_document, dag_to_document,
                                 validate_dag)

#: ``dag`` + any mix of ``.key`` / ``[index]`` / bracket-quoted garbage
#: key (``['a b']``) steps, then ``: message``.
PATH_RE = re.compile(
    r"^dag(\.[A-Za-z0-9_-]+|\[\d+\]"
    r"|\['(?:[^'\\]|\\.)*'\]|\[\"(?:[^\"\\]|\\.)*\"\])*: .+",
    re.DOTALL)


@st.composite
def acyclic_dags(draw, max_stages: int = 5):
    """A random validated invoke-only DAG: edges go strictly from lower
    to higher stage index, so acyclicity holds by construction.  Some
    edges are conditional on the run payload's ``flag`` key."""
    n = draw(st.integers(min_value=2, max_value=max_stages))
    names = [f"s{i}" for i in range(n)]
    spec = faasdom_spec("faas-fact", "nodejs")
    stages = tuple(DagStage(name, spec.name) for name in names)
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if i == 0 and j == i + 1:
                take = True  # keep at least one edge off the entry
            else:
                take = draw(st.booleans())
            if not take:
                continue
            conditional = draw(st.booleans())
            edges.append(DagEdge(
                names[i], names[j],
                when_key="flag" if conditional else "",
                when_value=draw(st.booleans()) if conditional else None))
    dag = DagSpec(name="fuzz", entry=names[0], stages=stages,
                  edges=tuple(edges), functions=(spec,))
    return validate_dag(dag)


json_values = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=20)),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=4)),
    max_leaves=12)


class TestExecutionOrder:
    @given(dag=acyclic_dags(), flag=st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_topological_order_and_exactly_once(self, dag, flag):
        payload = {"flag": flag}
        platform = fresh_platform(FirecrackerPlatform)
        run = run_dag_once(platform, dag, payload)

        active = set(dag.active_stages(payload))
        executed = {result.stage for result in run.executed()}
        assert executed == active
        # Exactly-once: one ledger entry per executed stage, nothing else.
        assert run.ledger == {stage: 1 for stage in active}
        for name, result in run.stages.items():
            if name in active:
                assert result.status == STATUS_OK
                assert result.record is not None
            else:
                assert result.status == STATUS_SKIPPED
                assert result.record is None
        # Topological: every taken edge between active stages is ordered.
        for edge in dag.edges:
            if edge.src in active and edge.dst in active \
                    and edge.taken(payload):
                assert run.stages[edge.src].end_ms <= \
                    run.stages[edge.dst].start_ms

    @given(dag=acyclic_dags(max_stages=4), flag=st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_reruns_are_deterministic(self, dag, flag):
        payload = {"flag": flag}
        timings = []
        for _ in range(2):
            platform = fresh_platform(FirecrackerPlatform)
            run = run_dag_once(platform, dag, payload)
            timings.append([(r.stage, r.start_ms, r.end_ms)
                            for r in run.executed()])
        assert timings[0] == timings[1]


class TestDocumentRoundTrip:
    @given(dag=acyclic_dags())
    @settings(max_examples=20, deadline=None)
    def test_round_trip_is_a_fixed_point(self, dag):
        document = dag_to_document(dag)
        parsed = dag_from_document(document)
        assert dag_to_document(parsed) == document
        assert parsed.stage_names() == dag.stage_names()
        assert parsed.edges == dag.edges
        assert parsed.entry == dag.entry


class TestTotalValidation:
    @given(document=json_values)
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_garbage_only_raises_validation_error(self,
                                                            document):
        try:
            dag_from_document(document)
        except ValidationError as exc:
            message = str(exc)
            assert message.startswith("dag"), message
            assert ": " in message, message
        # Any other exception escapes to hypothesis and fails loudly.

    @given(dag=acyclic_dags(max_stages=4),
           key=st.sampled_from(("name", "entry", "stages", "edges",
                                "guest_hops", "description")),
           junk=json_values)
    @settings(max_examples=80, deadline=None)
    def test_mutated_documents_fail_with_a_path_or_load(self, dag, key,
                                                        junk):
        mutated = dict(dag_to_document(dag))
        mutated[key] = junk
        try:
            dag_from_document(mutated)
        except ValidationError as exc:
            assert PATH_RE.match(str(exc)), str(exc)

    @given(dag=acyclic_dags(max_stages=4),
           edge_key=st.sampled_from(("from", "to", "kind", "database",
                                     "payload_kb", "when")),
           junk=json_values)
    @settings(max_examples=80, deadline=None)
    def test_mutated_edges_fail_with_a_path_or_load(self, dag, edge_key,
                                                    junk):
        mutated = dict(dag_to_document(dag))
        if not mutated["edges"]:
            return
        edges = [dict(edge) for edge in mutated["edges"]]
        edges[0][edge_key] = junk
        mutated["edges"] = edges
        try:
            dag_from_document(mutated)
        except ValidationError as exc:
            assert PATH_RE.match(str(exc)), str(exc)
