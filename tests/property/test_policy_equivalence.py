"""Differential property tests: shipped DSL documents vs built-ins.

The policy-engine refactor's core promise mirrors the kernel rewrite's:
re-expressing the hard-coded policies as DSL documents must change
*nothing* — every shipped document under ``scenarios/policies/`` is
decision-for-decision identical to the built-in class it mirrors, over
randomized cluster states, traces, and histories.  A second battery
fuzzes the compiler: an arbitrary JSON-shaped blob either compiles or
raises :class:`ValidationError` with a path — never any other exception,
never an accepted-but-broken policy.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoHostAvailableError, ValidationError
from repro.platforms.keepalive import (FixedKeepAlive,
                                       HybridHistogramKeepAlive)
from repro.platforms.scheduler import InvokerNode, select_node
from repro.policy import (AutoscaleView, compile_policy, load_policy_dir,
                          shipped_policy_dir)
from repro.policy.autoscale import (DslAutoscalePolicy, PredictiveTargets,
                                    ReactiveTargets)

SHIPPED = load_policy_dir(shipped_policy_dir())

#: (built-in scheduler name, shipped document name) — the placement pairs
#: the differential suite must prove identical.
PLACEMENT_PAIRS = [
    ("round-robin", "dsl-round-robin"),
    ("least-loaded", "dsl-least-loaded"),
    ("hash", "dsl-hash"),
    ("snapshot-locality", "dsl-snapshot-locality"),
]

FUNCTIONS = [f"fn-{i:02d}" for i in range(12)]


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def cluster_states(draw):
    """A random node set: occupancies, a cursor, a locality subset."""
    n = draw(st.integers(min_value=1, max_value=6))
    capacity = draw(st.integers(min_value=1, max_value=4))
    actives = [draw(st.integers(min_value=0, max_value=capacity))
               for _ in range(n)]
    cursor = draw(st.integers(min_value=0, max_value=n - 1))
    local = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    has_probe = draw(st.booleans())
    return actives, capacity, cursor, (local if has_probe else None)


def _make_nodes(actives, capacity):
    return [InvokerNode(node_id=i, capacity=capacity, active=a)
            for i, a in enumerate(actives)]


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------
class TestPlacementEquivalence:
    @given(state=cluster_states(), function=st.sampled_from(FUNCTIONS),
           pair=st.sampled_from(PLACEMENT_PAIRS))
    @settings(max_examples=400, deadline=None)
    def test_single_decision_identical(self, state, function, pair):
        builtin_name, doc_name = pair
        actives, capacity, cursor, local = state
        nodes = _make_nodes(actives, capacity)
        locality = (lambda node: node.node_id in local) \
            if local is not None else None
        dsl = SHIPPED.create("placement", doc_name)
        try:
            expected = select_node(nodes, builtin_name, function, cursor,
                                   locality)
        except NoHostAvailableError:
            try:
                dsl.select(nodes, function, cursor, locality)
            except NoHostAvailableError:
                return
            raise AssertionError(
                f"{doc_name} placed where {builtin_name} found no room")
        got = dsl.select(nodes, function, cursor, locality)
        assert (got[0].node_id, got[1]) == (expected[0].node_id,
                                            expected[1])

    @given(state=cluster_states(),
           script=st.lists(st.sampled_from(FUNCTIONS), min_size=1,
                           max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_round_robin_cursor_tracks_over_a_trace(self, state, script):
        """The cursor is *state*: it must stay in lockstep across a whole
        placement sequence, including assignments filling nodes up."""
        actives, capacity, cursor, _ = state
        oracle_nodes = _make_nodes(actives, capacity)
        dsl_nodes = _make_nodes(actives, capacity)
        dsl = SHIPPED.create("placement", "dsl-round-robin")
        oracle_cursor = dsl_cursor = cursor
        for function in script:
            try:
                expected, oracle_cursor = select_node(
                    oracle_nodes, "round-robin", function, oracle_cursor)
            except NoHostAvailableError:
                try:
                    dsl.select(dsl_nodes, function, dsl_cursor)
                except NoHostAvailableError:
                    break
                raise AssertionError("dsl placed on a full cluster")
            got, dsl_cursor = dsl.select(dsl_nodes, function, dsl_cursor)
            assert got.node_id == expected.node_id
            assert dsl_cursor == oracle_cursor
            oracle_nodes[expected.node_id].assign(function)
            dsl_nodes[got.node_id].assign(function)


# ---------------------------------------------------------------------------
# Keep-alive
# ---------------------------------------------------------------------------
@st.composite
def arrival_traces(draw):
    """Per-function arrival times with repeats and zero-gap arrivals."""
    events = draw(st.lists(
        st.tuples(st.sampled_from(FUNCTIONS[:4]),
                  st.integers(min_value=0, max_value=5000)),
        min_size=1, max_size=60))
    now = 0.0
    trace = []
    for function, delta in events:
        now += float(delta)   # delta 0 => same-instant arrival
        trace.append((function, now))
    return trace


class TestKeepAliveEquivalence:
    @given(trace=arrival_traces())
    @settings(max_examples=200, deadline=None)
    def test_hybrid_histogram_windows_identical(self, trace):
        builtin = HybridHistogramKeepAlive()
        dsl = SHIPPED.create("keepalive", "dsl-hybrid-histogram")
        for function, now in trace:
            builtin.observe_arrival(function, now)
            dsl.observe_arrival(function, now)
            for probe in FUNCTIONS[:4]:
                assert dsl.window_ms(probe) == builtin.window_ms(probe)

    @given(trace=arrival_traces())
    @settings(max_examples=50, deadline=None)
    def test_fixed_windows_identical(self, trace):
        builtin = FixedKeepAlive()
        dsl = SHIPPED.create("keepalive", "dsl-fixed")
        for function, now in trace:
            builtin.observe_arrival(function, now)
            dsl.observe_arrival(function, now)
            assert dsl.window_ms(function) == builtin.window_ms(function)


# ---------------------------------------------------------------------------
# Autoscale
# ---------------------------------------------------------------------------
class _FakeAdmission:
    def __init__(self, waiting):
        self.waiting = list(waiting)

    @property
    def depth(self):
        return len(self.waiting)

    def waiting_functions(self):
        return list(self.waiting)


class _FakeHost:
    def __init__(self, host_id, waiting=(), down=False, gated=True):
        self.host_id = host_id
        self.down = down
        self.admission = _FakeAdmission(waiting) if gated else None


class _FakeCfg:
    reactive_queue_threshold = 2
    reactive_step = 1
    reactive_hold_ticks = 3
    max_warm_per_function = 4
    predictive_gap_quantile = 0.9
    predictive_horizon_ms = 1000.0


def _view(now, hosts, history, functions):
    by_id = {host.host_id: host for host in hosts}
    from repro.platforms.scheduler import home_index
    return AutoscaleView(
        now=now, cfg=_FakeCfg(), history=history, hosts=hosts,
        host=lambda host_id: by_id[host_id],
        home_host=lambda fn: hosts[home_index(fn, len(hosts))],
        functions=functions)


def _normalize(decisions):
    return [(fn, host.host_id, want) for fn, host, want in decisions]


@st.composite
def reactive_scripts(draw):
    """Multi-tick cluster evolutions: waiting lists, crashes, step size."""
    n_hosts = draw(st.integers(min_value=1, max_value=4))
    step = draw(st.integers(min_value=1, max_value=3))
    ticks = draw(st.lists(
        st.tuples(
            # per-host waiting-function lists (with duplicates)
            st.lists(st.lists(st.sampled_from(FUNCTIONS[:5]),
                              max_size=5),
                     min_size=n_hosts, max_size=n_hosts),
            # per-host down flags
            st.lists(st.booleans(), min_size=n_hosts, max_size=n_hosts)),
        min_size=1, max_size=8))
    return n_hosts, step, ticks


class TestAutoscaleEquivalence:
    @given(script=reactive_scripts())
    @settings(max_examples=200, deadline=None)
    def test_reactive_decisions_identical(self, script):
        n_hosts, step, ticks = script
        builtin = ReactiveTargets()
        dsl = SHIPPED.create("autoscale", "dsl-reactive")
        assert isinstance(dsl, DslAutoscalePolicy)
        history = HybridHistogramKeepAlive()
        for tick, (waitings, downs) in enumerate(ticks):
            hosts = [_FakeHost(i, waiting=waitings[i], down=downs[i])
                     for i in range(n_hosts)]
            view = _view(float(tick) * 100.0, hosts, history, FUNCTIONS[:5])
            view.cfg.reactive_step = step
            assert _normalize(dsl.decide(view)) \
                == _normalize(builtin.decide(view))

    @given(trace=arrival_traces(),
           n_hosts=st.integers(min_value=1, max_value=4),
           downs=st.sets(st.integers(min_value=0, max_value=3)),
           now_delta=st.floats(min_value=0.0, max_value=4000.0))
    @settings(max_examples=200, deadline=None)
    def test_predictive_decisions_identical(self, trace, n_hosts, downs,
                                            now_delta):
        history = HybridHistogramKeepAlive()
        for function, now in trace:
            history.observe_arrival(function, now)
        hosts = [_FakeHost(i, down=(i in downs)) for i in range(n_hosts)]
        view = _view(trace[-1][1] + now_delta, hosts, history,
                     FUNCTIONS[:4])
        builtin = PredictiveTargets()
        dsl = SHIPPED.create("autoscale", "dsl-predictive")
        assert _normalize(dsl.decide(view)) \
            == _normalize(builtin.decide(view))


# ---------------------------------------------------------------------------
# Compiler fuzzing
# ---------------------------------------------------------------------------
_FRAGMENTS = st.recursive(
    st.one_of(
        st.none(), st.booleans(), st.integers(min_value=-3, max_value=3),
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=-10, max_value=10),
        st.sampled_from(["active", "has_room", "value", "if", "then",
                         "else", "choose", "argmin", "argmax", "score",
                         "where", "signal", "op", ">=", "<", "sum",
                         "weight", "const", "clamp", "pressured",
                         "gap_percentile_ms", "q", "nonsense"])),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.sampled_from(["name", "domain", "description", "candidates",
                             "tree", "if", "then", "else", "value",
                             "choose", "score", "where", "signal", "op",
                             "sum", "weight", "const", "clamp", "q",
                             "junk"]),
            children, max_size=6)),
    max_leaves=25)


class TestCompilerFuzz:
    @given(blob=_FRAGMENTS)
    @settings(max_examples=500, deadline=None)
    def test_compile_never_raises_anything_but_validation_error(self, blob):
        try:
            compiled = compile_policy(blob)
        except ValidationError as exc:
            # Every rejection carries a path into the document.
            assert "$" in str(exc)
        else:
            # The rare accidentally-valid blob must be a real policy.
            assert compiled.domain in ("placement", "keepalive",
                                       "autoscale")

    @given(domain=st.sampled_from(["placement", "keepalive", "autoscale"]),
           tree=_FRAGMENTS)
    @settings(max_examples=500, deadline=None)
    def test_fuzzed_trees_under_valid_headers(self, domain, tree):
        document = {"name": "fuzz", "domain": domain, "tree": tree}
        if domain == "autoscale":
            document["candidates"] = "queue-state"
        try:
            compile_policy(document)
        except ValidationError as exc:
            assert "$.tree" in str(exc) or "$" in str(exc)
