"""Property-based tests: NAT translation is a bijection per namespace."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.address import IpAddress, MacAddress
from repro.net.bridge import HostBridge
from repro.net.nat import Packet

guest_ips = st.integers(min_value=0x0A000002,
                        max_value=0x0A0000FF).map(IpAddress)
client_ips = st.integers(min_value=0xC0A80001,
                         max_value=0xC0A800FF).map(IpAddress)


class TestNatBijection:
    @given(st.lists(guest_ips, min_size=1, max_size=20), client_ips)
    @settings(max_examples=50)
    def test_clones_always_reachable_and_distinct(self, ips, client):
        """Any number of clones, any (possibly identical) guest IPs:
        external IPs stay unique and routing reaches the right clone."""
        bridge = HostBridge()
        mac = MacAddress(0x02F17E000001)
        endpoints = [bridge.connect_guest(ip, mac) for ip in ips]

        externals = [e.external_ip for e in endpoints]
        assert len(set(externals)) == len(externals)

        for endpoint in endpoints:
            packet = Packet(src=client, dst=endpoint.external_ip)
            delivered = bridge.deliver(packet)
            assert delivered.dst == endpoint.guest_ip
            reply = Packet(src=endpoint.guest_ip, dst=client)
            outbound = bridge.emit(endpoint.external_ip, reply)
            assert outbound.src == endpoint.external_ip
            assert outbound.dst == client

    @given(st.integers(1, 40))
    @settings(max_examples=30)
    def test_connect_disconnect_is_clean(self, n):
        bridge = HostBridge()
        mac = MacAddress(0x02F17E000001)
        guest = IpAddress.parse("10.0.0.2")
        endpoints = [bridge.connect_guest(guest, mac) for _ in range(n)]
        for endpoint in endpoints:
            bridge.disconnect(endpoint)
        assert bridge.endpoint_count() == 0
        assert len(bridge.namespaces) == 0
