"""Property tests: invariants that hold for *random* seeded fault plans.

For every seed the same three things must be true no matter which faults
the plan happened to draw:

* accounting is exact — every submission ends up as exactly one completed
  record or one FailedInvocation (no double billing, no losses);
* every completed record's trace verifies (root span duration equals the
  recorded end-to-end latency, phases cover the root);
* every ``failover`` span points at a host the controller really crashed
  *before* the failover happened.
"""

import dataclasses

import pytest

from repro.bench import fresh_cluster_platform, install_all
from repro.chaos import ChaosPlan, HostFailureController
from repro.core import FireworksPlatform
from repro.errors import InvocationFailedError
from repro.platforms.scheduler import POLICY_SNAPSHOT_LOCALITY
from repro.trace import verify_invocation
from repro.workloads import faasdom_spec

SEEDS = (1, 2, 3, 4, 5)
N_HOSTS = 3
N_FUNCTIONS = 6
DURATION_MS = 60_000.0
#: Submission cadence: frequent enough that bus-partition windows (at
#: least 300 ms under this duration) always straddle some submissions.
PERIOD_MS = 197.0


def _specs():
    base = faasdom_spec("faas-netlatency", "nodejs")
    return [dataclasses.replace(base, name=f"pfn-{i:02d}")
            for i in range(N_FUNCTIONS)]


def _run_under_random_plan(seed):
    """Replay a fixed trace under ``ChaosPlan.random(seed)``; returns
    (platform, controller, submitted_count)."""
    platform = fresh_cluster_platform(
        FireworksPlatform, seed=seed, n_hosts=N_HOSTS,
        policy=POLICY_SNAPSHOT_LOCALITY)
    specs = _specs()
    install_all(platform, specs)
    plan = ChaosPlan.random(seed, n_hosts=N_HOSTS, duration_ms=DURATION_MS,
                            n_events=6)
    controller = HostFailureController(platform, plan, failover=True)
    sim = platform.sim
    submitted = 0
    at_ms = sim.now + PERIOD_MS
    index = 0
    while at_ms < DURATION_MS:
        if sim.now < at_ms:
            sim.run(until=at_ms)
        name = specs[index % N_FUNCTIONS].name
        submitted += 1
        try:
            sim.run(sim.process(platform.invoke(name)))
        except InvocationFailedError:
            pass
        index += 1
        at_ms += PERIOD_MS
    sim.run()
    return platform, controller, submitted


@pytest.fixture(scope="module", params=SEEDS)
def chaos_run(request):
    return _run_under_random_plan(request.param)


class TestAccountingProperties:
    def test_no_invocation_double_billed_or_lost(self, chaos_run):
        platform, _, submitted = chaos_run
        assert len(platform.records) + len(platform.failed_invocations) \
            == submitted

    def test_trace_ids_unique(self, chaos_run):
        platform, _, submitted = chaos_run
        ids = [record.trace_id for record in platform.records]
        ids += [failed.trace_id for failed in platform.failed_invocations]
        assert len(set(ids)) == submitted

    def test_failures_only_under_chaos(self, chaos_run):
        platform, _, _ = chaos_run
        # Every failure is attributable: its reason names a chaos cause.
        for failed in platform.failed_invocations:
            assert any(token in failed.reason
                       for token in ("down", "capacity", "unreachable",
                                     "snapshot", "lost")), failed.reason


class TestTraceProperties:
    def test_every_completed_record_verifies(self, chaos_run):
        platform, _, _ = chaos_run
        for record in platform.records:
            breakdown = verify_invocation(record)
            assert record.span.duration_ms == record.end_to_end_ms
            del breakdown

    def test_retry_spans_count_matches_platform_counter(self, chaos_run):
        platform, _, _ = chaos_run
        spans = []
        for record in platform.records:
            spans += [span for span in record.span.find_all("retry")
                      if span.attrs.get("target") == "invoke"]
        for failed in platform.failed_invocations:
            spans += [span for span in failed.span.find_all("retry")
                      if span.attrs.get("target") == "invoke"]
        assert len(spans) == platform.retries


class TestFailoverProperties:
    def test_every_failover_has_an_earlier_host_down(self, chaos_run):
        platform, controller, _ = chaos_run
        crashes = [(entry.at_ms, entry.host_id) for entry in controller.log
                   if entry.kind == "host-crash"]
        spans = []
        for record in platform.records:
            spans += record.span.find_all("failover")
        for failed in platform.failed_invocations:
            spans += failed.span.find_all("failover")
        assert len(spans) == platform.failovers
        for span in spans:
            from_host = span.attrs["from_host"]
            assert any(host_id == from_host and at_ms <= span.start_ms
                       for at_ms, host_id in crashes), \
                f"failover from host{from_host} with no prior crash"

    def test_property_is_not_vacuous(self):
        # Random plans rarely crash a host mid-flight, so pin the property
        # against a scenario engineered to produce a failover span.
        from tests.chaos.helpers import run_crash_during
        _, controller, record = run_crash_during("restore")
        spans = record.span.find_all("failover")
        assert spans, "engineered crash produced no failover span"
        crashes = [(entry.at_ms, entry.host_id) for entry in controller.log
                   if entry.kind == "host-crash"]
        for span in spans:
            assert any(host_id == span.attrs["from_host"]
                       and at_ms <= span.start_ms
                       for at_ms, host_id in crashes)
