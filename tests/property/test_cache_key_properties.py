"""Property tests for cache-key stability and sensitivity.

The result cache's correctness rests on two properties of
:meth:`ResultCache.key` and its :func:`canonical_jsonable` ingredient:

* **Order-insensitivity**: the key must not depend on dict insertion
  order (or ``PYTHONHASHSEED``) — permuting shard kwargs or nested
  mapping keys yields the identical key, or a warm cache would silently
  go cold across processes.
* **Sensitivity**: changing anything a shard's output *does* depend on —
  experiment, shard, fn, any kwarg value, the params fingerprint, the
  seed — must change the key, or stale results would be served as fresh.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.engine import ResultCache, Shard
from repro.config import (canonical_jsonable, default_parameters,
                          params_fingerprint)

#: JSON-able scalar kwarg values (what real shard kwargs hold).
scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=15),
)

kwarg_dicts = st.dictionaries(
    st.text(min_size=1, max_size=10), scalars, min_size=1, max_size=6)

#: Nested JSON-able structures for canonical_jsonable itself.
nested = st.recursive(
    st.one_of(st.none(), scalars),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4)),
    max_leaves=16)


def shard_with(kwargs_items):
    return Shard(experiment="exp", key="shard", fn="fn",
                 kwargs=tuple(kwargs_items))


class TestOrderInsensitivity:
    @given(kwargs=kwarg_dicts, data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_kwargs_permutation_leaves_the_key_unchanged(self, kwargs,
                                                         data):
        items = list(kwargs.items())
        permuted = data.draw(st.permutations(items))
        cache = ResultCache("unused")
        assert cache.key(shard_with(items), "fp", 2022) == \
            cache.key(shard_with(permuted), "fp", 2022)

    @given(mapping=st.dictionaries(st.text(max_size=8), nested,
                                   max_size=6),
           data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_canonical_jsonable_ignores_mapping_order(self, mapping,
                                                      data):
        permuted_keys = data.draw(st.permutations(list(mapping)))
        reordered = {key: mapping[key] for key in permuted_keys}
        assert canonical_jsonable(mapping) == \
            canonical_jsonable(reordered)

    def test_fingerprint_is_stable_across_calls(self):
        assert params_fingerprint(default_parameters()) == \
            params_fingerprint(default_parameters())


class TestSensitivity:
    @given(kwargs=kwarg_dicts, seed=st.integers(0, 2 ** 31))
    @settings(max_examples=60, deadline=None)
    def test_key_changes_with_every_identity_field(self, kwargs, seed):
        cache = ResultCache("unused")
        base = shard_with(kwargs.items())
        reference = cache.key(base, "fp", seed)
        variants = [
            cache.key(dataclasses.replace(base, experiment="other"),
                      "fp", seed),
            cache.key(dataclasses.replace(base, key="other"), "fp", seed),
            cache.key(dataclasses.replace(base, fn="other"), "fp", seed),
            cache.key(base, "other-fingerprint", seed),
            cache.key(base, "fp", seed + 1),
        ]
        assert reference not in variants

    @given(kwargs=kwarg_dicts, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_key_changes_when_any_kwarg_value_changes(self, kwargs,
                                                      data):
        victim = data.draw(st.sampled_from(sorted(kwargs)))
        changed = dict(kwargs)
        # A list wrapper can never canonicalize like any scalar (notably,
        # a float and its repr string *do* canonicalize identically).
        changed[victim] = [kwargs[victim], "changed"]
        cache = ResultCache("unused")
        assert cache.key(shard_with(kwargs.items()), "fp", 2022) != \
            cache.key(shard_with(changed.items()), "fp", 2022)

    def test_fingerprint_changes_when_a_constant_changes(self):
        params = default_parameters()
        bumped = dataclasses.replace(
            params, host=dataclasses.replace(
                params.host, dram_mb=params.host.dram_mb + 1))
        assert params_fingerprint(params) != params_fingerprint(bumped)

    def test_key_changes_with_package_version(self, monkeypatch):
        cache = ResultCache("unused")
        shard = shard_with([("a", 1)])
        before = cache.key(shard, "fp", 2022)
        monkeypatch.setattr("repro.__version__", "0.0.0-other")
        assert cache.key(shard, "fp", 2022) != before
