"""Round-trip property tests for the binary result codec.

The binary codec (:func:`repro.bench.serialization.dumps_result` /
:func:`loads_result`) is the result cache's on-disk format; a silent
round-trip corruption would poison every cached figure.  These tests
check that arbitrary encodable values — scalars, containers, packed
float blocks, and every registered result dataclass — survive
``loads_result(dumps_result(x)) == x`` bit-exactly, and that the JSON
codec (:func:`encode_result` / :func:`decode_result`) agrees on the
same values.
"""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import serialization
from repro.bench.serialization import (BINARY_MAGIC, decode_result,
                                       dumps_result, encode_result,
                                       loads_result)
from repro.errors import ReproError

# Scalars the codec encodes natively.  NaN is excluded here (NaN != NaN
# breaks the equality-based property) and covered by a dedicated
# bit-exactness test below.
SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 80), max_value=2 ** 80),  # crosses int64
    st.floats(allow_nan=False),  # includes +/-inf, -0.0, subnormals
    st.text(max_size=40),
)

#: Recursive values: scalars nested through lists, tuples and str-keyed
#: dicts — the shapes that appear in encoded results and cache entries.
VALUES = st.recursive(
    SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.lists(children, max_size=6).map(tuple),
        st.dictionaries(st.text(max_size=10), children, max_size=6)),
    max_leaves=25)


@given(VALUES)
@settings(max_examples=400, deadline=None)
def test_value_roundtrip(value):
    """loads_result(dumps_result(x)) == x for arbitrary nested values."""
    blob = dumps_result(value)
    assert blob[:4] == BINARY_MAGIC
    assert loads_result(blob) == value


@given(st.lists(st.floats(allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_packed_float_lists_roundtrip(floats):
    """Homogeneous float lists use the packed encoding and round-trip."""
    assert loads_result(dumps_result(floats)) == floats
    assert loads_result(dumps_result(tuple(floats))) == tuple(floats)


def test_special_floats_bit_exact():
    """inf, -inf, nan, -0.0 survive with their exact bit patterns."""
    for value in (float("inf"), float("-inf"), float("nan"), -0.0, 0.0):
        out = loads_result(dumps_result(value))
        assert struct.pack("<d", out) == struct.pack("<d", value)
    out = loads_result(dumps_result([1.0, float("nan"), -0.0]))
    assert math.isnan(out[1])
    assert struct.pack("<d", out[2]) == struct.pack("<d", -0.0)


@given(VALUES)
@settings(max_examples=150, deadline=None)
def test_binary_agrees_with_json_codec(value):
    """Both codecs round-trip to the same value (the JSON codec keeps
    tuples distinct via its ``$tuple`` tag, just as the binary one
    does with its tuple tag)."""
    assert decode_result(encode_result(value)) == value
    assert loads_result(dumps_result(value)) == value


# ---------------------------------------------------------------------------
# Registered result dataclasses
# ---------------------------------------------------------------------------
def _registered_types():
    assert serialization._TYPES, "builtin result types must be registered"
    return sorted(serialization._TYPES.items())


@pytest.mark.parametrize("name,cls", _registered_types())
@given(values=st.data())
@settings(max_examples=25, deadline=None)
def test_every_registered_dataclass_roundtrips(name, cls, values):
    """Each registered result type round-trips through both codecs.

    The codec is structural (field values are encoded positionally,
    whatever their type), so fields are filled with arbitrary encodable
    values — a stricter property than any single real instance exercises.
    """
    import dataclasses
    instance = cls(*[values.draw(VALUES, label=f.name)
                     for f in dataclasses.fields(cls)])
    assert loads_result(dumps_result(instance)) == instance
    assert decode_result(encode_result(instance)).__class__ is cls


@given(VALUES)
@settings(max_examples=100, deadline=None)
def test_real_results_roundtrip_nested(value):
    """Dataclasses nest inside containers and still round-trip."""
    from repro.bench.results import MemoryPoint
    wrapped = {"points": [MemoryPoint(1, float(i), 2.0)
                          for i in range(3)],
               "extra": value}
    assert loads_result(dumps_result(wrapped)) == wrapped


# ---------------------------------------------------------------------------
# Malformed input never escapes as a non-ReproError
# ---------------------------------------------------------------------------
@given(st.binary(max_size=200))
@settings(max_examples=300, deadline=None)
def test_fuzzed_bytes_raise_repro_error(blob):
    """Arbitrary bytes either decode cleanly or raise ReproError — never
    a bare struct.error/IndexError/UnicodeDecodeError."""
    try:
        loads_result(blob)
    except ReproError:
        pass


@given(VALUES)
@settings(max_examples=100, deadline=None)
def test_truncated_blobs_raise_repro_error(value):
    blob = dumps_result(value)
    for cut in {len(blob) // 2, len(blob) - 1, 5}:
        if 4 <= cut < len(blob):
            with pytest.raises(ReproError):
                loads_result(blob[:cut])


def test_trailing_garbage_rejected():
    with pytest.raises(ReproError, match="trailing"):
        loads_result(dumps_result([1.5]) + b"\x00")


def test_unregistered_dataclass_rejected():
    import dataclasses

    @dataclasses.dataclass
    class NotRegistered:
        x: int = 1

    with pytest.raises(ReproError, match="not registered"):
        dumps_result(NotRegistered())
