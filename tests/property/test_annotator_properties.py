"""Property-based tests: the annotators on generated sources."""

import ast
import keyword

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotator import annotate_nodejs, annotate_python

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: not keyword.iskeyword(s) and not s.startswith("__fireworks"))


@st.composite
def python_sources(draw):
    """A module with a `main` plus a few extra functions."""
    names = draw(st.lists(identifiers, min_size=0, max_size=4,
                          unique=True).filter(lambda ns: "main" not in ns))
    lines = []
    for name in names:
        lines.append(f"def {name}(x):\n    return x + 1\n")
    lines.append("def main(params):\n    return len(params)\n")
    return "\n".join(lines), names + ["main"]


@st.composite
def nodejs_sources(draw):
    names = draw(st.lists(identifiers, min_size=0, max_size=4,
                          unique=True).filter(lambda ns: "main" not in ns))
    lines = []
    for name in names:
        lines.append(f"function {name}(x) {{ return x + 1; }}\n")
    lines.append("function main(params) { return params; }\n")
    return "\n".join(lines), names + ["main"]


class TestPythonAnnotatorProperties:
    @given(python_sources())
    @settings(max_examples=60)
    def test_output_always_valid_python(self, case):
        source, _names = case
        result = annotate_python(source)
        ast.parse(result.annotated)

    @given(python_sources())
    @settings(max_examples=60)
    def test_every_function_gets_jit_decorator(self, case):
        """§3.2: the JIT annotation is added for ALL methods."""
        source, names = case
        result = annotate_python(source)
        assert set(result.functions) == set(names)
        tree = ast.parse(result.annotated)
        decorated = {node.name for node in tree.body
                     if isinstance(node, ast.FunctionDef)
                     and node.decorator_list}
        assert set(names) <= decorated

    @given(python_sources())
    @settings(max_examples=40)
    def test_annotation_is_idempotent_in_decorators(self, case):
        """Annotating already-annotated user code never stacks @jit."""
        source, names = case
        once = annotate_python(source)
        # Strip the scaffolding, re-annotate just the decorated defs.
        tree = ast.parse(once.annotated)
        user_defs = [node for node in tree.body
                     if isinstance(node, ast.FunctionDef)
                     and node.name in names]
        user_module = ast.Module(body=user_defs, type_ignores=[])
        twice = annotate_python(ast.unparse(user_module))
        retree = ast.parse(twice.annotated)
        for node in retree.body:
            if isinstance(node, ast.FunctionDef) and node.name in names:
                jit_decorators = [
                    d for d in node.decorator_list
                    if (isinstance(d, ast.Call)
                        and getattr(d.func, "id", "") == "jit")]
                assert len(jit_decorators) == 1


class TestNodeAnnotatorProperties:
    @given(nodejs_sources())
    @settings(max_examples=60)
    def test_all_functions_get_v8_hooks(self, case):
        source, names = case
        result = annotate_nodejs(source)
        for name in names:
            assert f"%OptimizeFunctionOnNextCall({name})" in \
                result.annotated

    @given(nodejs_sources())
    @settings(max_examples=60)
    def test_braces_stay_balanced(self, case):
        from repro.core.annotator.nodejs_annotator import _balanced_braces
        source, _names = case
        result = annotate_nodejs(source)
        assert _balanced_braces(result.annotated)

    @given(nodejs_sources())
    @settings(max_examples=40)
    def test_original_source_embedded_verbatim(self, case):
        source, _names = case
        result = annotate_nodejs(source)
        assert source in result.annotated
