"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import default_parameters
from repro.mem.host_memory import HostMemory
from repro.sim.kernel import Simulation


@pytest.fixture
def params():
    """The calibrated default parameters."""
    return default_parameters()


@pytest.fixture
def sim():
    """A fresh deterministic simulation."""
    return Simulation(seed=2022)


@pytest.fixture
def host(params):
    """A fresh host memory of the paper's evaluation machine."""
    return HostMemory(params.host)


def run(sim: Simulation, generator, name: str = "test"):
    """Run *generator* as a process to completion; return its value."""
    return sim.run(sim.process(generator, name=name))
