"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import default_parameters
from repro.mem.host_memory import HostMemory
from repro.sim.kernel import Simulation


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the engine's default result cache at a per-test tmp dir.

    Without this, any test that runs experiments through the default
    cache path would write into the developer's ``.repro-cache/`` (and
    read stale blobs out of it) — suites could poison each other and the
    working tree.  The engine resolves ``DEFAULT_CACHE_DIR`` at call
    time precisely so this patch works.
    """
    monkeypatch.setattr("repro.bench.engine.DEFAULT_CACHE_DIR",
                        str(tmp_path / "repro-cache"))


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    """One cache directory shared across a test module's runs.

    Use for tests that *want* cross-run cache hits (differential and
    byte-identity tests) without ever touching ``.repro-cache/``.
    """
    return str(tmp_path_factory.mktemp("repro-shared-cache"))


@pytest.fixture
def params():
    """The calibrated default parameters."""
    return default_parameters()


@pytest.fixture
def sim():
    """A fresh deterministic simulation."""
    return Simulation(seed=2022)


@pytest.fixture
def host(params):
    """A fresh host memory of the paper's evaluation machine."""
    return HostMemory(params.host)


def run(sim: Simulation, generator, name: str = "test"):
    """Run *generator* as a process to completion; return its value."""
    return sim.run(sim.process(generator, name=name))
