"""Unit tests for the operational metrics summaries."""

import pytest

from repro.bench import fresh_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.metrics import summarize
from repro.platforms import FirecrackerPlatform
from repro.platforms.base import InvocationRecord
from repro.workloads import alexa_skills_chain, faasdom_spec


def _record(function="fn", mode="cold", startup=100.0, exec_ms=50.0):
    record = InvocationRecord(function=function, platform="p", mode=mode,
                              submitted_ms=0.0)
    record.startup_ms = startup
    record.exec_ms = exec_ms
    return record


class TestSummarize:
    def test_counts_by_mode(self):
        records = [_record(mode="cold"), _record(mode="warm"),
                   _record(mode="warm")]
        metrics = summarize("p", records)
        assert metrics.total_invocations == 3
        assert metrics.by_mode == {"cold": 1, "warm": 2}

    def test_per_function_grouping(self):
        records = [_record("a"), _record("a"), _record("b")]
        metrics = summarize("p", records)
        assert metrics.function("a").invocations == 2
        assert metrics.function("b").invocations == 1
        with pytest.raises(KeyError):
            metrics.function("ghost")

    def test_startup_share(self):
        metrics = summarize("p", [_record(startup=75.0, exec_ms=25.0)])
        assert metrics.function("fn").startup_share == pytest.approx(0.75)

    def test_chains_flattened_by_default(self):
        parent = _record("a")
        parent.children.append(_record("b"))
        metrics = summarize("p", [parent])
        assert metrics.total_invocations == 2
        shallow = summarize("p", [parent], include_chains=False)
        assert shallow.total_invocations == 1

    def test_as_table(self):
        table = summarize("fireworks", [_record()]).as_table()
        assert "fireworks" in table and "startup-share" in table


class TestOnRealPlatforms:
    def test_fireworks_startup_share_tiny(self):
        platform = fresh_platform(FireworksPlatform)
        spec = faasdom_spec("faas-fact", "nodejs")
        install_all(platform, [spec])
        for _ in range(3):
            invoke_once(platform, spec.name)
        metrics = summarize(platform.name, platform.records)
        assert metrics.by_mode == {"snapshot": 3}
        assert metrics.function(spec.name).startup_share < 0.06

    def test_firecracker_cold_startup_dominates(self):
        platform = fresh_platform(FirecrackerPlatform)
        spec = faasdom_spec("faas-fact", "nodejs")
        install_all(platform, [spec])
        invoke_once(platform, spec.name, mode="cold")
        metrics = summarize(platform.name, platform.records)
        assert metrics.function(spec.name).startup_share > 0.6

    def test_chain_functions_all_appear(self):
        platform = fresh_platform(FireworksPlatform)
        chain = alexa_skills_chain()
        install_all(platform, chain.functions)
        invoke_once(platform, chain.entry, payload={"skill": "fact"})
        metrics = summarize(platform.name, platform.records)
        names = {entry.function for entry in metrics.functions}
        assert {"alexa-frontend", "alexa-fact"} <= names
