"""Unit tests for the language runtime lifecycle and program execution."""

import pytest

from repro.config import default_parameters
from repro.errors import RuntimeModelError
from repro.runtime import make_runtime
from repro.runtime.interpreter import AppCode, GuestFunction
from repro.runtime.ops import (Compute, DiskRead, DiskWrite, NetSend,
                               Respond, program)
from repro.sim import Simulation
from repro.storage.filesystem import IoPathModel
from tests.helpers import run


@pytest.fixture
def params():
    return default_parameters()


@pytest.fixture
def sim():
    return Simulation()


@pytest.fixture
def io(params):
    return IoPathModel(params.latency("microvm"))


def _app(language="nodejs", speedup=3.0):
    return AppCode(name="app", language=language,
                   guest_functions=(GuestFunction("main", 500.0, speedup),))


def _ready_runtime(sim, params, language="nodejs"):
    runtime = make_runtime(sim, params, language)
    run(sim, runtime.launch())
    run(sim, runtime.load_app(_app(language)))
    return runtime


class TestLifecycle:
    def test_launch_takes_configured_time(self, sim, params):
        runtime = make_runtime(sim, params, "nodejs")
        run(sim, runtime.launch())
        assert sim.now == params.runtime("nodejs").launch_ms
        assert runtime.state == runtime.STATE_LAUNCHED

    def test_load_before_launch_raises(self, sim, params):
        runtime = make_runtime(sim, params, "nodejs")
        with pytest.raises(RuntimeModelError):
            run(sim, runtime.load_app(_app()))

    def test_double_launch_raises(self, sim, params):
        runtime = make_runtime(sim, params, "nodejs")
        run(sim, runtime.launch())
        with pytest.raises(RuntimeModelError):
            run(sim, runtime.launch())

    def test_wrong_language_app_raises(self, sim, params):
        runtime = make_runtime(sim, params, "nodejs")
        run(sim, runtime.launch())
        with pytest.raises(RuntimeModelError):
            run(sim, runtime.load_app(_app(language="python")))

    def test_load_registers_guest_functions(self, sim, params):
        runtime = _ready_runtime(sim, params)
        assert runtime.jit.functions() == ("main",)

    def test_extra_load_ms_adds_time(self, sim, params):
        runtime = make_runtime(sim, params, "nodejs")
        run(sim, runtime.launch())
        app = AppCode(name="heavy", language="nodejs", extra_load_ms=500.0)
        before = sim.now
        run(sim, runtime.load_app(app))
        cfg = params.runtime("nodejs")
        assert sim.now - before == pytest.approx(
            cfg.app_load_base_ms + 500.0)

    def test_run_before_load_raises(self, sim, params, io):
        runtime = make_runtime(sim, params, "nodejs")
        run(sim, runtime.launch())
        with pytest.raises(RuntimeModelError):
            run(sim, runtime.run_program(program(Compute(1)), io))

    def test_make_runtime_unknown_language(self, sim, params):
        with pytest.raises(KeyError):
            make_runtime(sim, params, "rust")


class TestExecution:
    def test_compute_breakdown(self, sim, params, io):
        runtime = _ready_runtime(sim, params)
        breakdown = run(sim, runtime.run_program(
            program(Compute(1800)), io))
        assert breakdown.compute_ms == pytest.approx(100)
        assert breakdown.exec_ms == pytest.approx(100)

    def test_disk_ops_cost_io_path(self, sim, params, io):
        runtime = _ready_runtime(sim, params)
        breakdown = run(sim, runtime.run_program(
            program(DiskRead(10.0, times=100), DiskWrite(10.0, times=100)),
            io))
        expected = 200 * io.disk_read_ms(10.0)
        assert breakdown.disk_ms == pytest.approx(expected)

    def test_net_and_respond_accounted(self, sim, params, io):
        runtime = _ready_runtime(sim, params)
        breakdown = run(sim, runtime.run_program(
            program(NetSend(1.0), Respond(0.57)), io))
        assert breakdown.net_ms > 0
        assert breakdown.response_kb == pytest.approx(0.57)

    def test_wall_time_matches_breakdown(self, sim, params, io):
        runtime = _ready_runtime(sim, params)
        before = sim.now
        breakdown = run(sim, runtime.run_program(
            program(Compute(1000), DiskRead(10.0, times=10), Respond()),
            io))
        assert sim.now - before == pytest.approx(breakdown.total_ms)

    def test_db_op_without_handler_raises(self, sim, params, io):
        from repro.runtime.ops import DbGet
        runtime = _ready_runtime(sim, params)
        with pytest.raises(RuntimeModelError, match="database handler"):
            run(sim, runtime.run_program(program(DbGet("x")), io))

    def test_chain_op_without_handler_raises(self, sim, params, io):
        from repro.runtime.ops import InvokeNext
        runtime = _ready_runtime(sim, params)
        with pytest.raises(RuntimeModelError, match="chain handler"):
            run(sim, runtime.run_program(program(InvokeNext("f")), io))

    def test_invocation_counter(self, sim, params, io):
        runtime = _ready_runtime(sim, params)
        run(sim, runtime.run_program(program(Compute(1)), io))
        run(sim, runtime.run_program(program(Compute(1)), io))
        assert runtime.invocations == 2


class TestForceJit:
    def test_force_jit_all_compiles_everything(self, sim, params):
        runtime = _ready_runtime(sim, params)
        compile_ms = run(sim, runtime.force_jit_all())
        assert compile_ms > 0
        assert runtime.jit.optimized_functions() == ("main",)

    def test_force_jit_before_load_raises(self, sim, params):
        runtime = make_runtime(sim, params, "nodejs")
        run(sim, runtime.launch())
        with pytest.raises(RuntimeModelError):
            run(sim, runtime.force_jit_all())

    def test_python_without_numba_raises(self, sim, params):
        from repro.runtime.python_rt import PythonRuntime
        runtime = PythonRuntime(sim, params, numba_available=False)
        run(sim, runtime.launch())
        run(sim, runtime.load_app(_app(language="python")))
        with pytest.raises(RuntimeModelError, match="Numba"):
            run(sim, runtime.force_jit_all())


class TestSnapshotRestore:
    def test_from_snapshot_is_loaded_with_jit_state(self, sim, params):
        runtime = _ready_runtime(sim, params)
        run(sim, runtime.force_jit_all())
        state = runtime.export_jit_state()

        from repro.runtime.interpreter import LanguageRuntime
        clone = LanguageRuntime.from_snapshot(
            sim, params.runtime("nodejs"),
            params.memory_layout("nodejs"), runtime.app, state)
        assert clone.state == clone.STATE_LOADED
        assert clone.jit.optimized_functions() == ("main",)

    def test_v8_optimization_status_helper(self, sim, params):
        from repro.runtime.nodejs import NodeJsRuntime
        runtime = NodeJsRuntime(sim, params)
        run(sim, runtime.launch())
        run(sim, runtime.load_app(_app()))
        assert runtime.get_optimization_status("main") == "interpreted"
        run(sim, runtime.force_jit_all())
        assert runtime.get_optimization_status("main") == "optimized"
