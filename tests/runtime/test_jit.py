"""Unit tests for the tiered JIT model."""

import pytest

from repro.config import NODEJS_RUNTIME, PYTHON_RUNTIME
from repro.errors import RuntimeModelError
from repro.runtime.jit import INTERPRETED, OPTIMIZED, JitEngine


@pytest.fixture
def v8():
    return JitEngine(NODEJS_RUNTIME)


@pytest.fixture
def cpython():
    return JitEngine(PYTHON_RUNTIME)


class TestRegistry:
    def test_register_and_state(self, v8):
        state = v8.register("main", code_units=500, jit_speedup=3.0)
        assert state.tier == INTERPRETED
        assert v8.state("main") is state

    def test_duplicate_register_raises(self, v8):
        v8.register("main")
        with pytest.raises(RuntimeModelError):
            v8.register("main")

    def test_unknown_function_raises(self, v8):
        with pytest.raises(RuntimeModelError):
            v8.state("ghost")

    def test_speedup_below_one_raises(self, v8):
        with pytest.raises(RuntimeModelError):
            v8.register("main", jit_speedup=0.5)


class TestV8Tiering:
    def test_small_function_stays_interpreted(self, v8):
        """§5.5.1: I/O-heavy code never reaches the hotness threshold."""
        v8.register("main")
        cost = v8.execute("main", 300.0)
        assert cost.jit_compile_ms == 0
        assert v8.state("main").tier == INTERPRETED
        assert cost.exec_ms == pytest.approx(
            300.0 / NODEJS_RUNTIME.interp_units_per_ms)

    def test_hot_function_tiers_up_mid_run(self, v8):
        v8.register("main", code_units=500)
        units = NODEJS_RUNTIME.hotness_threshold_units + 10000
        cost = v8.execute("main", units)
        assert cost.jit_compile_ms == pytest.approx(
            0.5 * NODEJS_RUNTIME.jit_compile_ms_per_kunit)
        assert v8.state("main").tier == OPTIMIZED

    def test_tiered_run_is_faster_than_pure_interp(self, v8):
        v8.register("main")
        units = 27000.0
        cost = v8.execute("main", units)
        pure_interp = units / NODEJS_RUNTIME.interp_units_per_ms
        assert cost.total_ms < pure_interp

    def test_optimized_is_jit_speedup_faster(self, v8):
        v8.register("main", jit_speedup=3.0)
        v8.force_compile("main")
        cost = v8.execute("main", 2700.0)
        assert cost.exec_ms == pytest.approx(
            2700.0 / (NODEJS_RUNTIME.interp_units_per_ms * 3.0))

    def test_hotness_accumulates_across_invocations(self, v8):
        """A function can warm up over several short invocations."""
        v8.register("main")
        per_call = NODEJS_RUNTIME.hotness_threshold_units / 2 + 1
        v8.execute("main", per_call)
        assert v8.state("main").tier == INTERPRETED
        v8.execute("main", per_call)
        assert v8.state("main").tier == OPTIMIZED


class TestPythonNoJit:
    def test_cpython_never_tiers_up(self, cpython):
        """§5.5.1: the Python interpreter never JITs on its own."""
        cpython.register("main")
        cost = cpython.execute("main", 1e6)
        assert cost.jit_compile_ms == 0
        assert cpython.state("main").tier == INTERPRETED

    def test_numba_annotation_compiles(self, cpython):
        cpython.register("main", jit_speedup=20.0)
        compile_ms = cpython.force_compile("main")
        assert compile_ms > 0
        assert cpython.state("main").tier == OPTIMIZED

    def test_numba_speedup_applies(self, cpython):
        cpython.register("main", jit_speedup=20.0)
        interpreted = cpython.execute("main", 8000.0).total_ms
        cpython.force_compile("main")
        optimized = cpython.execute("main", 8000.0).total_ms
        assert interpreted / optimized == pytest.approx(20.0, rel=0.01)


class TestDeoptimization:
    def test_unseen_shape_deopts_and_respecializes(self, v8):
        v8.register("main")
        v8.force_compile("main", shape=("str",))
        cost = v8.execute("main", 1000.0, arg_shape=("int",))
        assert cost.deopt_ms == NODEJS_RUNTIME.deopt_penalty_ms
        assert cost.jit_compile_ms > 0  # immediate re-specialization
        state = v8.state("main")
        assert state.deopt_count == 1
        assert ("int",) in state.trained_shapes

    def test_trained_shape_does_not_deopt(self, v8):
        v8.register("main")
        v8.force_compile("main", shape=("str",))
        cost = v8.execute("main", 1000.0, arg_shape=("str",))
        assert cost.deopt_ms == 0

    def test_generic_shape_never_deopts(self, v8):
        v8.register("main")
        v8.force_compile("main", shape=("str",))
        cost = v8.execute("main", 1000.0)
        assert cost.deopt_ms == 0

    def test_second_call_with_same_new_shape_is_clean(self, v8):
        v8.register("main")
        v8.force_compile("main")
        v8.execute("main", 100.0, arg_shape=("int",))
        cost = v8.execute("main", 100.0, arg_shape=("int",))
        assert cost.deopt_ms == 0
        assert v8.total_deopts() == 1


class TestAnnotationSupport:
    def test_force_compile_on_unsupported_runtime(self):
        from dataclasses import replace
        no_numba = replace(PYTHON_RUNTIME, annotation_jit=False)
        engine = JitEngine(no_numba)
        engine.register("main")
        with pytest.raises(RuntimeModelError):
            engine.force_compile("main")


class TestSnapshotState:
    def test_export_import_round_trip(self, v8):
        v8.register("main", jit_speedup=4.0)
        v8.force_compile("main", shape=("str",))
        exported = v8.export_state()

        fresh = JitEngine(NODEJS_RUNTIME)
        fresh.import_state(exported)
        assert fresh.state("main").tier == OPTIMIZED
        assert ("str",) in fresh.state("main").trained_shapes
        assert fresh.optimized_functions() == ("main",)

    def test_export_is_deep_copy(self, v8):
        v8.register("main")
        exported = v8.export_state()
        v8.force_compile("main")
        assert exported["main"].tier == INTERPRETED

    def test_imported_state_is_independent(self, v8):
        v8.register("main")
        exported = v8.export_state()
        fresh = JitEngine(NODEJS_RUNTIME)
        fresh.import_state(exported)
        fresh.force_compile("main")
        assert exported["main"].tier == INTERPRETED
