"""Unit tests for the .NET AOT runtime model (extension)."""

import pytest

from repro.config import default_parameters
from repro.errors import RuntimeModelError
from repro.runtime import make_runtime
from repro.runtime.dotnet import DotnetRuntime
from repro.runtime.interpreter import AppCode, GuestFunction
from repro.runtime.ops import Compute, program
from repro.sim import Simulation
from repro.storage.filesystem import IoPathModel
from tests.helpers import run


@pytest.fixture
def params():
    return default_parameters()


@pytest.fixture
def sim():
    return Simulation()


def _ready(sim, params):
    runtime = make_runtime(sim, params, "dotnet")
    run(sim, runtime.launch())
    app = AppCode(name="aot", language="dotnet",
                  guest_functions=(GuestFunction("main", 500.0, 1.0),))
    run(sim, runtime.load_app(app))
    return runtime


class TestDotnetRuntime:
    def test_factory_builds_dotnet(self, sim, params):
        assert isinstance(make_runtime(sim, params, "dotnet"),
                          DotnetRuntime)

    def test_execution_is_top_tier_from_first_instruction(self, sim,
                                                          params):
        """AOT: no interpreter tier, no JIT cost, ever."""
        runtime = _ready(sim, params)
        io = IoPathModel(params.latency("microvm"))
        breakdown = run(sim, runtime.run_program(
            program(Compute(27000)), io))
        assert breakdown.jit_compile_ms == 0
        # 27000 units at the machine-code rate (54 u/ms) = 500 ms.
        assert breakdown.compute_ms == pytest.approx(500.0)

    def test_matches_v8_top_tier_throughput(self, sim, params):
        """§3.1: post-JIT is conceptually similar to AOT — same code speed."""
        assert params.runtime("dotnet").interp_units_per_ms == \
            pytest.approx(params.runtime("nodejs").interp_units_per_ms
                          * 3.0)

    def test_annotation_jit_rejected(self, sim, params):
        runtime = _ready(sim, params)
        with pytest.raises(RuntimeModelError, match="AOT"):
            run(sim, runtime.force_jit_all())

    def test_launch_heavier_than_scripting_runtimes(self, params):
        dotnet = params.runtime("dotnet")
        assert dotnet.launch_ms > params.runtime("nodejs").launch_ms
        assert dotnet.launch_ms > params.runtime("python").launch_ms

    def test_no_jit_region_in_layout(self, params):
        assert params.memory_layout("dotnet").jit_code_mb == 0
