"""Unit tests for the op-stream types."""

import pytest

from repro.errors import RuntimeModelError
from repro.runtime.ops import (Compute, DbGet, DbPut, DiskRead, DiskWrite,
                               InvokeNext, NetSend, Program, Respond,
                               program)


class TestValidation:
    def test_negative_compute_raises(self):
        with pytest.raises(RuntimeModelError):
            Compute(-1)

    def test_negative_disk_raises(self):
        with pytest.raises(RuntimeModelError):
            DiskRead(-1)
        with pytest.raises(RuntimeModelError):
            DiskWrite(1, times=-1)

    def test_negative_net_raises(self):
        with pytest.raises(RuntimeModelError):
            NetSend(-1)


class TestProgram:
    def test_iteration_and_len(self):
        prog = program(Compute(10), Respond())
        assert len(prog) == 2
        assert isinstance(list(prog)[0], Compute)

    def test_total_compute_units(self):
        prog = program(Compute(10), DiskRead(1), Compute(5))
        assert prog.total_compute_units() == 15

    def test_io_op_count_expands_times(self):
        prog = program(DiskRead(10, times=100), DiskWrite(10, times=100),
                       Respond())
        assert prog.io_op_count() == 201

    def test_functions_in_order(self):
        prog = program(Compute(1, function="b"), Compute(1, function="a"),
                       Compute(1, function="b"))
        assert prog.functions() == ("b", "a")

    def test_functions_default_main(self):
        assert program(Respond()).functions() == ("main",)

    def test_program_is_immutable(self):
        prog = program(Compute(1))
        with pytest.raises(AttributeError):
            prog.ops = ()

    def test_chain_and_db_ops(self):
        prog = Program((InvokeNext("next-fn"), DbGet("db"), DbPut("db")))
        assert prog.io_op_count() == 2  # the two db ops
        assert prog.total_compute_units() == 0

    def test_respond_default_size_matches_paper(self):
        """§5.2.1(3): 79-byte body + ~500-byte header ~= 0.57 KiB."""
        assert Respond().kb == pytest.approx(0.57)
