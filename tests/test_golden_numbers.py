"""Golden numbers: the exact values the calibrated model produces.

The scorecard (tests/integration, benchmarks/) asserts *bands*; this module
pins *exact* values so an accidental model change — a reordered timeout, a
changed constant, a different RNG draw — is caught even when it stays
inside a band.  If you change the model deliberately, update these numbers
and EXPERIMENTS.md together.
"""

import pytest

from repro.bench import (cold_and_warm, fireworks_invocation)
from repro.platforms import FirecrackerPlatform, OpenWhiskPlatform
from repro.workloads import faasdom_spec

ABS = 1e-6


class TestGoldenFireworks:
    def test_node_fact(self):
        record = fireworks_invocation(faasdom_spec("faas-fact", "nodejs"))
        assert record.startup_ms == pytest.approx(18.35, abs=0.01)
        assert record.exec_ms == pytest.approx(500.60, abs=0.01)
        assert record.other_ms == pytest.approx(3.3, abs=0.01)

    def test_python_fact(self):
        record = fireworks_invocation(faasdom_spec("faas-fact", "python"))
        assert record.startup_ms == pytest.approx(33.93, abs=0.01)
        assert record.exec_ms == pytest.approx(125.60, abs=0.01)

    def test_python_matmul(self):
        record = fireworks_invocation(
            faasdom_spec("faas-matrix-mult", "python"))
        assert record.exec_ms == pytest.approx(40.60, abs=0.01)


class TestGoldenBaselines:
    def test_firecracker_node_fact(self):
        cold, warm = cold_and_warm(FirecrackerPlatform,
                                   faasdom_spec("faas-fact", "nodejs"))
        assert cold.startup_ms == pytest.approx(2320.0, abs=ABS)
        assert cold.exec_ms == pytest.approx(801.39, abs=0.01)
        assert warm.startup_ms == pytest.approx(68.0, abs=ABS)

    def test_firecracker_python_fact(self):
        cold, _warm = cold_and_warm(FirecrackerPlatform,
                                    faasdom_spec("faas-fact", "python"))
        assert cold.startup_ms == pytest.approx(1920.0, abs=ABS)
        assert cold.exec_ms == pytest.approx(2500.60, abs=0.01)

    def test_openwhisk_node_fact(self):
        cold, warm = cold_and_warm(OpenWhiskPlatform,
                                   faasdom_spec("faas-fact", "nodejs"))
        assert cold.startup_ms == pytest.approx(1520.0, abs=ABS)
        assert warm.startup_ms == pytest.approx(55.0, abs=ABS)
        # Warm OpenWhisk reuses the JITted process.
        assert warm.exec_ms == pytest.approx(500.40, abs=0.01)


class TestGoldenInstall:
    def test_install_decomposition_node(self):
        from repro.bench import fresh_platform, install_all
        from repro.core import FireworksPlatform
        platform = fresh_platform(FireworksPlatform)
        install_all(platform, [faasdom_spec("faas-fact", "nodejs")])
        report = platform.install_reports["faas-fact-nodejs"]
        assert report.annotate_ms == pytest.approx(35.0, abs=ABS)
        assert report.boot_ms == pytest.approx(2320.0, abs=ABS)
        assert report.jit_ms == pytest.approx(4.5, abs=ABS)
        assert report.snapshot_ms == pytest.approx(392.0, abs=ABS)


class TestGoldenDeterminism:
    def test_bitwise_repeatability(self):
        """Two identical runs produce identical floats, not just close."""
        spec = faasdom_spec("faas-diskio", "python")
        first = fireworks_invocation(spec)
        second = fireworks_invocation(spec)
        assert first.startup_ms == second.startup_ms
        assert first.exec_ms == second.exec_ms
        assert first.other_ms == second.other_ms


def _canonical_hash(result) -> str:
    """SHA-256 of the loss-free canonical JSON encoding of *result* —
    the same bytes the engine's result cache stores."""
    import hashlib
    import json

    from repro.bench.serialization import encode_result
    blob = json.dumps(encode_result(result), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


#: Pristine (pre-serving-layer) figure hashes; the disabled autoscale
#: defaults must reproduce them bit-for-bit.
GOLDEN_FIGURE_HASHES = {
    "fig6:faas-fact":
        "4b214b3ad461b9b9d3e81751f52b4289b8bc025eb26c0c51313cbf5de2c42cee",
    "fig7:faas-fact":
        "d0a486034e58b8f7635fb1d6759195883c0070cdcfd4d6af2235685db8033449",
    "fig9:all":
        "1f21f019ac6571b22fba816f6bf29bc48fe960b6f527db3dfe063bd5fe16ec15",
    "fig10:firecracker":
        "3fbc9636a87f7bb336be487c84fe51c5ee22b76f74c48497f5dbae63485a2d8c",
    "fig10:fireworks":
        "7d3ed7a73aea311202e07584654bcf52bfbcf1cc819716c1b5403d9f4619f97b",
    # The lazy-restore / streaming-transfer figure (PR 7) — pinned the
    # same way so later PRs cannot silently move it.
    "restore:all":
        "88442eade79b97841ff49d6970c53b539fc31ed41d04b27f1ef525c42acb762a",
    # The multi-tenant chains figure (PR 10): all ten
    # (backend, placement policy) rows through the DAG executor.
    "chains:all":
        "eef16148bf2177ab487427aad74cc6ba8b269a092ac46e912d4bf36447d65f31",
}


class TestGoldenFigureHashes:
    """Whole-figure outputs, pinned bit-for-bit.

    The serving layer (repro.autoscale) threads through the shared invoke
    path; these hashes prove its disabled defaults leave every existing
    figure *byte*-identical, not merely within tolerance.  If you change
    the model deliberately, re-capture with ``_canonical_hash`` and
    update EXPERIMENTS.md alongside.
    """

    def test_autoscale_is_disabled_by_default(self):
        from repro.config import default_parameters
        params = default_parameters()
        assert params.autoscale.enabled is False

    def test_default_decision_path_stays_builtin(self):
        # The policy-engine refactor must be invisible by default: a
        # platform built with no DSL documents routes every decision
        # layer through the built-in classes (source "builtin"), which
        # is what makes the byte-identical hashes below meaningful.
        from repro.autoscale.scaler import WarmPoolAutoscaler
        from repro.bench.harness import fresh_cluster_platform
        from repro.core.fireworks import FireworksPlatform
        platform = fresh_cluster_platform(FireworksPlatform, n_hosts=2)
        assert platform.cluster.policy_source == "builtin"
        scaler = WarmPoolAutoscaler(platform, mode="none")
        assert scaler.policy_source == "builtin"

    def test_fig6_fact_nodejs(self):
        from repro.bench.faasdom_experiments import run_faasdom_benchmark
        from repro.config import default_parameters
        result = run_faasdom_benchmark("faas-fact", "nodejs",
                                       default_parameters())
        assert _canonical_hash(result) == \
            GOLDEN_FIGURE_HASHES["fig6:faas-fact"]

    def test_fig7_fact_python(self):
        from repro.bench.faasdom_experiments import run_faasdom_benchmark
        from repro.config import default_parameters
        result = run_faasdom_benchmark("faas-fact", "python",
                                       default_parameters())
        assert _canonical_hash(result) == \
            GOLDEN_FIGURE_HASHES["fig7:faas-fact"]

    def test_fig9_applications(self):
        from repro.bench.realworld import run_fig9
        from repro.config import default_parameters
        result = run_fig9(default_parameters())
        assert _canonical_hash(result) == GOLDEN_FIGURE_HASHES["fig9:all"]

    def test_fig10_firecracker(self):
        from repro.bench.memory import run_fig10_platform
        from repro.config import default_parameters
        result = run_fig10_platform("firecracker", default_parameters())
        assert _canonical_hash(result) == \
            GOLDEN_FIGURE_HASHES["fig10:firecracker"]

    def test_fig10_fireworks(self):
        from repro.bench.memory import run_fig10_platform
        from repro.config import default_parameters
        result = run_fig10_platform("fireworks", default_parameters())
        assert _canonical_hash(result) == \
            GOLDEN_FIGURE_HASHES["fig10:fireworks"]

    def test_stream_transfers_disabled_by_default(self):
        from repro.config import default_parameters
        params = default_parameters()
        assert params.cluster.stream_transfers is False

    def test_restore_figure(self):
        from repro.bench.restore import run_restore_figure
        from repro.config import default_parameters
        result = run_restore_figure(default_parameters())
        assert _canonical_hash(result) == \
            GOLDEN_FIGURE_HASHES["restore:all"]

    def test_chains_figure(self):
        from repro.bench.chains import run_chains_experiment
        from repro.config import default_parameters
        result = run_chains_experiment(default_parameters())
        assert _canonical_hash(result) == \
            GOLDEN_FIGURE_HASHES["chains:all"]
