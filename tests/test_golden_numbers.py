"""Golden numbers: the exact values the calibrated model produces.

The scorecard (tests/integration, benchmarks/) asserts *bands*; this module
pins *exact* values so an accidental model change — a reordered timeout, a
changed constant, a different RNG draw — is caught even when it stays
inside a band.  If you change the model deliberately, update these numbers
and EXPERIMENTS.md together.
"""

import pytest

from repro.bench import (cold_and_warm, fireworks_invocation)
from repro.platforms import FirecrackerPlatform, OpenWhiskPlatform
from repro.workloads import faasdom_spec

ABS = 1e-6


class TestGoldenFireworks:
    def test_node_fact(self):
        record = fireworks_invocation(faasdom_spec("faas-fact", "nodejs"))
        assert record.startup_ms == pytest.approx(18.35, abs=0.01)
        assert record.exec_ms == pytest.approx(500.60, abs=0.01)
        assert record.other_ms == pytest.approx(3.3, abs=0.01)

    def test_python_fact(self):
        record = fireworks_invocation(faasdom_spec("faas-fact", "python"))
        assert record.startup_ms == pytest.approx(33.93, abs=0.01)
        assert record.exec_ms == pytest.approx(125.60, abs=0.01)

    def test_python_matmul(self):
        record = fireworks_invocation(
            faasdom_spec("faas-matrix-mult", "python"))
        assert record.exec_ms == pytest.approx(40.60, abs=0.01)


class TestGoldenBaselines:
    def test_firecracker_node_fact(self):
        cold, warm = cold_and_warm(FirecrackerPlatform,
                                   faasdom_spec("faas-fact", "nodejs"))
        assert cold.startup_ms == pytest.approx(2320.0, abs=ABS)
        assert cold.exec_ms == pytest.approx(801.39, abs=0.01)
        assert warm.startup_ms == pytest.approx(68.0, abs=ABS)

    def test_firecracker_python_fact(self):
        cold, _warm = cold_and_warm(FirecrackerPlatform,
                                    faasdom_spec("faas-fact", "python"))
        assert cold.startup_ms == pytest.approx(1920.0, abs=ABS)
        assert cold.exec_ms == pytest.approx(2500.60, abs=0.01)

    def test_openwhisk_node_fact(self):
        cold, warm = cold_and_warm(OpenWhiskPlatform,
                                   faasdom_spec("faas-fact", "nodejs"))
        assert cold.startup_ms == pytest.approx(1520.0, abs=ABS)
        assert warm.startup_ms == pytest.approx(55.0, abs=ABS)
        # Warm OpenWhisk reuses the JITted process.
        assert warm.exec_ms == pytest.approx(500.40, abs=0.01)


class TestGoldenInstall:
    def test_install_decomposition_node(self):
        from repro.bench import fresh_platform, install_all
        from repro.core import FireworksPlatform
        platform = fresh_platform(FireworksPlatform)
        install_all(platform, [faasdom_spec("faas-fact", "nodejs")])
        report = platform.install_reports["faas-fact-nodejs"]
        assert report.annotate_ms == pytest.approx(35.0, abs=ABS)
        assert report.boot_ms == pytest.approx(2320.0, abs=ABS)
        assert report.jit_ms == pytest.approx(4.5, abs=ABS)
        assert report.snapshot_ms == pytest.approx(392.0, abs=ABS)


class TestGoldenDeterminism:
    def test_bitwise_repeatability(self):
        """Two identical runs produce identical floats, not just close."""
        spec = faasdom_spec("faas-diskio", "python")
        first = fireworks_invocation(spec)
        second = fireworks_invocation(spec)
        assert first.startup_ms == second.startup_ms
        assert first.exec_ms == second.exec_ms
        assert first.other_ms == second.other_ms
