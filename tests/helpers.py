"""Test helpers shared across the suite."""

from __future__ import annotations

from repro.sim.kernel import Simulation


def run(sim: Simulation, generator, name: str = "test"):
    """Run *generator* as a process to completion; return its value."""
    return sim.run(sim.process(generator, name=name))


def run_all(sim: Simulation, *generators):
    """Start all generators, run to quiescence, return process values."""
    processes = [sim.process(g) for g in generators]
    sim.run()
    return [p.value for p in processes]
