"""Unit tests for the CouchDB substrate."""

import pytest

from repro.db.couchdb import CouchDatabase, CouchServer, DbLatency
from repro.errors import DatabaseError, DocumentConflictError


@pytest.fixture
def db():
    return CouchDatabase("reminders")


class TestDocuments:
    def test_put_and_get(self, db):
        doc = db.put("r1", {"item": "dentist", "place": "downtown"})
        assert doc.rev == 1
        assert db.get("r1").body["item"] == "dentist"

    def test_update_needs_current_rev(self, db):
        db.put("r1", {"v": 1})
        doc = db.put("r1", {"v": 2}, rev=1)
        assert doc.rev == 2
        with pytest.raises(DocumentConflictError):
            db.put("r1", {"v": 3}, rev=1)  # stale

    def test_new_document_with_rev_rejected(self, db):
        with pytest.raises(DocumentConflictError):
            db.put("r1", {"v": 1}, rev=5)

    def test_get_missing_raises(self, db):
        with pytest.raises(DatabaseError):
            db.get("ghost")

    def test_delete_with_current_rev(self, db):
        db.put("r1", {"v": 1})
        db.delete("r1", rev=1)
        assert not db.contains("r1")

    def test_delete_with_stale_rev_raises(self, db):
        db.put("r1", {"v": 1})
        db.put("r1", {"v": 2}, rev=1)
        with pytest.raises(DocumentConflictError):
            db.delete("r1", rev=1)

    def test_put_copies_body(self, db):
        body = {"v": 1}
        db.put("r1", body)
        body["v"] = 99
        assert db.get("r1").body["v"] == 1

    def test_all_docs_sorted(self, db):
        for doc_id in ("c", "a", "b"):
            db.put(doc_id, {})
        assert [d.doc_id for d in db.all_docs()] == ["a", "b", "c"]
        assert len(db) == 3


class TestChangeFeed:
    def test_changes_are_sequenced(self, db):
        db.put("a", {})
        db.put("b", {})
        db.put("a", {}, rev=1)
        changes = db.changes_since(0)
        assert [c.seq for c in changes] == [1, 2, 3]
        assert changes[2].doc_id == "a"
        assert changes[2].rev == 2

    def test_changes_since_filters(self, db):
        db.put("a", {})
        db.put("b", {})
        assert [c.doc_id for c in db.changes_since(1)] == ["b"]
        assert db.last_seq == 2

    def test_delete_emits_deleted_change(self, db):
        db.put("a", {})
        db.delete("a", rev=1)
        assert db.changes_since(1)[0].deleted

    def test_listener_fires_on_every_write(self, db):
        """The Fig 8(b) trigger: analysis chain runs on db update."""
        seen = []
        db.subscribe(lambda database, change: seen.append(change.doc_id))
        db.put("w1", {"base": 7000})
        db.put("w2", {"base": 8000})
        assert seen == ["w1", "w2"]


class TestServer:
    def test_database_get_or_create(self):
        server = CouchServer()
        db1 = server.database("wages")
        db2 = server.database("wages")
        assert db1 is db2
        assert server.has_database("wages")
        assert server.database_names() == ("wages",)

    def test_latency_model(self):
        latency = DbLatency(get_ms=1.0, put_ms=2.0, per_kb_ms=0.1)
        assert latency.get_cost(10) == pytest.approx(2.0)
        assert latency.put_cost(10) == pytest.approx(3.0)
        assert latency.put_cost(0) > latency.get_cost(0)
