"""Warm-pool autoscaler engine tests, incl. the chaos-down regression.

Regression background: the autoscaler used to provision warm workers
onto hosts the chaos controller had marked down — the workers booted,
parked into a pool that was drained at crash time, and leaked.  The fix
is two-layered: built-in policies drop targets for down home hosts, and
the engine's :meth:`WarmPoolAutoscaler._ensure_warm` backstop refuses
down hosts no matter what the policy (or a stale ``on_warm_taken``
target read) asked for.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.autoscale.scaler import WarmPoolAutoscaler
from repro.bench.harness import fresh_cluster_platform, install_all
from repro.core.fireworks import FireworksPlatform
from repro.workloads.faasdom import faasdom_spec

FUNCTION = "scaler-fn"


def _specs(names):
    base = faasdom_spec("faas-netlatency", "nodejs")
    return [dataclasses.replace(base, name=name) for name in names]


def _predictive_platform(n_hosts=3):
    platform = fresh_cluster_platform(FireworksPlatform, n_hosts=n_hosts,
                                      capacity_per_host=4)
    install_all(platform, _specs([FUNCTION]))
    start = platform.sim.now
    scaler = WarmPoolAutoscaler(platform, mode="predictive",
                                until_ms=start + 20_000.0)
    # A steady 500 ms cadence: well inside the predictive horizon, past
    # the histogram warm-up, so the policy wants warm workers on the
    # function's home host every tick.
    for i in range(8):
        scaler.observe_arrival(FUNCTION, start + 500.0 * i)
    return platform, scaler, start


class TestChaosDownRegression:
    def test_no_provisioning_onto_a_down_home_host(self):
        platform, scaler, start = _predictive_platform()
        home = platform.cluster.home_host(FUNCTION)
        home.down = True
        platform.sim.run(until=start + 4_500.0)   # two control ticks
        assert scaler.ticks >= 2
        assert scaler.provisioned == 0
        assert all(host_id != home.host_id
                   for host_id, _fn in scaler.targets)

    def test_positive_control_provisions_once_host_is_back(self):
        # Same setup, host healthy again: the zero above must be the
        # down-flag, not a policy that never wanted workers.
        platform, scaler, start = _predictive_platform()
        home = platform.cluster.home_host(FUNCTION)
        home.down = True
        platform.sim.run(until=start + 4_500.0)
        assert scaler.provisioned == 0
        home.down = False
        for i in range(4):
            scaler.observe_arrival(FUNCTION,
                                   platform.sim.now + 500.0 * i)
        platform.sim.run(until=start + 9_000.0)
        assert scaler.provisioned > 0
        assert (home.host_id, FUNCTION) in scaler.targets

    def test_ensure_warm_backstop_refuses_down_hosts(self):
        # Even a direct (policy-bypassing) request must be a no-op on a
        # down host — this is the on_warm_taken stale-target path.
        platform, scaler, start = _predictive_platform()
        home = platform.cluster.home_host(FUNCTION)
        home.down = True
        scaler._ensure_warm(FUNCTION, home, 3, platform.sim.now)
        assert scaler.provisioned == 0
        assert scaler.pending_total() == 0
        assert (home.host_id, FUNCTION) not in scaler.targets


class TestScalerEngine:
    def test_none_policy_never_ticks(self):
        platform = fresh_cluster_platform(FireworksPlatform, n_hosts=2,
                                          capacity_per_host=4)
        install_all(platform, _specs([FUNCTION]))
        scaler = WarmPoolAutoscaler(platform, mode="none")
        platform.sim.run()
        assert scaler.ticks == 0
        assert scaler.provisioned == 0

    def test_active_policy_requires_until_ms(self):
        from repro.errors import PlatformError
        platform = fresh_cluster_platform(FireworksPlatform, n_hosts=2,
                                          capacity_per_host=4)
        install_all(platform, _specs([FUNCTION]))
        with pytest.raises(PlatformError, match="until_ms"):
            WarmPoolAutoscaler(platform, mode="reactive")

    def test_dsl_policy_reports_dsl_source(self):
        from repro.bench.search import autoscale_reactive_doc
        platform = fresh_cluster_platform(FireworksPlatform, n_hosts=2,
                                          capacity_per_host=4)
        install_all(platform, _specs([FUNCTION]))
        scaler = WarmPoolAutoscaler(
            platform, until_ms=platform.sim.now + 1_000.0,
            policy=autoscale_reactive_doc("dsl-step", 1.0))
        assert scaler.policy_source == "dsl"
        assert scaler.mode == "dsl-step"

    def test_builtin_policy_reports_builtin_source(self):
        platform = fresh_cluster_platform(FireworksPlatform, n_hosts=2,
                                          capacity_per_host=4)
        install_all(platform, _specs([FUNCTION]))
        scaler = WarmPoolAutoscaler(platform, mode="none")
        assert scaler.policy_source == "builtin"
        assert scaler.mode == "none"
