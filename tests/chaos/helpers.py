"""Shared scenario builders for the chaos suite.

Every scenario is fully seeded, so a test can run it twice and assert the
two runs are byte-identical (the chaos engine's headline guarantee).  The
crash-mid-flight scenarios use a *calibration run* — the same seeded
platform with no chaos attached — to read off exactly when the target
stage happens, then schedule the crash strictly inside that window.
"""

from repro.bench import fresh_cluster_platform, install_all, invoke_once
from repro.chaos import (KIND_HOST_CRASH, ChaosEvent, ChaosPlan,
                         HostFailureController)
from repro.core import FireworksPlatform
from repro.platforms.scheduler import POLICY_SNAPSHOT_LOCALITY
from repro.trace import render_tree
from repro.workloads import faasdom_spec

#: The one spec every scenario installs (its name carries the language).
SPEC = faasdom_spec("faas-netlatency", "nodejs")
FN = SPEC.name
SEED = 7


def build_fireworks(seed=SEED, n_hosts=2, policy=POLICY_SNAPSHOT_LOCALITY,
                    params=None, **kwargs):
    """A 2-host Fireworks cluster with one installed function."""
    platform = fresh_cluster_platform(FireworksPlatform, params, seed=seed,
                                      n_hosts=n_hosts, policy=policy,
                                      **kwargs)
    install_all(platform, [SPEC])
    return platform


def calibrate_stage_window(stage, seed=SEED, n_hosts=2,
                           policy=POLICY_SNAPSHOT_LOCALITY):
    """(submit_ms, stage_start_ms, stage_end_ms, host_id) for one clean
    invocation — the no-chaos timeline a crash can then be aimed into."""
    platform = build_fireworks(seed=seed, n_hosts=n_hosts, policy=policy)
    submit_ms = platform.sim.now
    record = invoke_once(platform, FN)
    span = record.span.find(stage)
    assert span is not None, f"calibration found no {stage!r} span"
    return submit_ms, span.start_ms, span.end_ms, record.host_id


def run_crash_during(stage, failover=True, seed=SEED,
                     policy=POLICY_SNAPSHOT_LOCALITY):
    """Crash the serving host midway through *stage* of one invocation.

    Returns ``(platform, controller, result)`` where *result* is the
    InvocationRecord on success or the InvocationFailedError raised.  The
    pre-crash timeline is identical to the calibration run (attaching a
    controller draws no randomness and adds no simulated time), so the
    crash lands exactly where the calibration says the stage is.
    """
    _, start_ms, end_ms, host_id = calibrate_stage_window(
        stage, seed=seed, policy=policy)
    crash_at = (start_ms + end_ms) / 2.0
    platform = build_fireworks(seed=seed, policy=policy)
    plan = ChaosPlan([ChaosEvent(crash_at, KIND_HOST_CRASH, host_id=host_id)])
    controller = HostFailureController(platform, plan, failover=failover)
    sim = platform.sim
    process = sim.process(platform.invoke(FN))
    try:
        result = sim.run(process)
    except Exception as error:  # InvocationFailedError, for callers to assert
        result = error
    sim.run()  # drain clone teardowns and chaos reclamation
    return platform, controller, result


def crash_all_hosts(platform):
    """Attach a controller whose plan kills every host right now."""
    now = platform.sim.now
    plan = ChaosPlan([ChaosEvent(now, KIND_HOST_CRASH, host_id=host.host_id)
                      for host in platform.cluster.hosts])
    controller = HostFailureController(platform, plan)
    platform.sim.run(until=now)  # zero-width step applies the crashes
    return controller


def scenario_fingerprint(platform, controller, result):
    """A byte-exact transcript of a chaos scenario, for two-run diffing."""
    lines = [f"retries={platform.retries} failovers={platform.failovers} "
             f"failed={len(platform.failed_invocations)}"]
    if hasattr(platform, "regenerations"):
        lines.append(f"regenerations={platform.regenerations}")
    for entry in controller.log:
        lines.append(f"{entry.at_ms!r} {entry.kind} host={entry.host_id} "
                     f"{entry.detail}")
    span = getattr(result, "span", None)
    if span is None and getattr(result, "failed", None) is not None:
        span = result.failed.span
    if span is not None:
        lines.append(render_tree(span))
    return "\n".join(lines)
