"""Two identically-seeded chaos runs are byte-identical — the property
that makes the chaos suite a regression suite rather than a flake
generator."""

import json

from repro.bench.chaos import run_chaos_experiment
from repro.bench.serialization import encode_result
from repro.chaos import ChaosPlan
from repro.platforms.scheduler import (POLICY_ROUND_ROBIN,
                                       POLICY_SNAPSHOT_LOCALITY)

#: A small-but-real configuration: 2 hosts, a handful of functions, the
#: crash a third of the way in.  Small enough to run twice in a test.
SMALL = dict(n_hosts=2, n_functions=6, duration_ms=180_000.0, seed=13,
             crash_at_ms=60_000.0)


class TestExperimentDeterminism:
    def test_two_runs_byte_identical(self):
        rows = ((POLICY_ROUND_ROBIN, False),
                (POLICY_SNAPSHOT_LOCALITY, True))
        transcripts = [
            json.dumps(encode_result(run_chaos_experiment(rows=rows,
                                                          **SMALL)),
                       sort_keys=True)
            for _ in range(2)]
        assert transcripts[0] == transcripts[1]

    def test_rows_do_not_contaminate_each_other(self):
        # An armed fault budget or injector state leaking from one row
        # into the next would make a row's outcome depend on which rows
        # ran before it (the bug FaultInjector.reset exists to prevent).
        label = f"{POLICY_SNAPSHOT_LOCALITY}+failover"
        alone = run_chaos_experiment(
            rows=((POLICY_SNAPSHOT_LOCALITY, True),), **SMALL)
        paired = run_chaos_experiment(
            rows=((POLICY_ROUND_ROBIN, False),
                  (POLICY_SNAPSHOT_LOCALITY, True)), **SMALL)
        assert alone[label] == paired[label]

    def test_acceptance_ordering_holds(self):
        outcomes = run_chaos_experiment(
            rows=((POLICY_ROUND_ROBIN, False),
                  (POLICY_SNAPSHOT_LOCALITY, True)), **SMALL)
        plain = outcomes[POLICY_ROUND_ROBIN]
        repaired = outcomes[f"{POLICY_SNAPSHOT_LOCALITY}+failover"]
        assert 0.0 < plain.availability <= 1.0
        assert repaired.availability >= plain.availability


class TestRandomPlanDeterminism:
    def test_same_seed_same_plan(self):
        plans = [ChaosPlan.random(seed=42, n_hosts=4, duration_ms=60_000.0)
                 for _ in range(2)]
        assert plans[0] == plans[1]

    def test_different_seeds_differ(self):
        assert ChaosPlan.random(3, n_hosts=4, duration_ms=60_000.0) != \
            ChaosPlan.random(4, n_hosts=4, duration_ms=60_000.0)
