"""The retry loop: bounded budget, exponential backoff, seeded jitter."""

import dataclasses

import pytest

from repro.config import default_parameters
from repro.errors import InvocationFailedError, NoHostAvailableError
from repro.trace import render_tree

from tests.chaos.helpers import FN, build_fireworks, crash_all_hosts


def _params_with_attempts(max_attempts):
    resolved = default_parameters()
    return dataclasses.replace(
        resolved, cluster=dataclasses.replace(
            resolved.cluster, retry_max_attempts=max_attempts))


def _exhaust(max_attempts=None, seed=7):
    """Kill every host, invoke once, and return (platform, failed)."""
    params = (None if max_attempts is None
              else _params_with_attempts(max_attempts))
    platform = build_fireworks(seed=seed, params=params)
    crash_all_hosts(platform)
    sim = platform.sim
    with pytest.raises(InvocationFailedError) as excinfo:
        sim.run(sim.process(platform.invoke(FN)))
    sim.run()
    return platform, excinfo.value.failed


class TestRetryBudget:
    def test_budget_exhaustion_surfaces_failed_invocation(self):
        platform, failed = _exhaust()
        assert failed.attempts == platform.params.cluster.retry_max_attempts
        assert failed is platform.failed_invocations[0]
        assert "all invokers at capacity" in failed.reason
        # Placement never chose a host: every attempt died before it.
        assert failed.hosts_tried == ()
        assert failed.latency_ms > 0.0
        assert platform.retries == failed.attempts - 1
        assert platform.records == []  # the failure was not billed as one

    def test_budget_is_configurable(self):
        _, failed = _exhaust(max_attempts=5)
        assert failed.attempts == 5
        assert len(failed.span.find_all("retry")) == 4

    def test_no_host_available_is_retryable(self):
        # The class contract the loop depends on.
        from repro.errors import PlatformError, RetryableChaosError
        assert issubclass(NoHostAvailableError, RetryableChaosError)
        assert issubclass(NoHostAvailableError, PlatformError)


class TestBackoff:
    def test_backoff_is_monotone_and_bounded(self):
        platform, failed = _exhaust(max_attempts=6)
        cfg = platform.params.cluster
        delays = [span.duration_ms
                  for span in failed.span.find_all("retry")]
        assert len(delays) == 5
        for earlier, later in zip(delays, delays[1:]):
            assert earlier < later
        low = cfg.retry_base_ms * (1.0 - cfg.retry_jitter_frac)
        high = cfg.retry_cap_ms * (1.0 + cfg.retry_jitter_frac)
        assert all(low <= delay <= high for delay in delays)
        # Jitter is real: delays are not the bare exponential ladder.
        bare = [min(cfg.retry_cap_ms,
                    cfg.retry_base_ms * cfg.retry_backoff_factor ** i)
                for i in range(5)]
        assert delays != bare

    def test_retry_spans_carry_attempt_and_error(self):
        _, failed = _exhaust()
        for index, span in enumerate(failed.span.find_all("retry"), start=1):
            assert span.kind == "retry"
            assert span.attrs["target"] == "invoke"
            assert span.attrs["attempt"] == index
            assert span.attrs["error"] == "NoHostAvailableError"

    def test_jitter_is_seed_deterministic(self):
        trees = []
        for _ in range(2):
            _, failed = _exhaust(max_attempts=6)
            trees.append(render_tree(failed.span))
        assert trees[0] == trees[1]

    def test_different_seeds_jitter_differently(self):
        _, failed_a = _exhaust(max_attempts=6, seed=7)
        _, failed_b = _exhaust(max_attempts=6, seed=8)
        delays = [[span.duration_ms for span in failed.span.find_all("retry")]
                  for failed in (failed_a, failed_b)]
        assert delays[0] != delays[1]
