"""Host-crash failover: retries land the request on a surviving host."""

from repro.bench import invoke_once
from repro.chaos import (KIND_HOST_CRASH, ChaosEvent, ChaosPlan,
                         HostFailureController)
from repro.errors import InvocationFailedError
from repro.trace import verify_invocation

from tests.chaos.helpers import (FN, build_fireworks, run_crash_during,
                                 scenario_fingerprint)


class TestCrashBetweenInvocations:
    """The simple case: the host dies while no request is in flight."""

    def _run(self):
        platform = build_fireworks()
        first = invoke_once(platform, FN)
        crashed = first.host_id
        now = platform.sim.now
        plan = ChaosPlan([ChaosEvent(now + 10.0, KIND_HOST_CRASH,
                                     host_id=crashed)])
        controller = HostFailureController(platform, plan)
        platform.sim.run(until=now + 20.0)
        second = invoke_once(platform, FN)
        platform.sim.run()
        return platform, controller, first, second

    def test_placement_moves_off_the_dead_host(self):
        platform, controller, first, second = self._run()
        assert second.host_id != first.host_id
        assert controller.hosts_down() == (first.host_id,)
        # Placement alone reroutes: no in-flight request, so no retries.
        assert platform.retries == 0
        assert platform.failovers == 0
        assert platform.failed_invocations == []

    def test_crashed_host_state_is_gone(self):
        platform, _, first, _ = self._run()
        crashed = platform.cluster.host(first.host_id)
        assert crashed.down
        assert not crashed.has_room
        assert crashed.store.contains(FN) is False
        assert crashed.pool.live_entries(platform.sim.now) == []

    def test_two_runs_identical(self):
        runs = []
        for _ in range(2):
            platform, controller, _, second = self._run()
            runs.append(scenario_fingerprint(platform, controller, second))
        assert runs[0] == runs[1]


class TestCrashDuringRestore:
    """The host dies mid-restore: the attempt is lost at the stage
    boundary, the retry fails over, and (with failover on) Fireworks
    regenerates the snapshot whose only replica died."""

    def test_failover_regenerates_on_surviving_host(self):
        platform, controller, record = run_crash_during("restore",
                                                        failover=True)
        crashed = controller.log[0].host_id
        assert record.host_id != crashed
        assert record.attempts == 2
        assert platform.retries == 1
        assert platform.failovers == 1
        assert platform.regenerations == 1
        # The record is a first-class success: spans verify like any other.
        verify_invocation(record)
        root = record.span
        failover = root.find("failover")
        assert failover is not None
        assert failover.attrs["from_host"] == crashed
        assert failover.duration_ms == 0.0
        retry = root.find("retry")
        assert retry.attrs["error"] == "HostDownError"
        assert root.find("regenerate") is not None

    def test_without_failover_the_function_is_unavailable(self):
        platform, controller, result = run_crash_during("restore",
                                                        failover=False)
        assert isinstance(result, InvocationFailedError)
        failed = result.failed
        assert failed is platform.failed_invocations[0]
        crashed = controller.log[0].host_id
        # The retry still reroutes, but the replica is simply gone.
        assert platform.failovers == 1
        assert platform.regenerations == 0
        assert crashed in failed.hosts_tried
        assert "snapshot" in failed.reason.lower()

    def test_two_runs_identical(self):
        runs = [scenario_fingerprint(*run_crash_during("restore"))
                for _ in range(2)]
        assert runs[0] == runs[1]


class TestCrashDuringExec:
    """At-most-once: a host that dies after the function ran must not be
    retried (the execution may have had effects)."""

    def test_execution_lost_is_not_retried(self):
        platform, controller, result = run_crash_during("exec")
        assert isinstance(result, InvocationFailedError)
        failed = result.failed
        assert failed.attempts == 1
        assert platform.retries == 0
        assert platform.failovers == 0
        assert "host" in failed.reason and "lost" in failed.reason
        del controller

    def test_two_runs_identical(self):
        runs = [scenario_fingerprint(*run_crash_during("exec"))
                for _ in range(2)]
        assert runs[0] == runs[1]
