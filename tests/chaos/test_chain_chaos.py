"""Chaos regression tests for the chain executor.

Two guarantees, each locked with a calibration run (the same seeded
platform with no chaos attached reads off exactly *when* the target
stage or trigger happens, then the fault is aimed into that window):

* a host crash mid-DAG fails the in-flight stage over to a surviving
  host without ever double-executing a completed stage — the at-most-once
  ledger stays all ones and retries live inside ``platform.invoke``;
* a partitioned message bus at change-feed firing time surfaces as a
  :class:`FailedInvocation` on the platform (the trigger segment fails,
  downstream stages abort) — never as a hang.
"""

import pytest

from repro.bench import fresh_cluster_platform
from repro.chaos import (KIND_BUS_PARTITION, KIND_HOST_CRASH, ChaosEvent,
                         ChaosPlan, HostFailureController)
from repro.core import FireworksPlatform
from repro.platforms import FirecrackerPlatform
from repro.platforms.chains import (MODE_GUEST, MODE_ORCHESTRATED,
                                    STATUS_ABORTED, STATUS_OK,
                                    ChainExecutor)
from repro.workloads import DagEdge, DagStage, data_analysis_dag, faasdom_spec
from repro.workloads.dag import make_dag

SEED = 7

_SPECS = [faasdom_spec("faas-fact", "nodejs"),
          faasdom_spec("faas-diskio", "nodejs"),
          faasdom_spec("faas-netlatency", "nodejs")]


def _pipeline_dag():
    """first -> mid -> last, orchestrated on every backend (no guest
    hops), with three distinct functions so stage windows are distinct."""
    stages = [DagStage("first", _SPECS[0].name),
              DagStage("mid", _SPECS[1].name),
              DagStage("last", _SPECS[2].name)]
    edges = [DagEdge("first", "mid"), DagEdge("mid", "last")]
    return make_dag("crash-pipeline", "first", stages, edges,
                    functions=_SPECS)


def _cluster(platform_cls, seed=SEED):
    return fresh_cluster_platform(platform_cls, seed=seed, n_hosts=2)


def _run_pipeline(platform):
    executor = ChainExecutor(platform)
    dag = _pipeline_dag()
    executor.install(dag)
    run = executor.run(dag, {})
    platform.sim.run()
    return executor, run


class TestCrashMidDag:
    def _crash_run(self, seed=SEED):
        # Calibration: when does the middle stage *restore*?  A crash
        # during startup is the retryable window — once the function has
        # executed, a crash is deliberately not retried
        # (ExecutionLostError: re-running would execute twice).
        _, clean = _run_pipeline(_cluster(FireworksPlatform, seed))
        mid = clean.stages["mid"]
        assert mid.status == STATUS_OK
        restore = mid.record.span.find("restore")
        assert restore is not None
        crash_at = (restore.start_ms + restore.end_ms) / 2.0
        # Same seed, same timeline, crash aimed mid-stage.
        platform = _cluster(FireworksPlatform, seed)
        plan = ChaosPlan([ChaosEvent(crash_at, KIND_HOST_CRASH,
                                     host_id=mid.host_id)])
        controller = HostFailureController(platform, plan, failover=True)
        executor, run = _run_pipeline(platform)
        return clean, platform, controller, run

    def test_failover_without_double_execution(self):
        clean, platform, controller, run = self._crash_run()
        assert run.mode == MODE_ORCHESTRATED
        assert run.status == "ok"
        # The crashed attempt retried and landed on the surviving host.
        crashed = controller.log[0].host_id
        mid = run.stages["mid"]
        assert mid.host_id != crashed
        assert mid.attempts == 2
        assert platform.retries == 1
        assert platform.failovers == 1
        # At-most-once: the ledger never exceeds one dispatch per stage,
        # and the completed first stage has exactly one record.
        assert run.ledger == {"first": 1, "mid": 1, "last": 1}
        for spec in _SPECS:
            records = [r for r in platform.records
                       if r.function == spec.name]
            assert len(records) == 1
        # Retries live inside platform.invoke: the DAG saw one dispatch.
        assert run.stages["first"].end_ms <= mid.start_ms
        assert mid.end_ms > clean.stages["mid"].end_ms

    def test_two_crash_runs_identical(self):
        fingerprints = []
        for _ in range(2):
            _, platform, controller, run = self._crash_run()
            fingerprints.append((
                run.ledger,
                [(r.stage, r.start_ms, r.end_ms, r.host_id, r.attempts)
                 for r in run.executed()],
                platform.retries, platform.failovers,
                [(e.at_ms, e.kind, e.host_id) for e in controller.log]))
        assert fingerprints[0] == fingerprints[1]


class TestPartitionedTrigger:
    def _partition_run(self, platform_cls, seed=SEED):
        # Calibration: when does the change feed fire the analyze stage?
        platform = _cluster(platform_cls, seed)
        executor = ChainExecutor(platform)
        dag = data_analysis_dag()
        executor.install(dag)
        clean = executor.run(dag, {})
        platform.sim.run()
        fired = [r for r in platform.records if r.function == "da-analyze"]
        assert len(fired) == 1
        fire_ms = fired[0].submitted_ms
        # Same seed; the bus is unreachable for the whole retry horizon.
        platform = _cluster(platform_cls, seed)
        plan = ChaosPlan([ChaosEvent(max(0.0, fire_ms - 0.5),
                                     KIND_BUS_PARTITION,
                                     duration_ms=600_000.0)])
        HostFailureController(platform, plan)
        executor = ChainExecutor(platform)
        executor.install(dag)
        run = executor.run(dag, {})
        platform.sim.run()  # must drain: a hang here fails the test
        return clean, platform, executor, run

    @pytest.mark.parametrize("platform_cls,mode", [
        (FireworksPlatform, MODE_GUEST),
        (FirecrackerPlatform, MODE_ORCHESTRATED),
    ], ids=["fireworks-guest", "firecracker-orchestrated"])
    def test_partition_surfaces_as_failed_invocation(self, platform_cls,
                                                     mode):
        clean, platform, executor, run = self._partition_run(platform_cls)
        assert run.mode == mode
        # The executor-driven part of the DAG is untouched...
        assert run.status == "ok"
        # ...the firing failed loudly on the platform: a first-class
        # FailedInvocation after the full retry budget, not a hang.
        failed = [f for f in platform.failed_invocations
                  if f.function == "da-analyze"]
        assert len(failed) == 1
        assert failed[0].attempts == \
            platform.params.cluster.retry_max_attempts
        assert "bus unreachable" in failed[0].reason
        assert not any(r.function == "da-analyze"
                       for r in platform.records)
        if mode == MODE_ORCHESTRATED:
            # The trigger segment recorded the failure and aborted its
            # downstream stage — and never re-dispatched anything.
            [segment] = executor.trigger_runs
            assert segment.failed
            assert segment.ledger == {"analyze": 1}
            assert segment.stages["stats"].status == STATUS_ABORTED

    def test_two_partition_runs_identical(self):
        fingerprints = []
        for _ in range(2):
            _, platform, _, _ = self._partition_run(FirecrackerPlatform)
            fingerprints.append((
                platform.sim.now, platform.retries,
                [(f.function, f.attempts, f.failed_ms)
                 for f in platform.failed_invocations]))
        assert fingerprints[0] == fingerprints[1]
