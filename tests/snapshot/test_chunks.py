"""Unit tests for the chunk-granular image view (lazy loading)."""

import pytest

from repro.errors import ValidationError
from repro.snapshot.chunks import ChunkMap


class TestShape:
    def test_exact_multiple(self):
        cmap = ChunkMap(10.0, 2.0)
        assert cmap.n_chunks == 5
        assert [cmap.chunk_mb(i) for i in range(5)] == [2.0] * 5

    def test_partial_tail_chunk(self):
        cmap = ChunkMap(9.0, 2.0)
        assert cmap.n_chunks == 5
        assert cmap.chunk_mb(4) == pytest.approx(1.0)

    def test_single_chunk_image(self):
        cmap = ChunkMap(0.5, 2.0)
        assert cmap.n_chunks == 1
        assert cmap.chunk_mb(0) == pytest.approx(0.5)

    def test_sizes_ledger_to_image_size(self):
        cmap = ChunkMap(170.0, 2.0)
        assert cmap.bytes_mb(cmap.all_chunks()) == pytest.approx(170.0)

    def test_bad_inputs_raise(self):
        with pytest.raises(ValidationError):
            ChunkMap(0.0, 2.0)
        with pytest.raises(ValidationError):
            ChunkMap(10.0, 0.0)
        with pytest.raises(ValidationError):
            ChunkMap(10.0, 2.0).chunk_mb(5)


class TestSpread:
    def test_zero_want_is_empty(self):
        assert ChunkMap(10.0, 2.0).spread(0.0) == ()

    def test_whole_image_is_all_chunks(self):
        cmap = ChunkMap(10.0, 2.0)
        assert cmap.spread(10.0) == cmap.all_chunks()
        assert cmap.spread(99.0) == cmap.all_chunks()

    def test_covers_at_least_want(self):
        cmap = ChunkMap(170.0, 2.0)
        for want in (1.0, 25.5, 77.4, 120.0, 169.9):
            chunks = cmap.spread(want)
            assert cmap.bytes_mb(chunks) >= want

    def test_indices_strictly_increasing_and_in_range(self):
        cmap = ChunkMap(170.0, 2.0)
        chunks = cmap.spread(25.5)
        assert list(chunks) == sorted(set(chunks))
        assert all(0 <= i < cmap.n_chunks for i in chunks)

    def test_spread_is_spread_not_a_prefix(self):
        # The working set is scattered across the image: the selected
        # chunks must span the index space, not hug the front.
        cmap = ChunkMap(170.0, 2.0)
        chunks = cmap.spread(25.5)
        assert chunks[-1] > cmap.n_chunks // 2

    def test_deterministic(self):
        a = ChunkMap(172.0, 2.0).spread(77.4)
        b = ChunkMap(172.0, 2.0).spread(77.4)
        assert a == b
