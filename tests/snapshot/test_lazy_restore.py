"""Unit tests for the lazy restore policy (chunk prefetch + demand faults)."""

import pytest

from repro.bench import fresh_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.snapshot.restorer import POLICY_LAZY, POLICY_REAP
from repro.workloads import faasdom_spec


@pytest.fixture
def lazy_platform():
    platform = fresh_platform(FireworksPlatform, restore_policy=POLICY_LAZY)
    spec = faasdom_spec("faas-fact", "nodejs")
    install_all(platform, [spec])
    return platform, spec


def _restorer(platform):
    return platform.manager_for(platform.cluster.hosts[0]).restorer


class TestColdLazy:
    def test_first_restore_demand_faults_everything(self, lazy_platform):
        platform, spec = lazy_platform
        record = invoke_once(platform, spec.name)
        restore = record.span.find("restore")
        assert restore.find("prefetch") is None
        fault = restore.find("demand-fault")
        assert fault is not None
        assert fault.attrs["mb"] > 0
        assert fault.attrs["faults"] >= 1
        assert restore.attrs["prefetched_mb"] == 0.0
        assert restore.attrs["bytes_moved_mb"] == fault.attrs["mb"]

    def test_cold_lazy_counters(self, lazy_platform):
        platform, spec = lazy_platform
        invoke_once(platform, spec.name)
        restorer = _restorer(platform)
        assert restorer.lazy_restores == 1
        assert restorer.bytes_prefetched_mb == 0.0
        assert restorer.bytes_demand_faulted_mb > 0.0
        assert restorer.demand_faults >= 1


class TestWarmLazy:
    def test_second_restore_prefetches_recorded_chunks(self, lazy_platform):
        platform, spec = lazy_platform
        invoke_once(platform, spec.name)
        record = invoke_once(platform, spec.name)
        restore = record.span.find("restore")
        prefetch = restore.find("prefetch")
        assert prefetch is not None
        assert prefetch.attrs["mb"] > 0
        assert prefetch.attrs["chunks"] >= 1
        image = platform.image_for(spec.name)
        # Far fewer bytes than a whole-image prefetch would move.
        assert restore.attrs["bytes_moved_mb"] < image.size_mb / 2

    def test_warm_lazy_faster_than_cold(self, lazy_platform):
        platform, spec = lazy_platform
        first = invoke_once(platform, spec.name)
        second = invoke_once(platform, spec.name)
        assert second.startup_ms < first.startup_ms

    def test_warm_lazy_beats_whole_image_prefetch_latency(self,
                                                          lazy_platform):
        platform, spec = lazy_platform
        invoke_once(platform, spec.name)
        warm = invoke_once(platform, spec.name)
        restorer = _restorer(platform)
        image = platform.image_for(spec.name)
        # The acceptance headline: the profile-guided lazy restore is at
        # least as fast as REAP's no-profile whole-image prefetch while
        # moving a fraction of the bytes.
        platform.recorder.invalidate(image.key)
        whole_image_ms = restorer.restore_ms(image, POLICY_REAP)
        assert warm.span.find("restore").duration_ms <= whole_image_ms

    def test_ledger_exact(self, lazy_platform):
        platform, spec = lazy_platform
        invoke_once(platform, spec.name)
        restorer = _restorer(platform)
        plan = restorer.lazy_plan(platform.image_for(spec.name))
        assert plan.covered_mb + plan.faulted_mb == plan.touched_mb
        assert plan.prefetch_mb >= plan.covered_mb
        assert plan.bytes_moved_mb == plan.prefetch_mb + plan.faulted_mb

    def test_spans_sum_to_restore_duration(self, lazy_platform):
        platform, spec = lazy_platform
        invoke_once(platform, spec.name)
        record = invoke_once(platform, spec.name)
        restore = record.span.find("restore")
        children_ms = sum(
            child.duration_ms for child in restore.children
            if child.name in ("prefetch", "demand-fault"))
        base_ms = platform.params.snapshot.restore_base_ms
        assert base_ms + children_ms == pytest.approx(restore.duration_ms)


class TestGenerationBump:
    def test_regeneration_falls_back_to_demand_faulting(self, lazy_platform):
        platform, spec = lazy_platform
        invoke_once(platform, spec.name)
        sim = platform.sim
        new_image = sim.run(sim.process(
            platform.regenerate_snapshot(spec.name)))
        assert platform.recorder.profile_for(new_image) is None
        record = invoke_once(platform, spec.name)
        restore = record.span.find("restore")
        assert restore.find("prefetch") is None
        assert restore.find("demand-fault") is not None
        # ... and the new generation's profile is recorded for next time.
        assert platform.recorder.profile_for(new_image) is not None
