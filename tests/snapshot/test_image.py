"""Unit tests for snapshot images."""

import pytest

from repro.errors import SnapshotNotFoundError
from repro.net.address import IpAddress, MacAddress
from repro.snapshot.image import (STAGE_OS, STAGE_POST_JIT, SnapshotImage)

GUEST_IP = IpAddress.parse("10.0.0.2")
GUEST_MAC = MacAddress(0x02F17E000001)


def _image(stage=STAGE_POST_JIT, regions=None):
    return SnapshotImage(
        key="fn", language="nodejs", stage=stage,
        regions_mb=regions or {"kernel": 60, "runtime": 55, "app": 25,
                               "heap": 20, "jit_code": 10},
        guest_ip=GUEST_IP, guest_mac=GUEST_MAC)


class TestImage:
    def test_size_is_region_sum(self):
        assert _image().size_mb == pytest.approx(170)

    def test_invalid_stage_raises(self):
        with pytest.raises(SnapshotNotFoundError):
            _image(stage="mid-air")

    def test_materialize_pins_page_cache(self, host):
        image = _image()
        segments = image.materialize(host)
        assert set(segments) == {"kernel", "runtime", "app", "heap",
                                 "jit_code"}
        assert host.used_mb == pytest.approx(170)
        assert image.materialized

    def test_materialize_idempotent(self, host):
        image = _image()
        first = image.materialize(host)
        second = image.materialize(host)
        assert first == second
        assert host.used_mb == pytest.approx(170)

    def test_eviction_releases_page_cache(self, host):
        image = _image()
        image.materialize(host)
        image.on_evicted()
        assert host.used_mb == 0
        assert not image.materialized

    def test_eviction_with_live_mappers_keeps_copies(self, host):
        image = _image()
        segments = image.materialize(host)
        mapper = segments["kernel"].attach()
        image.on_evicted()
        # kernel segment still has a mapper -> stays resident; others drop.
        assert host.used_mb == pytest.approx(60)
        segments["kernel"].detach(mapper)
        assert host.used_mb == 0


class TestRegeneration:
    def test_clone_bumps_generation(self):
        image = _image()
        regenerated = image.clone_for_regeneration()
        assert regenerated.generation == 2
        assert regenerated.key == image.key
        assert regenerated.size_mb == image.size_mb

    def test_clone_has_independent_jit_state(self, host):
        from repro.runtime.jit import FunctionJitState
        image = _image()
        image.jit_state["main"] = FunctionJitState("main")
        regenerated = image.clone_for_regeneration()
        regenerated.jit_state["main"].hotness_units = 999
        assert image.jit_state["main"].hotness_units == 0

    def test_clone_segments_are_fresh(self, host):
        image = _image()
        image.materialize(host)
        regenerated = image.clone_for_regeneration()
        new_segments = regenerated.materialize(host)
        old_segments = image.materialize(host)
        assert new_segments["kernel"] is not old_segments["kernel"]
