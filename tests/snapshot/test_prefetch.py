"""Unit tests for REAP working-set recording."""

import pytest

from repro.bench import fresh_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.errors import SnapshotNotFoundError, StateError
from repro.snapshot.prefetch import ReapRecorder
from repro.snapshot.restorer import POLICY_DEMAND, POLICY_REAP
from repro.workloads import faasdom_spec


@pytest.fixture
def reap_platform():
    platform = fresh_platform(FireworksPlatform,
                              restore_policy=POLICY_REAP)
    spec = faasdom_spec("faas-fact", "nodejs")
    install_all(platform, [spec])
    return platform, spec


class TestRecording:
    def test_profile_recorded_after_invocation(self, reap_platform):
        platform, spec = reap_platform
        assert len(platform.recorder) == 0
        invoke_once(platform, spec.name)
        assert len(platform.recorder) == 1
        profile = platform.recorder.profile_for(
            platform.image_for(spec.name))
        assert profile is not None
        assert profile.working_set_mb > 0

    def test_second_restore_prefetches_less(self, reap_platform):
        platform, spec = reap_platform
        first = invoke_once(platform, spec.name)
        second = invoke_once(platform, spec.name)
        assert second.startup_ms < first.startup_ms

    def test_recorded_ws_smaller_than_image(self, reap_platform):
        platform, spec = reap_platform
        invoke_once(platform, spec.name)
        image = platform.image_for(spec.name)
        profile = platform.recorder.profile_for(image)
        assert profile.working_set_mb < image.size_mb / 2

    def test_regeneration_invalidates_profile(self, reap_platform):
        """§6 ASLR regeneration changes the page layout: a stale profile
        must not be used for the new generation."""
        platform, spec = reap_platform
        invoke_once(platform, spec.name)
        sim = platform.sim
        new_image = sim.run(sim.process(
            platform.regenerate_snapshot(spec.name)))
        assert platform.recorder.profile_for(new_image) is None
        # The next invocation falls back to full prefetch, then re-records.
        record = invoke_once(platform, spec.name)
        assert record.mode == "snapshot"
        assert platform.recorder.profile_for(new_image) is not None

    def test_record_before_invocation_raises(self, reap_platform):
        platform, spec = reap_platform
        platform.retain_workers = True
        record = invoke_once(platform, spec.name)
        fresh = ReapRecorder()
        worker = record.worker
        worker.invocations = 0
        # "No invocation ran yet" is a state error, not a store miss.
        with pytest.raises(StateError):
            fresh.record(platform.image_for(spec.name), worker, 0.0)

    def test_invalidate(self, reap_platform):
        platform, spec = reap_platform
        invoke_once(platform, spec.name)
        platform.recorder.invalidate(spec.name)
        assert platform.recorder.profile_for(
            platform.image_for(spec.name)) is None


class TestPolicyInteraction:
    def test_demand_policy_ignores_profiles(self):
        platform = fresh_platform(FireworksPlatform,
                                  restore_policy=POLICY_DEMAND)
        spec = faasdom_spec("faas-fact", "nodejs")
        install_all(platform, [spec])
        first = invoke_once(platform, spec.name)
        second = invoke_once(platform, spec.name)
        assert second.startup_ms == pytest.approx(first.startup_ms)
