"""Unit tests for snapshot creation."""

import pytest

from repro.errors import SandboxError, SnapshotNotFoundError
from repro.net.address import IpAddress, MacAddress
from repro.runtime import make_runtime
from repro.runtime.interpreter import AppCode, GuestFunction
from repro.sandbox.container import Container
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.snapshot.image import STAGE_OS, STAGE_POST_JIT, STAGE_POST_LOAD
from repro.snapshot.snapshotter import Snapshotter
from tests.helpers import run

GUEST_IP = IpAddress.parse("10.0.0.2")
GUEST_MAC = MacAddress(0x02F17E000001)


@pytest.fixture
def app():
    return AppCode(name="app", language="nodejs",
                   guest_functions=(GuestFunction("main", 500.0, 3.0),))


@pytest.fixture
def snapshotter(sim, params):
    return Snapshotter(sim, params.snapshot)


def _installed_worker(sim, params, host, app):
    vm = MicroVM(sim, params, host, "nodejs")
    vm.assign_guest_addresses(GUEST_IP, GUEST_MAC)
    worker = Worker(sim, vm, make_runtime(sim, params, "nodejs"))
    run(sim, worker.cold_start(app))
    return worker


class TestCreate:
    def test_post_jit_snapshot_contents(self, sim, params, host, app,
                                        snapshotter):
        worker = _installed_worker(sim, params, host, app)
        run(sim, worker.force_jit())
        image = run(sim, snapshotter.create(worker, "fn", STAGE_POST_JIT))
        assert image.stage == STAGE_POST_JIT
        assert set(image.regions_mb) == {"kernel", "runtime", "app",
                                         "heap", "jit_code"}
        assert image.guest_ip == GUEST_IP
        assert image.jit_state["main"].tier == "optimized"
        assert image.app is app

    def test_creation_time_scales_with_size(self, sim, params, host, app,
                                            snapshotter):
        worker = _installed_worker(sim, params, host, app)
        run(sim, worker.force_jit())
        before = sim.now
        image = run(sim, snapshotter.create(worker, "fn", STAGE_POST_JIT))
        elapsed = sim.now - before
        cfg = params.snapshot
        assert elapsed == pytest.approx(
            cfg.create_base_ms + image.size_mb * cfg.create_per_mb_ms)

    def test_paper_creation_time_band(self, sim, params, host, app,
                                      snapshotter):
        """§5.1: making a snapshot takes 0.36-0.47 s."""
        worker = _installed_worker(sim, params, host, app)
        run(sim, worker.force_jit())
        before = sim.now
        run(sim, snapshotter.create(worker, "fn", STAGE_POST_JIT))
        assert 360 <= sim.now - before <= 470

    def test_post_jit_without_jit_raises(self, sim, params, host, app,
                                         snapshotter):
        worker = _installed_worker(sim, params, host, app)
        with pytest.raises(SnapshotNotFoundError, match="post-JIT"):
            run(sim, snapshotter.create(worker, "fn", STAGE_POST_JIT))

    def test_post_load_allows_unjitted(self, sim, params, host, app,
                                       snapshotter):
        worker = _installed_worker(sim, params, host, app)
        image = run(sim, snapshotter.create(worker, "fn", STAGE_POST_LOAD))
        assert image.stage == STAGE_POST_LOAD
        assert "jit_code" not in image.regions_mb

    def test_os_stage_has_no_app(self, sim, params, host, snapshotter):
        vm = MicroVM(sim, params, host, "nodejs")
        vm.assign_guest_addresses(GUEST_IP, GUEST_MAC)
        worker = Worker(sim, vm, make_runtime(sim, params, "nodejs"))
        run(sim, vm.boot())
        run(sim, worker.runtime.launch())
        vm.map_runtime_memory()
        image = run(sim, snapshotter.create(worker, "fn", STAGE_OS))
        assert image.app is None
        assert image.jit_state == {}
        assert set(image.regions_mb) == {"kernel", "runtime"}

    def test_container_snapshot_rejected(self, sim, params, host, app,
                                         snapshotter):
        container = Container(sim, params, host, "nodejs")
        worker = Worker(sim, container, make_runtime(sim, params, "nodejs"))
        run(sim, worker.cold_start(app))
        with pytest.raises(SandboxError, match="non-VM"):
            run(sim, snapshotter.create(worker, "fn", STAGE_POST_LOAD))

    def test_snapshot_without_network_identity_raises(self, sim, params,
                                                      host, app,
                                                      snapshotter):
        vm = MicroVM(sim, params, host, "nodejs")
        worker = Worker(sim, vm, make_runtime(sim, params, "nodejs"))
        run(sim, worker.cold_start(app))
        with pytest.raises(SandboxError, match="network"):
            run(sim, snapshotter.create(worker, "fn", STAGE_POST_LOAD))

    def test_snapshot_of_stopped_vm_raises(self, sim, params, host, app,
                                           snapshotter):
        worker = _installed_worker(sim, params, host, app)
        run(sim, worker.stop())
        with pytest.raises(SandboxError):
            run(sim, snapshotter.create(worker, "fn", STAGE_POST_LOAD))
