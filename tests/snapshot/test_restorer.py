"""Unit tests for snapshot restore: CoW sharing and the restore policies."""

import pytest

from repro.errors import SnapshotNotFoundError, ValidationError
from repro.net.address import IpAddress, MacAddress
from repro.runtime import make_runtime
from repro.runtime.interpreter import AppCode, GuestFunction
from repro.runtime.ops import Compute, program
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.snapshot.image import STAGE_OS, STAGE_POST_JIT
from repro.snapshot.restorer import (POLICY_DEMAND, POLICY_DEMAND_COLD,
                                     POLICY_REAP, Restorer)
from repro.snapshot.snapshotter import Snapshotter
from tests.helpers import run

GUEST_IP = IpAddress.parse("10.0.0.2")
GUEST_MAC = MacAddress(0x02F17E000001)


@pytest.fixture
def app():
    return AppCode(name="app", language="nodejs",
                   guest_functions=(GuestFunction("main", 500.0, 3.0),))


@pytest.fixture
def image(sim, params, host, app):
    vm = MicroVM(sim, params, host, "nodejs")
    vm.assign_guest_addresses(GUEST_IP, GUEST_MAC)
    worker = Worker(sim, vm, make_runtime(sim, params, "nodejs"))
    run(sim, worker.cold_start(app))
    run(sim, worker.force_jit())
    snapshotter = Snapshotter(sim, params.snapshot)
    img = run(sim, snapshotter.create(worker, "fn", STAGE_POST_JIT))
    run(sim, worker.stop())
    return img


@pytest.fixture
def restorer(sim, params, host):
    return Restorer(sim, params, host)


class TestRestore:
    def test_restored_worker_is_ready(self, sim, image, restorer):
        worker = run(sim, restorer.restore(image))
        assert worker.sandbox.state == "running"
        assert worker.sandbox.restored_from_snapshot
        assert worker.runtime.state == worker.runtime.STATE_LOADED
        assert worker.runtime.jit.optimized_functions() == ("main",)
        assert worker.app is image.app

    def test_clone_inherits_snapshot_identity(self, sim, image, restorer):
        worker = run(sim, restorer.restore(image))
        assert worker.sandbox.guest_ip == GUEST_IP
        assert worker.sandbox.guest_mac == GUEST_MAC

    def test_restore_is_fast(self, sim, image, restorer):
        """§3.4: invoking is nothing but loading the snapshot into memory —
        orders of magnitude below a 2.2 s cold boot."""
        before = sim.now
        run(sim, restorer.restore(image))
        assert sim.now - before < 50

    def test_restored_worker_executes_jitted(self, sim, image, restorer):
        worker = run(sim, restorer.restore(image))
        breakdown = run(sim, worker.invoke(program(Compute(5400))))
        assert breakdown.jit_compile_ms == 0
        assert breakdown.compute_ms == pytest.approx(100)  # 5400/(18*3)

    def test_clones_share_memory(self, sim, host, image, restorer):
        # The first restore faults the image into the page cache once.
        image.materialize(host)
        used_before = host.used_mb
        workers = [run(sim, restorer.restore(image)) for _ in range(5)]
        vmm = workers[0].sandbox.layout.vmm_overhead_mb
        # Additional host memory is ~5 VMM overheads, not 5 full guests.
        assert host.used_mb - used_before == pytest.approx(5 * vmm)
        pss = workers[0].pss_mb()
        assert pss < image.size_mb / 2  # shared across 5 + page cache

    def test_runtime_state_isolated_between_clones(self, sim, image,
                                                   restorer):
        first = run(sim, restorer.restore(image))
        second = run(sim, restorer.restore(image))
        run(sim, first.invoke(program(
            Compute(100, arg_shape=("int",)))))
        assert first.runtime.jit.state("main").deopt_count == 1
        assert second.runtime.jit.state("main").deopt_count == 0

    def test_os_stage_restore_needs_app_load(self, sim, params, host,
                                             restorer):
        vm = MicroVM(sim, params, host, "nodejs")
        vm.assign_guest_addresses(GUEST_IP, GUEST_MAC)
        worker = Worker(sim, vm, make_runtime(sim, params, "nodejs"))
        run(sim, vm.boot())
        run(sim, worker.runtime.launch())
        vm.map_runtime_memory()
        snapshotter = Snapshotter(sim, params.snapshot)
        os_image = run(sim, snapshotter.create(worker, "fn", STAGE_OS))

        clone = run(sim, restorer.restore(os_image))
        assert clone.runtime.state == clone.runtime.STATE_LAUNCHED
        assert clone.app is None

        app = AppCode(name="late", language="nodejs")
        run(sim, clone.load_app_only(app))
        assert clone.app is app
        assert clone.sandbox.space.has_region("heap")


class TestPolicies:
    def test_unknown_policy_raises(self, image, restorer):
        # An unknown policy name is a usage error, not a store miss.
        with pytest.raises(ValidationError):
            restorer.restore_ms(image, policy="yolo")

    def test_unknown_policy_is_not_a_store_miss(self, image, restorer):
        with pytest.raises(ValidationError) as err:
            restorer.restore_ms(image, policy="yolo")
        assert not isinstance(err.value, SnapshotNotFoundError)

    def test_cold_cache_slower_than_warm(self, image, restorer):
        warm = restorer.restore_ms(image, POLICY_DEMAND)
        cold = restorer.restore_ms(image, POLICY_DEMAND_COLD)
        assert cold > 2 * warm

    def test_reap_beats_cold_demand_paging(self, image, restorer):
        """REAP's claim [54]: prefetching beats faulting from disk."""
        cold = restorer.restore_ms(image, POLICY_DEMAND_COLD)
        reap = restorer.restore_ms(image, POLICY_REAP)
        assert reap < cold

    def test_python_working_set_larger(self, sim, params, host, restorer):
        """Numba's duplicated code inflates the restore working set."""
        node_layout = params.memory_layout("nodejs")
        python_layout = params.memory_layout("python")
        assert python_layout.snapshot_working_set_mb_fraction > \
            node_layout.snapshot_working_set_mb_fraction
