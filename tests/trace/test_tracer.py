"""Unit tests for the tracer: span lifecycle, context, per-process stacks."""

import pytest

from repro.errors import TraceError
from repro.sim import Simulation
from repro.trace import Tracer
from tests.helpers import run


@pytest.fixture
def sim():
    return Simulation()


class TestSpanLifecycle:
    def test_span_times_on_the_des_clock(self, sim):
        def body():
            with sim.tracer.span("work") as span:
                yield sim.timeout(12.5)
            return span

        span = run(sim, body())
        assert span.start_ms == 0.0
        assert span.end_ms == 12.5
        assert span.duration_ms == 12.5
        assert span.closed

    def test_nesting_builds_a_tree(self, sim):
        def body():
            with sim.tracer.span("outer") as outer:
                yield sim.timeout(1.0)
                with sim.tracer.span("inner"):
                    yield sim.timeout(2.0)
                yield sim.timeout(3.0)
            return outer

        outer = run(sim, body())
        assert [c.name for c in outer.children] == ["inner"]
        inner = outer.children[0]
        assert inner.parent is outer
        assert inner.start_ms == 1.0 and inner.end_ms == 3.0
        assert outer.duration_ms == 6.0

    def test_children_inherit_root_trace_id(self, sim):
        def body():
            with sim.tracer.span("root", trace_id="inv-42"):
                with sim.tracer.span("child", trace_id="ignored"):
                    yield sim.timeout(1.0)

        run(sim, body())
        root = sim.tracer.trace("inv-42")
        assert root.children[0].trace_id == "inv-42"

    def test_roots_get_auto_ids(self, sim):
        def body():
            with sim.tracer.span("a"):
                yield sim.timeout(1.0)
            with sim.tracer.span("b"):
                yield sim.timeout(1.0)

        run(sim, body())
        assert [r.trace_id for r in sim.tracer.traces()] == \
            ["trace-1", "trace-2"]

    def test_exception_closes_span_and_tags_error(self, sim):
        def body():
            with sim.tracer.span("doomed"):
                yield sim.timeout(1.0)
                raise ValueError("boom")

        with pytest.raises(ValueError):
            run(sim, body())
        (span,) = sim.tracer.traces()
        assert span.closed
        assert span.attrs["error"] == "ValueError"

    def test_closing_non_innermost_raises(self, sim):
        tracer = sim.tracer
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(TraceError):
            tracer._finish(outer)

    def test_current_tracks_innermost(self, sim):
        tracer = sim.tracer
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None


class TestProcessIsolation:
    def test_interleaved_processes_keep_separate_trees(self, sim):
        def worker(name, delay):
            with sim.tracer.span(name):
                yield sim.timeout(delay)
                with sim.tracer.span(f"{name}-inner"):
                    yield sim.timeout(delay)

        sim.process(worker("a", 3.0))
        sim.process(worker("b", 5.0))
        sim.run()
        by_name = {root.name: root for root in sim.tracer.traces()}
        assert set(by_name) == {"a", "b"}
        assert [c.name for c in by_name["a"].children] == ["a-inner"]
        assert [c.name for c in by_name["b"].children] == ["b-inner"]

    def test_spawned_process_starts_a_new_root(self, sim):
        def background():
            with sim.tracer.span("background"):
                yield sim.timeout(1.0)

        def foreground():
            with sim.tracer.span("foreground"):
                sim.process(background())
                yield sim.timeout(5.0)

        run(sim, foreground())
        sim.run()
        roots = {root.name for root in sim.tracer.traces()}
        assert roots == {"foreground", "background"}


class TestRetrospectiveSpans:
    def test_add_span_attaches_closed(self, sim):
        def body():
            with sim.tracer.span("op") as op:
                yield sim.timeout(10.0)
                sim.tracer.add_span("compile", 2.0, 6.0, function="f")
            return op

        op = run(sim, body())
        (compile_span,) = op.children
        assert compile_span.closed
        assert compile_span.duration_ms == 4.0
        assert compile_span.attrs == {"function": "f"}

    def test_add_span_rejects_negative_duration(self, sim):
        with pytest.raises(TraceError):
            sim.tracer.add_span("bad", 5.0, 4.0)


class TestQueries:
    def test_trace_lookup_and_clear(self, sim):
        def body():
            with sim.tracer.span("root", trace_id="t1"):
                yield sim.timeout(1.0)

        run(sim, body())
        assert sim.tracer.trace("t1").name == "root"
        with pytest.raises(KeyError):
            sim.tracer.trace("missing")
        sim.tracer.clear()
        assert sim.tracer.traces() == ()

    def test_standalone_tracer_default_stack(self, sim):
        tracer = Tracer(sim)
        with tracer.span("outside-any-process") as span:
            pass
        assert span.closed
        assert tracer.traces() == (span,)
