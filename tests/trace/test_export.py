"""Exporter tests: Chrome ``trace_event`` JSON and the text tree."""

import json

import pytest

from repro.sim import Simulation
from repro.trace import (chrome_trace_events, render_tree, to_chrome_trace,
                         write_trace_json)
from tests.helpers import run


@pytest.fixture
def trace_root():
    sim = Simulation()

    def body():
        with sim.tracer.span("invoke", kind="invoke", trace_id="inv-1",
                             function="fn") as root:
            with sim.tracer.span("acquire", kind="acquire"):
                yield sim.timeout(4.0)
            with sim.tracer.span("exec", phase="exec"):
                yield sim.timeout(6.0)
        return root

    return run(sim, body())


class TestChromeExport:
    def test_complete_events_in_microseconds(self, trace_root):
        events = chrome_trace_events(trace_root)
        assert [e["name"] for e in events] == ["invoke", "acquire", "exec"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 1
        exec_event = events[2]
        assert exec_event["ts"] == 4000.0       # 4 ms -> 4000 us
        assert exec_event["dur"] == 6000.0
        assert exec_event["args"]["trace_id"] == "inv-1"
        assert exec_event["args"]["phase"] == "exec"
        assert exec_event["cat"] == "exec"

    def test_each_root_gets_its_own_tid(self, trace_root):
        events = chrome_trace_events([trace_root, trace_root])
        assert {e["tid"] for e in events} == {1, 2}

    def test_document_shape(self, trace_root):
        document = to_chrome_trace(trace_root)
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == 3

    def test_write_roundtrip(self, trace_root, tmp_path):
        path = tmp_path / "out.json"
        assert write_trace_json(trace_root, path) == 3
        loaded = json.loads(path.read_text())
        assert [e["name"] for e in loaded["traceEvents"]] == \
            ["invoke", "acquire", "exec"]

    def test_validator_accepts_export(self, trace_root, tmp_path):
        import importlib.util
        from pathlib import Path
        tools = (Path(__file__).resolve().parents[2] / "tools"
                 / "validate_trace.py")
        spec = importlib.util.spec_from_file_location("validate_trace",
                                                      tools)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.validate_trace(to_chrome_trace(trace_root)) == []
        assert module.validate_trace({"traceEvents": [{"ph": "X"}]})
        assert module.validate_trace([]) == \
            ["top level must be an object, got list"]

    def test_validator_checks_placement_args(self, tmp_path):
        import importlib.util
        from pathlib import Path
        tools = (Path(__file__).resolve().parents[2] / "tools"
                 / "validate_trace.py")
        spec = importlib.util.spec_from_file_location("validate_trace",
                                                      tools)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        def placement_event(args):
            return {"name": "placement", "ph": "X", "ts": 0.0, "dur": 0.0,
                    "pid": 1, "tid": 1, "cat": "placement", "args": args}

        good = {"traceEvents":
                [placement_event({"host": 2, "policy": "hash",
                                  "source": "builtin"}),
                 placement_event({"host": 0, "policy": "searched-hash",
                                  "source": "dsl"})]}
        assert module.validate_trace(good) == []
        bad = {"traceEvents": [placement_event({"policy": "hash",
                                                "source": "builtin"}),
                               placement_event({"host": 2,
                                                "source": "builtin"}),
                               placement_event({"host": 2, "policy": "hash"}),
                               placement_event({"host": 2, "policy": "hash",
                                                "source": "magic"})]}
        problems = module.validate_trace(bad)
        assert any("args.host" in problem for problem in problems)
        assert any("args.policy" in problem for problem in problems)
        assert sum("args.source" in problem for problem in problems) == 2


def _load_validator():
    import importlib.util
    from pathlib import Path
    tools = (Path(__file__).resolve().parents[2] / "tools"
             / "validate_trace.py")
    spec = importlib.util.spec_from_file_location("validate_trace", tools)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestValidatorChaosChecks:
    """The retry/failover span shape the chaos engine emits."""

    def _event(self, name, cat, args, ts=0.0, dur=0.0, tid=1):
        return {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
                "pid": 1, "tid": tid, "args": args}

    def _invoke(self, ts=0.0, dur=10_000.0, tid=1):
        return self._event("invoke", "invoke", {"trace_id": "t"},
                           ts=ts, dur=dur, tid=tid)

    def test_well_nested_retry_and_failover_pass(self):
        module = _load_validator()
        good = {"traceEvents": [
            self._invoke(),
            self._event("retry", "retry", {"attempt": 1,
                                           "target": "invoke"},
                        ts=1000.0, dur=2000.0),
            self._event("failover", "failover", {"from_host": 0,
                                                 "attempt": 2},
                        ts=3000.0, dur=0.0),
        ]}
        assert module.validate_trace(good) == []

    def test_retry_needs_integer_attempt(self):
        module = _load_validator()
        bad = {"traceEvents": [
            self._invoke(),
            self._event("retry", "retry", {"attempt": "one"}, ts=1.0),
            self._event("retry", "retry", {"attempt": 0}, ts=2.0),
        ]}
        problems = module.validate_trace(bad)
        assert sum("args.attempt" in p for p in problems) == 2

    def test_failover_needs_from_host(self):
        module = _load_validator()
        bad = {"traceEvents": [
            self._invoke(),
            self._event("failover", "failover", {"attempt": 2}, ts=1.0),
        ]}
        problems = module.validate_trace(bad)
        assert any("args.from_host" in p for p in problems)

    def test_retry_outside_invoke_is_flagged(self):
        module = _load_validator()
        bad = {"traceEvents": [
            self._invoke(ts=0.0, dur=100.0),
            self._event("retry", "retry", {"attempt": 1}, ts=500.0),
            # Same window on another tid doesn't shelter it either.
            self._event("failover", "failover", {"from_host": 1},
                        ts=50.0, tid=9),
        ]}
        problems = module.validate_trace(bad)
        assert sum("not nested inside any invoke" in p
                   for p in problems) == 2

    def test_real_chaos_trace_validates(self, tmp_path):
        # A genuine crash-mid-restore trace: failover + retry spans, the
        # regeneration, the works — exported and validated end to end.
        from tests.chaos.helpers import run_crash_during
        module = _load_validator()
        _, _, record = run_crash_during("restore")
        path = tmp_path / "chaos.trace.json"
        write_trace_json(record.span, path)
        assert module.validate_trace(json.loads(path.read_text())) == []
        names = {e["cat"] for e in
                 json.loads(path.read_text())["traceEvents"]}
        assert {"invoke", "retry", "failover"} <= names


class TestTreeExport:
    def test_tree_lists_every_span_with_timings(self, trace_root):
        rendered = render_tree(trace_root)
        lines = rendered.splitlines()
        assert lines[0] == "trace inv-1"
        assert "invoke" in lines[1]
        assert "acquire" in lines[2] and "(     4.000 ms)" in lines[2]
        assert "exec" in lines[3] and "phase=exec" in lines[3]


class TestValidatorChainChecks:
    """The chain/stage/db-trigger overlay the DAG executor records."""

    def _event(self, name, cat, args, ts=0.0, dur=0.0, tid=1):
        return {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
                "pid": 1, "tid": tid, "args": args}

    def _chain(self, ts=0.0, dur=5_000.0, tid=1, chain_id="chain-1",
               **overrides):
        args = {"trace_id": chain_id, "dag": "diamond", "mode": "guest",
                "stages": 2, "status": "ok",
                "end_to_end_ms": dur / 1000.0}
        args.update(overrides)
        return self._event("chain", "chain", args, ts=ts, dur=dur,
                           tid=tid)

    def _stage(self, ts=100.0, dur=1_000.0, tid=1, chain_id="chain-1"):
        return self._event("stage", "stage",
                           {"stage": "split", "function": "fn-split",
                            "chain": chain_id, "status": "ok",
                            "invocation": "inv-1"},
                           ts=ts, dur=dur, tid=tid)

    def test_well_formed_overlay_passes(self):
        module = _load_validator()
        good = {"traceEvents": [
            self._chain(),
            self._stage(),
            self._event("db-put", "span", {"database": "wages"},
                        ts=200.0, dur=300.0, tid=2),
            self._event("db-trigger", "db-trigger",
                        {"database": "wages", "function": "fn-analyze"},
                        ts=500.0, tid=3),
        ]}
        assert module.validate_trace(good) == []

    def test_chain_needs_dag_mode_and_stage_count(self):
        module = _load_validator()
        bad = {"traceEvents": [
            self._chain(dag=7, mode="psychic", stages=-1),
        ]}
        problems = module.validate_trace(bad)
        assert any("args.dag" in p for p in problems)
        assert any("args.mode" in p for p in problems)
        assert any("args.stages" in p for p in problems)

    def test_chain_duration_must_equal_end_to_end(self):
        module = _load_validator()
        bad = {"traceEvents": [self._chain(end_to_end_ms=4.0)]}
        problems = module.validate_trace(bad)
        assert any("does not match the event duration" in p
                   for p in problems)

    def test_stage_outside_its_chain_is_flagged(self):
        module = _load_validator()
        # Right window, wrong tid; right tid, outside the window; and a
        # window whose trace_id is a different chain.
        bad = {"traceEvents": [
            self._chain(),
            self._stage(tid=9),
            self._stage(ts=5_500.0),
            self._chain(ts=0.0, tid=4, chain_id="chain-2"),
            self._stage(tid=4),
        ]}
        problems = module.validate_trace(bad)
        assert sum("not nested inside chain" in p for p in problems) == 3

    def test_db_trigger_without_a_put_is_flagged(self):
        module = _load_validator()
        bad = {"traceEvents": [
            self._event("db-trigger", "db-trigger",
                        {"database": "wages", "function": "fn"},
                        ts=500.0),
        ]}
        problems = module.validate_trace(bad)
        assert any("has no db-put" in p for p in problems)

    def test_db_trigger_before_first_put_is_flagged(self):
        module = _load_validator()
        bad = {"traceEvents": [
            self._event("db-put", "span", {"database": "wages"},
                        ts=1_000.0, dur=500.0),
            self._event("db-trigger", "db-trigger",
                        {"database": "wages", "function": "fn"},
                        ts=900.0),
        ]}
        problems = module.validate_trace(bad)
        assert any("before the first db-put" in p for p in problems)

    def test_real_chain_exports_validate(self, tmp_path):
        # End to end: an orchestrated DAG with a change-feed segment on a
        # chain-incapable backend, exported and validated.
        from repro.bench import fresh_platform
        from repro.platforms import FirecrackerPlatform
        from repro.platforms.chains import ChainExecutor
        from repro.workloads import data_analysis_dag
        module = _load_validator()
        platform = fresh_platform(FirecrackerPlatform)
        executor = ChainExecutor(platform)
        dag = data_analysis_dag()
        executor.install(dag)
        executor.run(dag, {})
        platform.sim.run()
        path = tmp_path / "chains.trace.json"
        write_trace_json(platform.sim.tracer.traces(), path)
        doc = json.loads(path.read_text())
        assert module.validate_trace(doc) == []
        cats = {e["cat"] for e in doc["traceEvents"] if "cat" in e}
        assert {"chain", "stage", "db-trigger"} <= cats
