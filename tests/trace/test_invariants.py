"""The tracing acceptance invariants, asserted over the Fig 6/7 drivers.

For **every** invocation behind Figures 6 and 7:

* the root ``invoke`` span's duration equals the recorded end-to-end
  latency **exactly** (float ``==``, no tolerance);
* the record's breakdown fields are reproduced by re-deriving them from
  the span tree (they are assigned *from* it, so equality is exact);
* the span tree is well-formed: children nest inside parents, siblings
  are monotone and non-overlapping;
* the Chrome export of the trace is valid ``trace_event`` JSON.
"""

import pytest

from repro.bench.harness import (cold_and_warm, fireworks_invocation,
                                 fresh_platform, install_chain, invoke_once)
from repro.core import FireworksPlatform
from repro.platforms.firecracker import FirecrackerPlatform
from repro.platforms.gvisor_platform import GVisorPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.trace import (chrome_trace_events, check_well_formed,
                         phase_breakdown, verify_invocation)
from repro.workloads import alexa_skills_chain, faasdom_spec
from repro.workloads.faasdom import BENCHMARK_NAMES

_CASES = [(benchmark, language)
          for language in ("nodejs", "python")
          for benchmark in BENCHMARK_NAMES]


def _figure_records(benchmark, language):
    """All seven records of one Fig 6/7 sub-figure, in bar order."""
    spec = faasdom_spec(benchmark, language)
    records = [fireworks_invocation(spec)]
    for platform_cls in (OpenWhiskPlatform, GVisorPlatform,
                         FirecrackerPlatform):
        records.extend(cold_and_warm(platform_cls, spec))
    return records


def _assert_invariants(record):
    span = record.span
    assert span is not None
    # THE invariant: root span duration == recorded end-to-end, exactly.
    assert span.duration_ms == record.end_to_end_ms
    # The figure's bar segments are derived from (not parallel to) spans.
    breakdown = phase_breakdown(span)
    assert breakdown.startup_ms == record.startup_ms
    assert breakdown.exec_ms == record.exec_ms
    assert breakdown.other_ms == record.other_ms
    assert breakdown.queue_ms == record.queue_wait_ms
    check_well_formed(span)
    verify_invocation(record)


class TestFigureInvariants:
    @pytest.mark.parametrize("bench,language", _CASES)
    def test_every_invocation_agrees_with_its_trace(self, bench,
                                                    language):
        for record in _figure_records(bench, language):
            _assert_invariants(record)

    def test_modes_covered(self):
        records = _figure_records("faas-fact", "nodejs")
        assert [r.mode for r in records] == \
            ["snapshot", "cold", "warm", "cold", "warm", "cold", "warm"]


class TestFireworksTraceShape:
    @pytest.fixture(scope="class")
    def record(self):
        return fireworks_invocation(faasdom_spec("faas-fact", "nodejs"))

    def test_whole_fireworks_path_is_traced(self, record):
        names = {span.name for span in record.span.walk()}
        assert {"invoke", "frontend", "acquire", "publish", "netns-setup",
                "mmds-write", "restore", "param-fetch", "exec",
                "release"} <= names

    def test_attributes_carry_identity_and_mode(self, record):
        acquire = record.span.find("acquire")
        assert acquire.attrs["mode"] == "snapshot"
        restore = record.span.find("restore")
        assert restore.attrs["policy"] == "demand"
        publish = record.span.find("publish")
        assert publish.attrs["fc_id"] == "fc1"
        exec_span = record.span.find("exec")
        assert exec_span.attrs["uss_mb"] > 0

    def test_chrome_events_children_monotone_non_overlapping(self, record):
        events = chrome_trace_events(record.span)
        assert all(event["dur"] >= 0 for event in events)
        by_name = {event["name"]: event for event in events}
        stages = [by_name[name] for name in ("frontend", "acquire", "exec",
                                             "release")]
        for earlier, later in zip(stages, stages[1:]):
            assert earlier["ts"] + earlier["dur"] <= later["ts"] + 1e-6


class TestColdStartTraces:
    def test_firecracker_cold_has_boot_pipeline(self):
        spec = faasdom_spec("faas-fact", "nodejs")
        cold, warm = cold_and_warm(FirecrackerPlatform, spec)
        cold_names = [span.name for span in cold.span.walk()]
        for stage in ("cold-start", "sandbox-boot", "runtime-launch",
                      "app-load"):
            assert stage in cold_names
        warm_names = [span.name for span in warm.span.walk()]
        assert "resume" in warm_names
        assert "cold-start" not in warm_names

    def test_jit_compile_recorded_retrospectively(self):
        spec = faasdom_spec("faas-fact", "nodejs")
        cold, _warm = cold_and_warm(OpenWhiskPlatform, spec)
        exec_span = cold.span.find("exec")
        compiles = exec_span.find_all("jit-compile")
        assert compiles  # tier-up happened during the cold invocation
        assert sum(span.duration_ms for span in compiles) == \
            pytest.approx(cold.guest.jit_compile_ms)
        for span in compiles:
            assert span.start_ms >= exec_span.start_ms
            assert span.end_ms <= exec_span.end_ms


class TestChainTraces:
    def test_chain_hops_nest_as_invoke_spans(self):
        platform = fresh_platform(FireworksPlatform)
        chain = alexa_skills_chain()
        install_chain(platform, chain)
        record = invoke_once(platform, chain.entry,
                             payload={"skill": "reminder"})
        _assert_invariants(record)
        nested = [span for span in record.span.find("exec").walk()
                  if span.kind == "invoke"]
        assert len(nested) == 1  # frontend -> alexa-reminder
        assert nested[0].trace_id == record.trace_id
        # The hop's wall time lands in chain, not the parent's exec bar.
        breakdown = phase_breakdown(record.span)
        assert breakdown.chain_ms == pytest.approx(nested[0].duration_ms)
        assert record.children[0].span is nested[0]
