"""Unit tests for named RNG streams."""

import pytest

from repro.sim.rng import RngStreams


class TestStreams:
    def test_same_name_same_stream(self):
        rng = RngStreams(1)
        assert rng.stream("a") is rng.stream("a")

    def test_streams_are_independent(self):
        """Drawing from one stream must not perturb another."""
        rng1 = RngStreams(1)
        baseline = [rng1.stream("a").random() for _ in range(5)]

        rng2 = RngStreams(1)
        rng2.stream("b").random()  # interleaved draw from another stream
        interleaved = [rng2.stream("a").random() for _ in range(5)]
        assert baseline == interleaved

    def test_different_names_different_sequences(self):
        rng = RngStreams(1)
        assert rng.stream("a").random() != rng.stream("b").random()

    def test_reproducible_across_instances(self):
        assert RngStreams(42).stream("x").random() == \
            RngStreams(42).stream("x").random()


class TestJitter:
    def test_zero_stddev_returns_mean(self):
        assert RngStreams(1).jitter("a", 100.0, rel_stddev=0.0) == 100.0

    def test_zero_mean_returns_floor(self):
        assert RngStreams(1).jitter("a", 0.0, floor=3.0) == 3.0

    def test_negative_mean_raises(self):
        with pytest.raises(ValueError):
            RngStreams(1).jitter("a", -1.0)

    def test_floor_clamps(self):
        rng = RngStreams(1)
        values = [rng.jitter("a", 1.0, rel_stddev=5.0, floor=0.5)
                  for _ in range(100)]
        assert all(v >= 0.5 for v in values)

    def test_jitter_is_near_mean(self):
        rng = RngStreams(1)
        values = [rng.jitter("a", 100.0, rel_stddev=0.05)
                  for _ in range(200)]
        mean = sum(values) / len(values)
        assert 95.0 < mean < 105.0


class TestFork:
    def test_fork_is_deterministic(self):
        a = RngStreams(1).fork("child").stream("x").random()
        b = RngStreams(1).fork("child").stream("x").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RngStreams(1)
        child = parent.fork("child")
        assert parent.stream("x").random() != child.stream("x").random()
