"""Deeper kernel edge cases: interrupts vs resources, condition mixing,
lenient mode, and heavy interleavings."""

import pytest

from repro.errors import SimulationError
from repro.sim import (AllOf, Interrupt, Resource, Simulation, Store)
from tests.helpers import run


@pytest.fixture
def sim():
    return Simulation()


class TestInterruptResourceInterplay:
    def test_interrupted_waiter_with_cleanup(self, sim):
        """A process interrupted while queued must release nothing it
        never held."""
        cpu = Resource(sim, capacity=1)
        outcomes = []

        def holder():
            req = cpu.request()
            yield req
            try:
                yield sim.timeout(100)
            finally:
                cpu.release(req)

        def waiter():
            req = cpu.request()
            try:
                yield req
                outcomes.append("granted")
                cpu.release(req)
            except Interrupt:
                outcomes.append("interrupted-while-queued")

        sim.process(holder())
        waiting = sim.process(waiter())

        def interrupter():
            yield sim.timeout(10)
            waiting.interrupt()

        sim.process(interrupter())
        sim.run()
        assert outcomes == ["interrupted-while-queued"]
        # The holder still finished and released cleanly.
        assert cpu.count == 0

    def test_interrupt_then_rewait(self, sim):
        store = Store(sim)
        values = []

        def consumer():
            try:
                value = yield store.get()
                values.append(("first", value))
            except Interrupt:
                value = yield store.get()
                values.append(("after-interrupt", value))

        consumer_process = sim.process(consumer())

        def driver():
            yield sim.timeout(5)
            consumer_process.interrupt()
            yield sim.timeout(5)
            store.put("payload")

        sim.process(driver())
        sim.run()
        assert values == [("after-interrupt", "payload")]


class TestConditions:
    def test_condition_rejects_foreign_events(self, sim):
        other = Simulation()
        with pytest.raises(SimulationError, match="mixes"):
            AllOf(sim, [sim.timeout(1), other.timeout(1)])

    def test_all_of_with_pretriggered_members(self, sim):
        done = sim.event()
        done.succeed("x")

        def proc():
            values = yield sim.all_of([done, sim.timeout(3, value="y")])
            return values

        assert run(sim, proc()) == ["x", "y"]

    def test_nested_conditions(self, sim):
        def proc():
            inner = sim.all_of([sim.timeout(1), sim.timeout(2)])
            value = yield sim.any_of([inner, sim.timeout(50)])
            return sim.now, value

        now, _value = run(sim, proc())
        assert now == 2.0


class TestLenientMode:
    def test_failed_process_does_not_kill_simulation(self):
        sim = Simulation(strict=False)
        survived = []

        def failing():
            yield sim.timeout(1)
            raise RuntimeError("dies quietly")

        def healthy():
            yield sim.timeout(5)
            survived.append(sim.now)

        failed = sim.process(failing())
        sim.process(healthy())
        sim.run()
        assert survived == [5.0]
        assert failed.triggered and not failed.ok


class TestHeavyInterleaving:
    def test_thousand_processes_complete(self, sim):
        finished = []

        def worker(index):
            yield sim.timeout(index % 17 + 1)
            finished.append(index)

        for index in range(1000):
            sim.process(worker(index))
        sim.run()
        assert len(finished) == 1000
        # Completion order is by timeout then FIFO — deterministic.
        assert finished == sorted(
            range(1000), key=lambda i: (i % 17, i))

    def test_process_chain_of_depth_200(self, sim):
        def nested(depth):
            if depth == 0:
                yield sim.timeout(1)
                return 0
            value = yield sim.process(nested(depth - 1))
            return value + 1

        assert run(sim, nested(200)) == 200
