"""Unit tests for the simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulation
from tests.helpers import run


@pytest.fixture
def sim():
    return Simulation()


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_until_time(self, sim):
        sim.timeout(100)
        sim.run(until=50)
        assert sim.now == 50.0

    def test_run_until_past_raises(self, sim):
        sim.timeout(10)
        sim.run(until=20)
        with pytest.raises(SimulationError):
            sim.run(until=5)

    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(30)
        sim.timeout(10)
        assert sim.peek() == 10.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_step_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()


class TestRun:
    def test_run_until_event_returns_value(self, sim):
        def proc():
            yield sim.timeout(5)
            return "done"

        assert run(sim, proc()) == "done"
        assert sim.now == 5.0

    def test_run_drains_everything(self, sim):
        times = []

        def proc(delay):
            yield sim.timeout(delay)
            times.append(sim.now)

        sim.process(proc(3))
        sim.process(proc(7))
        sim.run()
        assert times == [3.0, 7.0]

    def test_run_until_foreign_event_raises(self, sim):
        other = Simulation()
        event = other.event()
        with pytest.raises(SimulationError):
            sim.run(until=event)

    def test_deadlock_detected(self, sim):
        def proc():
            yield sim.event()  # never triggered

        process = sim.process(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(until=process)

    def test_run_until_already_processed_event(self, sim):
        event = sim.event()
        event.succeed("early")
        sim.run()
        assert sim.run(until=event) == "early"


class TestOrdering:
    def test_same_time_events_fifo(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(10)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_nested_process_spawning(self, sim):
        def child(n):
            yield sim.timeout(n)
            return n * 2

        def parent():
            results = []
            for n in (1, 2, 3):
                value = yield sim.process(child(n))
                results.append(value)
            return results

        assert run(sim, parent()) == [2, 4, 6]
        assert sim.now == 6.0

    def test_trace_hook_sees_events(self, sim):
        seen = []
        sim.add_trace_hook(lambda t, e: seen.append(t))
        sim.timeout(1)
        sim.timeout(2)
        sim.run()
        assert seen == [1.0, 2.0]


class TestDeterminism:
    def test_same_seed_same_jitter(self):
        a = Simulation(seed=7).rng.jitter("x", 100.0, 0.1)
        b = Simulation(seed=7).rng.jitter("x", 100.0, 0.1)
        assert a == b

    def test_different_seeds_differ(self):
        a = Simulation(seed=7).rng.jitter("x", 100.0, 0.1)
        b = Simulation(seed=8).rng.jitter("x", 100.0, 0.1)
        assert a != b


class TestRunUntilFailedEvent:
    """Regression: the strict=False branch of _run_until_event was dead —
    non-strict failures raised exactly like strict ones."""

    def test_strict_run_until_failed_event_raises(self, sim):
        failed = sim.event().fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run(until=failed)

    def test_non_strict_run_until_failed_process_returns_exception(self):
        sim = Simulation(strict=False)

        def failing():
            yield sim.timeout(1)
            raise ValueError("kaboom")

        process = sim.process(failing())
        value = sim.run(until=process)
        assert isinstance(value, ValueError)
        assert process.triggered and not process.ok

    def test_non_strict_run_until_failed_event_returns_exception(self):
        sim = Simulation(strict=False)
        failed = sim.event().fail(RuntimeError("quiet"))
        value = sim.run(until=failed)
        assert isinstance(value, RuntimeError)
        assert not failed.ok
