"""Unit tests for resources and stores."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulation, Store


@pytest.fixture
def sim():
    return Simulation()


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity(self, sim):
        resource = Resource(sim, capacity=2)
        r1, r2, r3 = resource.request(), resource.request(), \
            resource.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert resource.count == 2
        assert resource.queue_length == 1

    def test_release_grants_waiter(self, sim):
        resource = Resource(sim, capacity=1)
        r1 = resource.request()
        r2 = resource.request()
        resource.release(r1)
        assert r2.triggered

    def test_release_unheld_raises(self, sim):
        resource = Resource(sim, capacity=1)
        r1 = resource.request()
        r2 = resource.request()  # queued, not held
        del r1
        with pytest.raises(SimulationError):
            resource.release(r2)

    def test_single_vcpu_serializes_work(self, sim):
        """The paper's single-vCPU contention: work is sequential."""
        cpu = Resource(sim, capacity=1, name="vcpu")
        finish_times = []

        def job(duration):
            req = cpu.request()
            yield req
            try:
                yield sim.timeout(duration)
                finish_times.append(sim.now)
            finally:
                cpu.release(req)

        sim.process(job(10))
        sim.process(job(10))
        sim.run()
        assert finish_times == [10.0, 20.0]


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        event = store.get()
        assert event.triggered
        assert event.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        results = []

        def getter():
            value = yield store.get()
            results.append((sim.now, value))

        def putter():
            yield sim.timeout(7)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert results == [(7.0, "late")]

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        assert [store.get().value for _ in range(3)] == [1, 2, 3]

    def test_concurrent_getters_served_fifo(self, sim):
        store = Store(sim)
        results = []

        def getter(tag):
            value = yield store.get()
            results.append((tag, value))

        sim.process(getter("first"))
        sim.process(getter("second"))
        store.put("a")
        store.put("b")
        sim.run()
        assert results == [("first", "a"), ("second", "b")]

    def test_try_get_empty_raises(self, sim):
        store = Store(sim)
        with pytest.raises(SimulationError):
            store.try_get()

    def test_len_counts_items(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        assert len(store) == 1
