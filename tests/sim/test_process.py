"""Unit tests for generator processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Interrupt, Simulation
from tests.helpers import run


@pytest.fixture
def sim():
    return Simulation()


class TestProcessBasics:
    def test_process_is_event(self, sim):
        def proc():
            yield sim.timeout(1)
            return 99

        process = sim.process(proc())
        assert process.is_alive
        sim.run()
        assert not process.is_alive
        assert process.value == 99

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_yielding_non_event_raises(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError, match="must yield events"):
            sim.run()

    def test_exception_propagates_in_strict_mode(self, sim):
        def proc():
            yield sim.timeout(1)
            raise ValueError("kaboom")

        sim.process(proc())
        with pytest.raises(ValueError, match="kaboom"):
            sim.run()

    def test_exception_fails_process_in_lenient_mode(self):
        sim = Simulation(strict=False)

        def proc():
            yield sim.timeout(1)
            raise ValueError("kaboom")

        process = sim.process(proc())
        sim.run()
        assert process.triggered
        assert not process.ok

    def test_yield_already_processed_event_resumes(self, sim):
        event = sim.event()
        event.succeed("cached")
        sim.run()

        def proc():
            value = yield event
            return value

        assert run(sim, proc()) == "cached"

    def test_process_waits_on_another_process(self, sim):
        def child():
            yield sim.timeout(10)
            return "child-result"

        def parent():
            value = yield sim.process(child())
            return value

        assert run(sim, parent()) == "child-result"


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self, sim):
        def sleeper():
            try:
                yield sim.timeout(1000)
                return "overslept"
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        def interrupter(target):
            yield sim.timeout(5)
            target.interrupt("wake up")

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        assert target.value == ("interrupted", "wake up", 5.0)

    def test_interrupt_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(1)

        process = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        def resilient():
            total = 0.0
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(10)
            total = sim.now
            return total

        def interrupter(target):
            yield sim.timeout(3)
            target.interrupt()

        target = sim.process(resilient())
        sim.process(interrupter(target))
        sim.run()
        assert target.value == 13.0

    def test_active_process_visible_during_step(self, sim):
        observed = []

        def proc():
            observed.append(sim.active_process)
            yield sim.timeout(1)

        process = sim.process(proc())
        sim.run()
        assert observed == [process]
        assert sim.active_process is None
