"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulation
from tests.helpers import run


@pytest.fixture
def sim():
    return Simulation()


class TestEvent:
    def test_fresh_event_is_untriggered(self, sim):
        event = sim.event("e")
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_ok_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().ok

    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_double_trigger_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_fail_raises_in_waiter(self, sim):
        event = sim.event()

        def waiter():
            with pytest.raises(ValueError, match="boom"):
                yield event
            return "survived"

        process = sim.process(waiter())
        event.fail(ValueError("boom"))
        sim.run()
        assert process.value == "survived"

    def test_callbacks_run_once(self, sim):
        event = sim.event()
        calls = []
        event.callbacks.append(lambda e: calls.append(e))
        event.succeed()
        sim.run()
        assert calls == [event]
        assert event.processed


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(25.0)
        sim.run()
        assert sim.now == 25.0

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_timeout_value_delivered(self, sim):
        def proc():
            got = yield sim.timeout(5, value="hello")
            return got

        assert run(sim, proc()) == "hello"

    def test_zero_delay_fires_at_now(self, sim):
        def proc():
            yield sim.timeout(0)
            return sim.now

        assert run(sim, proc()) == 0.0


class TestAllOf:
    def test_waits_for_all(self, sim):
        def proc():
            t1 = sim.timeout(10, value="a")
            t2 = sim.timeout(20, value="b")
            values = yield sim.all_of([t1, t2])
            return sim.now, values

        now, values = run(sim, proc())
        assert now == 20.0
        assert values == ["a", "b"]

    def test_empty_all_of_fires_immediately(self, sim):
        def proc():
            values = yield sim.all_of([])
            return values

        assert run(sim, proc()) == []

    def test_all_of_propagates_failure(self, sim):
        def failer():
            yield sim.timeout(1)
            raise RuntimeError("child failed")

        def proc():
            child = sim.process(failer())
            with pytest.raises(RuntimeError, match="child failed"):
                yield sim.all_of([child, sim.timeout(100)])
            return True

        sim.strict = False
        assert run(sim, proc()) is True


class TestAnyOf:
    def test_fires_on_first(self, sim):
        def proc():
            t1 = sim.timeout(10, value="fast")
            t2 = sim.timeout(50, value="slow")
            value = yield sim.any_of([t1, t2])
            return sim.now, value

        now, value = run(sim, proc())
        assert now == 10.0
        assert value == "fast"

    def test_already_triggered_child(self, sim):
        def proc():
            event = sim.event()
            event.succeed("instant")
            value = yield sim.any_of([event, sim.timeout(99)])
            return value

        assert run(sim, proc()) == "instant"
