"""Unit tests for the Catalyzer-style baseline (extension)."""

import pytest

from repro.bench import fresh_platform, install_all, invoke_once
from repro.errors import PlatformError
from repro.platforms import MODE_COLD, MODE_WARM
from repro.platforms.catalyzer import (CHECKPOINT_RESTORE_MS, SFORK_MS,
                                       CatalyzerPlatform)
from repro.workloads import faasdom_spec


@pytest.fixture
def catalyzer():
    platform = fresh_platform(CatalyzerPlatform)
    spec = faasdom_spec("faas-fact", "nodejs")
    install_all(platform, [spec])
    return platform, spec


class TestLifecycle:
    def test_install_builds_resident_template(self, catalyzer):
        platform, spec = catalyzer
        assert (0, spec.name) in platform._templates
        template = platform._templates[(0, spec.name)]
        assert template.worker.sandbox.state == "paused"
        assert platform.host_memory.used_mb > 50  # template stays resident

    def test_invoke_without_install_raises(self):
        platform = fresh_platform(CatalyzerPlatform)
        spec = faasdom_spec("faas-fact", "nodejs")
        platform._specs[spec.name] = spec
        with pytest.raises(PlatformError, match="checkpoint"):
            invoke_once(platform, spec.name)


class TestStartModes:
    def test_warm_is_sfork(self, catalyzer):
        platform, spec = catalyzer
        record = invoke_once(platform, spec.name, mode=MODE_WARM)
        assert record.mode == MODE_WARM
        assert record.startup_ms == pytest.approx(SFORK_MS)
        assert platform.sforks == 1

    def test_cold_is_checkpoint_restore(self, catalyzer):
        platform, spec = catalyzer
        record = invoke_once(platform, spec.name, mode=MODE_COLD)
        assert record.startup_ms == pytest.approx(CHECKPOINT_RESTORE_MS)
        assert platform.checkpoint_restores == 1

    def test_sfork_faster_than_fireworks_restore(self, catalyzer):
        """Table 1: Catalyzer performance is 'High (pre-launching)'."""
        from repro.core import FireworksPlatform
        platform, spec = catalyzer
        warm = invoke_once(platform, spec.name, mode=MODE_WARM)

        fireworks = fresh_platform(FireworksPlatform)
        install_all(fireworks, [spec])
        fw_record = invoke_once(fireworks, spec.name)
        assert warm.startup_ms < fw_record.startup_ms

    def test_execution_pays_gvisor_and_no_post_jit(self, catalyzer):
        """The checkpoint captured a *clean* (never-executed) state, so the
        first run still pays JIT warm-up — the piece Fireworks adds."""
        platform, spec = catalyzer
        record = invoke_once(platform, spec.name)
        assert record.guest.jit_compile_ms > 0

    def test_isolation_is_container_level(self):
        assert "container" in CatalyzerPlatform.isolation_label.lower()

    def test_clones_are_independent(self, catalyzer):
        platform, spec = catalyzer
        platform.retain_workers = True
        first = invoke_once(platform, spec.name)
        second = invoke_once(platform, spec.name)
        assert first.worker is not second.worker
        # Each fork executed (and tiered) on its own.
        assert first.worker.runtime.invocations == 1
        assert second.worker.runtime.invocations == 1
