"""Unit tests for the invoker pool and scheduling policies."""

import pytest

from repro.errors import NoHostAvailableError, PlatformError
from repro.platforms.scheduler import (POLICY_HASH, POLICY_LEAST_LOADED,
                                       POLICY_ROUND_ROBIN,
                                       POLICY_SNAPSHOT_LOCALITY, InvokerNode,
                                       InvokerPool)


class TestInvokerNode:
    def test_assign_release_cycle(self):
        node = InvokerNode(node_id=0, capacity=2)
        node.assign("fn")
        assert node.active == 1
        assert node.per_function["fn"] == 1
        node.release()
        assert node.active == 0

    def test_over_capacity_raises(self):
        node = InvokerNode(node_id=0, capacity=1)
        node.assign("fn")
        with pytest.raises(PlatformError):
            node.assign("fn")

    def test_release_below_zero_raises(self):
        with pytest.raises(PlatformError):
            InvokerNode(node_id=0).release()


class TestPoolConstruction:
    def test_needs_nodes(self):
        with pytest.raises(PlatformError):
            InvokerPool(nodes=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(PlatformError):
            InvokerPool(policy="random-ish")


class TestRoundRobin:
    def test_cycles_through_nodes(self):
        pool = InvokerPool(nodes=3, policy=POLICY_ROUND_ROBIN)
        picks = [pool.pick("fn").node_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_full_nodes(self):
        pool = InvokerPool(nodes=2, capacity_per_node=1,
                           policy=POLICY_ROUND_ROBIN)
        first = pool.pick("fn")
        second = pool.pick("fn")
        assert {first.node_id, second.node_id} == {0, 1}
        with pytest.raises(PlatformError, match="capacity"):
            pool.pick("fn")


class TestLeastLoaded:
    def test_prefers_idle_node(self):
        pool = InvokerPool(nodes=3, policy=POLICY_LEAST_LOADED)
        a = pool.pick("fn")
        b = pool.pick("fn")
        assert a.node_id != b.node_id
        a.release()
        c = pool.pick("fn")
        assert c.node_id == a.node_id  # back to the now-idle node

    def test_all_full_raises(self):
        pool = InvokerPool(nodes=1, capacity_per_node=1,
                           policy=POLICY_LEAST_LOADED)
        pool.pick("fn")
        with pytest.raises(PlatformError):
            pool.pick("fn")


class TestHash:
    def test_same_function_same_home(self):
        pool = InvokerPool(nodes=4, policy=POLICY_HASH)
        homes = {pool.pick("my-fn").node_id for _ in range(5)}
        assert len(homes) == 1

    def test_different_functions_spread(self):
        pool = InvokerPool(nodes=4, policy=POLICY_HASH)
        homes = {pool.pick(f"fn-{i}").node_id for i in range(40)}
        assert len(homes) > 1

    def test_overflow_probes_next_node(self):
        pool = InvokerPool(nodes=2, capacity_per_node=1,
                           policy=POLICY_HASH)
        first = pool.pick("fn")
        second = pool.pick("fn")
        assert second.node_id == (first.node_id + 1) % 2

    def test_deterministic_home(self):
        a = InvokerPool(nodes=4, policy=POLICY_HASH)
        b = InvokerPool(nodes=4, policy=POLICY_HASH)
        assert a.pick("fn").node_id == b.pick("fn").node_id


class TestStats:
    def test_total_active(self):
        pool = InvokerPool(nodes=2, policy=POLICY_ROUND_ROBIN)
        pool.pick("a")
        pool.pick("b")
        assert pool.total_active() == 2

    def test_load_spread(self):
        pool = InvokerPool(nodes=2, policy=POLICY_LEAST_LOADED)
        node = pool.pick("a")
        node.release()
        node2 = pool.pick("b")
        node2.release()
        assert pool.load_spread() <= 2


class TestPickAssignRace:
    """pick() = select + assign, and re-entrant controller logic (the
    locality callback here) can admit work in between — a selected node
    may be full by assign time.  That race must be absorbed as a
    queueable no-room event (re-select, count ``rejected_assigns``), and
    NoHostAvailableError raised only when every node is genuinely full.
    """

    @staticmethod
    def _racing_locality(pool, victim_id, function):
        """A locality callback that admits one request onto *victim*
        while the scheduler is mid-select — after its has_room check,
        before pick() assigns."""
        fired = []

        def locality(node):
            if node.node_id == victim_id and not fired:
                fired.append(True)
                node.assign(function)   # re-entrant admission
            return node.node_id == victim_id
        return locality

    def test_pick_reselects_when_assign_races_with_select(self):
        pool = InvokerPool(nodes=2, capacity_per_node=1,
                           policy=POLICY_SNAPSHOT_LOCALITY)
        victim = 0
        node = pool.pick("fn", self._racing_locality(pool, victim, "fn"))
        # The racing admission filled the victim; pick fell over to the
        # other node instead of crashing the gateway.
        assert node.node_id != victim
        assert pool.rejected_assigns == 1
        assert pool.total_active() == 2      # racer's + ours
        for n in pool.nodes:
            assert 0 <= n.active <= n.capacity

    def test_pick_raises_only_when_race_filled_the_last_slot(self):
        pool = InvokerPool(nodes=1, capacity_per_node=1,
                           policy=POLICY_SNAPSHOT_LOCALITY)
        with pytest.raises(NoHostAvailableError):
            pool.pick("fn", self._racing_locality(pool, 0, "fn"))
        assert pool.rejected_assigns == 1
        assert pool.total_active() == 1      # the racer's admission only

    def test_no_rejects_without_contention(self):
        pool = InvokerPool(nodes=2, capacity_per_node=2,
                           policy=POLICY_SNAPSHOT_LOCALITY)
        for _ in range(4):
            pool.pick("fn", lambda node: True)
        assert pool.rejected_assigns == 0
        with pytest.raises(NoHostAvailableError):
            pool.pick("fn", lambda node: True)
