"""Unit tests for the API gateway and activation records."""

import pytest

from repro.bench import fresh_platform, install_all
from repro.core import FireworksPlatform
from repro.errors import FunctionNotFoundError, PlatformError
from repro.faults import FaultInjector
from repro.platforms.gateway import (MAX_PAYLOAD_KB, STATUS_ERROR,
                                     STATUS_SUCCESS, ApiGateway,
                                     AuthenticationError,
                                     PayloadTooLargeError)
from repro.workloads import faasdom_spec
from tests.helpers import run

FN = "faas-netlatency-nodejs"


@pytest.fixture
def gateway():
    platform = fresh_platform(FireworksPlatform)
    install_all(platform, [faasdom_spec("faas-netlatency", "nodejs")])
    gw = ApiGateway(platform)
    key = gw.create_namespace("alice")
    return gw, key, platform


class TestAuthentication:
    def test_valid_key_accepted(self, gateway):
        gw, key, platform = gateway
        activation = run(platform.sim, gw.handle_request(key, FN))
        assert activation.status == STATUS_SUCCESS
        assert activation.namespace == "alice"

    def test_invalid_key_rejected(self, gateway):
        gw, _key, platform = gateway
        with pytest.raises(AuthenticationError):
            run(platform.sim, gw.handle_request("bogus", FN))
        assert gw.rejected_requests == 1

    def test_keys_are_per_namespace(self, gateway):
        gw, alice_key, platform = gateway
        bob_key = gw.create_namespace("bob")
        assert alice_key != bob_key
        activation = run(platform.sim, gw.handle_request(bob_key, FN))
        assert activation.namespace == "bob"
        assert gw.list_activations("alice") == []

    def test_duplicate_namespace_rejected(self, gateway):
        gw, _key, _platform = gateway
        with pytest.raises(PlatformError):
            gw.create_namespace("alice")

    def test_truncated_key_rejected(self, gateway):
        """A prefix of a real key must not authenticate."""
        gw, key, platform = gateway
        with pytest.raises(AuthenticationError):
            run(platform.sim, gw.handle_request(key[:-1], FN))
        assert gw.rejected_requests == 1

    def test_lookup_scales_past_first_namespace(self, gateway):
        """Key lookup is by dict, not scan order: a later namespace's key
        authenticates as that namespace even with many earlier ones."""
        gw, _alice_key, platform = gateway
        keys = {name: gw.create_namespace(name)
                for name in ("bob", "carol", "dave")}
        activation = run(platform.sim,
                         gw.handle_request(keys["dave"], FN))
        assert activation.namespace == "dave"
        assert gw.rejected_requests == 0


class TestValidation:
    def test_unknown_function_404s(self, gateway):
        gw, key, platform = gateway
        with pytest.raises(FunctionNotFoundError):
            run(platform.sim, gw.handle_request(key, "ghost"))

    def test_404s_count_as_rejected(self, gateway):
        gw, key, platform = gateway
        for _ in range(2):
            with pytest.raises(FunctionNotFoundError):
                run(platform.sim, gw.handle_request(key, "ghost"))
        assert gw.rejected_requests == 2

    def test_payload_cap(self, gateway):
        gw, key, platform = gateway
        with pytest.raises(PayloadTooLargeError):
            run(platform.sim, gw.handle_request(
                key, FN, payload_kb=MAX_PAYLOAD_KB + 1))
        assert gw.rejected_requests == 1


class TestActivations:
    def test_activation_ids_unique_and_queryable(self, gateway):
        gw, key, platform = gateway
        first = run(platform.sim, gw.handle_request(key, FN))
        second = run(platform.sim, gw.handle_request(key, FN))
        assert first.activation_id != second.activation_id
        assert gw.activation("alice", first.activation_id) is first

    def test_duration_matches_record(self, gateway):
        gw, key, platform = gateway
        activation = run(platform.sim, gw.handle_request(key, FN))
        assert activation.duration_ms == pytest.approx(
            activation.record.total_ms, rel=0.01)

    def test_list_filters_by_function(self, gateway):
        gw, key, platform = gateway
        install_all(platform, [faasdom_spec("faas-fact", "nodejs")])
        run(platform.sim, gw.handle_request(key, FN))
        run(platform.sim, gw.handle_request(key, "faas-fact-nodejs"))
        assert len(gw.list_activations("alice")) == 2
        assert len(gw.list_activations("alice", function=FN)) == 1

    def test_unknown_activation_raises(self, gateway):
        gw, _key, _platform = gateway
        with pytest.raises(PlatformError):
            gw.activation("alice", "act-ghost")
        with pytest.raises(PlatformError):
            gw.list_activations("nobody")

    def test_application_error_recorded_not_raised(self):
        faults = FaultInjector()
        platform = fresh_platform(FireworksPlatform, faults=faults)
        spec = faasdom_spec("faas-netlatency", "nodejs")
        install_all(platform, [spec])
        gw = ApiGateway(platform)
        key = gw.create_namespace("alice")
        # Exhaust all restore attempts -> invoke raises -> gateway records.
        faults.arm("restore", spec.name, count=5)
        activation = run(platform.sim, gw.handle_request(key, spec.name))
        assert activation.status == STATUS_ERROR
        assert "injected" in activation.error
        assert activation.record is None
