"""Unit tests for the keep-alive policies ([48]'s hybrid histogram)."""

import pytest

from repro.errors import PlatformError
from repro.platforms.keepalive import (FixedKeepAlive,
                                       HybridHistogramKeepAlive)


class TestFixed:
    def test_same_window_for_everyone(self):
        policy = FixedKeepAlive(fixed_window_ms=1000.0)
        policy.observe_arrival("a", 0.0)
        assert policy.window_ms("a") == 1000.0
        assert policy.window_ms("never-seen") == 1000.0


class TestHybridHistogram:
    def test_coverage_validated(self):
        with pytest.raises(PlatformError):
            HybridHistogramKeepAlive(coverage=0.0)

    def test_falls_back_until_warm(self):
        policy = HybridHistogramKeepAlive(default_window_ms=999.0,
                                          warmup_samples=3)
        policy.observe_arrival("f", 0.0)
        policy.observe_arrival("f", 100.0)
        assert policy.observed_gap_count("f") == 1
        assert policy.window_ms("f") == 999.0  # not enough gaps yet

    def test_learns_per_function_windows(self):
        policy = HybridHistogramKeepAlive(warmup_samples=3,
                                          min_window_ms=0.0)
        # "fast" arrives every 10 s; "slow" every 40 min.
        for index in range(6):
            policy.observe_arrival("fast", index * 10000.0)
            policy.observe_arrival("slow", index * 2400000.0)
        assert policy.window_ms("fast") == pytest.approx(10000.0)
        # slow's observed gaps exceed the cap -> capped at the max window.
        assert policy.window_ms("slow") == policy.max_window_ms

    def test_coverage_percentile(self):
        policy = HybridHistogramKeepAlive(warmup_samples=3,
                                          coverage=0.5, min_window_ms=0.0)
        times = [0.0, 10.0, 30.0, 60.0, 100.0]  # gaps 10,20,30,40
        for t in times:
            policy.observe_arrival("f", t)
        assert policy.window_ms("f") == pytest.approx(30.0)

    def test_floor_applied(self):
        policy = HybridHistogramKeepAlive(warmup_samples=2,
                                          min_window_ms=5000.0)
        for t in (0.0, 1.0, 2.0, 3.0):
            policy.observe_arrival("f", t)
        assert policy.window_ms("f") == 5000.0


class TestOpenWhiskIntegration:
    def test_adaptive_policy_expires_rare_functions(self):
        """A rare function's container is gone by its next arrival under
        the adaptive policy (saving memory); the fixed 10-min policy would
        also miss here, but for a *popular* function the adaptive window
        shrinks without losing warm hits."""
        from repro.bench import fresh_platform, install_all, invoke_once
        from repro.platforms.openwhisk import OpenWhiskPlatform
        from repro.workloads import faasdom_spec

        policy = HybridHistogramKeepAlive(warmup_samples=2,
                                          min_window_ms=15000.0)
        platform = fresh_platform(OpenWhiskPlatform,
                                  keepalive_policy=policy)
        spec = faasdom_spec("faas-netlatency", "nodejs")
        install_all(platform, [spec])

        # Popular cadence: every 10 s -> learned window ~15 s (floor).
        for _ in range(5):
            invoke_once(platform, spec.name)
            platform.sim.run(until=platform.sim.now + 10000.0)
        assert platform.warm_starts >= 3  # stays warm at its cadence

        # Now the function goes quiet for 2 minutes: with the learned
        # ~15 s window the container expired (memory released)...
        platform.sim.run(until=platform.sim.now + 120000.0)
        record = invoke_once(platform, spec.name)
        assert record.mode == "cold"

    def test_default_platform_uses_fixed_policy(self):
        from repro.bench import fresh_platform
        from repro.platforms.openwhisk import OpenWhiskPlatform
        platform = fresh_platform(OpenWhiskPlatform)
        assert isinstance(platform.keepalive, FixedKeepAlive)
        assert platform.keepalive.fixed_window_ms == \
            platform.params.control_plane.warm_keepalive_ms
