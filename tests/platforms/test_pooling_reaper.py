"""Unit tests for pool sweeping and the periodic reaper."""

import pytest

from repro.bench import fresh_platform, install_all, invoke_once
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.platforms.pooling import WarmEntry, WarmPool
from repro.workloads import faasdom_spec


class FakeWorker:
    pass


class TestExpireAll:
    def test_sweeps_every_pool(self):
        pool = WarmPool()
        pool.add("a", WarmEntry(FakeWorker(), 100.0, paused=False))
        pool.add("b", WarmEntry(FakeWorker(), 100.0, paused=False))
        pool.add("b", WarmEntry(FakeWorker(), 9999.0, paused=False))
        pool.expire_all(now_ms=500.0)
        expired = pool.drain_expired()
        assert len(expired) == 2
        assert len(pool.live_entries(500.0)) == 1

    def test_live_entries_across_pools(self):
        pool = WarmPool()
        for function in ("a", "b", "c"):
            pool.add(function, WarmEntry(FakeWorker(), 1000.0,
                                         paused=False))
        assert len(pool.live_entries(0.0)) == 3


class TestReapIdle:
    def test_reaper_frees_memory(self):
        platform = fresh_platform(OpenWhiskPlatform)
        spec = faasdom_spec("faas-netlatency", "nodejs")
        install_all(platform, [spec])
        invoke_once(platform, spec.name)
        assert platform.host_memory.used_mb > 50  # idle container

        # Inside the keep-alive window the reaper takes nothing.
        assert platform.reap_idle() == 0

        # Past the window it reclaims the container.
        keepalive = platform.params.control_plane.warm_keepalive_ms
        platform.sim.run(until=platform.sim.now + keepalive + 1)
        assert platform.reap_idle() == 1
        platform.sim.run()
        assert platform.host_memory.used_mb == pytest.approx(0.0)

    def test_reaped_function_cold_starts_next(self):
        platform = fresh_platform(OpenWhiskPlatform)
        spec = faasdom_spec("faas-netlatency", "nodejs")
        install_all(platform, [spec])
        invoke_once(platform, spec.name)
        keepalive = platform.params.control_plane.warm_keepalive_ms
        platform.sim.run(until=platform.sim.now + keepalive + 1)
        platform.reap_idle()
        record = invoke_once(platform, spec.name)
        assert record.mode == "cold"
