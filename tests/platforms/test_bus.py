"""Unit tests for the Kafka-like message bus."""

import pytest

from repro.errors import BusError
from repro.platforms.bus import MessageBus


@pytest.fixture
def bus():
    return MessageBus()


class TestTopics:
    def test_auto_create_on_produce(self, bus):
        bus.produce("topic-fc1", {"x": 1})
        assert bus.has_topic("topic-fc1")

    def test_no_auto_create_mode(self):
        bus = MessageBus(auto_create_topics=False)
        with pytest.raises(BusError):
            bus.produce("ghost", {})

    def test_explicit_duplicate_create_raises(self, bus):
        bus.create_topic("t")
        with pytest.raises(BusError):
            bus.create_topic("t")


class TestProduceConsume:
    def test_offsets_increase(self, bus):
        first = bus.produce("t", "a")
        second = bus.produce("t", "b")
        assert (first.offset, second.offset) == (0, 1)

    def test_consume_latest_is_kafkacat_minus_one(self, bus):
        """Figure 3 line 24-25: `-o -1 -c 1` reads the newest record."""
        bus.produce("t", "stale")
        bus.produce("t", "fresh")
        assert bus.consume_latest("t").value == "fresh"

    def test_consume_latest_empty_topic_raises(self, bus):
        bus.create_topic("t")
        with pytest.raises(BusError):
            bus.consume_latest("t")

    def test_consume_latest_missing_topic_raises(self, bus):
        with pytest.raises(BusError):
            bus.consume_latest("ghost")

    def test_consume_at_offset(self, bus):
        bus.produce("t", "a")
        bus.produce("t", "b")
        assert bus.consume_at("t", 0).value == "a"
        with pytest.raises(BusError):
            bus.consume_at("t", 5)

    def test_records_carry_timestamps(self, bus):
        record = bus.produce("t", "a", timestamp_ms=12.5)
        assert record.timestamp_ms == 12.5
        assert record.topic == "t"

    def test_per_instance_topics_are_isolated(self, bus):
        """§3.6: each fcID has its own topic, so clones cannot steal each
        other's arguments."""
        bus.produce("topicfc1", {"for": "fc1"})
        bus.produce("topicfc2", {"for": "fc2"})
        assert bus.consume_latest("topicfc1").value == {"for": "fc1"}
        assert bus.consume_latest("topicfc2").value == {"for": "fc2"}
