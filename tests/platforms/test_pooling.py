"""Unit tests for warm-pool management."""

import pytest

from repro.errors import PlatformError
from repro.platforms.pooling import WarmEntry, WarmPool, require_warm


class FakeWorker:
    pass


@pytest.fixture
def pool():
    return WarmPool()


class TestWarmPool:
    def test_take_from_empty_is_none(self, pool):
        assert pool.take("fn", now_ms=0.0) is None

    def test_add_and_take(self, pool):
        worker = FakeWorker()
        pool.add("fn", WarmEntry(worker, expires_at_ms=100.0, paused=True))
        entry = pool.take("fn", now_ms=50.0)
        assert entry.worker is worker
        assert pool.take("fn", now_ms=50.0) is None  # consumed

    def test_expired_entries_not_returned(self, pool):
        pool.add("fn", WarmEntry(FakeWorker(), 100.0, paused=True))
        assert pool.take("fn", now_ms=100.0) is None

    def test_expired_entries_drained_for_teardown(self, pool):
        worker = FakeWorker()
        pool.add("fn", WarmEntry(worker, 100.0, paused=False))
        pool.take("fn", now_ms=200.0)
        expired = pool.drain_expired()
        assert [e.worker for e in expired] == [worker]
        assert pool.drain_expired() == []  # drained once

    def test_freshest_entry_taken_first(self, pool):
        old, new = FakeWorker(), FakeWorker()
        pool.add("fn", WarmEntry(old, 1000.0, paused=True))
        pool.add("fn", WarmEntry(new, 2000.0, paused=True))
        assert pool.take("fn", 0.0).worker is new

    def test_pools_are_per_function(self, pool):
        pool.add("a", WarmEntry(FakeWorker(), 100.0, paused=True))
        assert pool.take("b", 0.0) is None
        assert pool.size("a", 0.0) == 1

    def test_size_expires_lazily(self, pool):
        pool.add("fn", WarmEntry(FakeWorker(), 100.0, paused=True))
        assert pool.size("fn", now_ms=150.0) == 0

    def test_expire_all_sweeps_every_function(self, pool):
        stale_a, stale_b = FakeWorker(), FakeWorker()
        pool.add("a", WarmEntry(stale_a, 100.0, paused=True))
        pool.add("a", WarmEntry(FakeWorker(), 500.0, paused=True))
        pool.add("b", WarmEntry(stale_b, 200.0, paused=False))
        pool.expire_all(now_ms=300.0)
        # Both stale entries land in one drain batch; live entry stays.
        assert {e.worker for e in pool.drain_expired()} == {stale_a, stale_b}
        assert pool.size("a", 300.0) == 1
        assert pool.size("b", 300.0) == 0

    def test_expire_all_then_take_does_not_redrain(self, pool):
        """Entries expired by the sweep are not queued for teardown twice
        when a later take() expires the (now-empty) pool again."""
        pool.add("fn", WarmEntry(FakeWorker(), 100.0, paused=True))
        pool.expire_all(now_ms=150.0)
        assert len(pool.drain_expired()) == 1
        assert pool.take("fn", now_ms=200.0) is None
        assert pool.drain_expired() == []

    def test_live_entries_excludes_expired(self, pool):
        live = FakeWorker()
        pool.add("a", WarmEntry(FakeWorker(), 100.0, paused=True))
        pool.add("b", WarmEntry(live, 1000.0, paused=True))
        assert [e.worker for e in pool.live_entries(now_ms=500.0)] == [live]
        assert len(pool.drain_expired()) == 1


class TestRequireWarm:
    def test_passes_through_entry(self):
        entry = WarmEntry(FakeWorker(), 1.0, paused=True)
        assert require_warm(entry, "fn", "p") is entry

    def test_none_raises_clear_error(self):
        with pytest.raises(PlatformError, match="warm pool is empty"):
            require_warm(None, "fn", "p")
