"""Unit tests for platform triggers (db change feed + timers)."""

import pytest

from repro.bench import drain, fresh_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.errors import FunctionNotFoundError, PlatformError
from repro.workloads import faasdom_spec


@pytest.fixture
def platform():
    platform = fresh_platform(FireworksPlatform)
    install_all(platform, [faasdom_spec("faas-netlatency", "nodejs")])
    return platform


FN = "faas-netlatency-nodejs"


class TestTimerTriggers:
    def test_fires_count_times(self, platform):
        platform.register_timer_trigger(FN, every_ms=1000.0, count=3)
        platform.sim.run()
        assert len(platform.records) == 3
        # First firing one period in, then evenly spaced.
        starts = [record.submitted_ms for record in platform.records]
        assert starts[0] >= 1000.0
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(gap == pytest.approx(1000.0, abs=1e-6) for gap in gaps)

    def test_unknown_function_rejected(self, platform):
        with pytest.raises(FunctionNotFoundError):
            platform.register_timer_trigger("ghost", 1000.0, 1)

    def test_bad_period_rejected(self, platform):
        with pytest.raises(PlatformError):
            platform.register_timer_trigger(FN, 0.0, 1)

    def test_bad_count_rejected(self, platform):
        with pytest.raises(PlatformError):
            platform.register_timer_trigger(FN, 1000.0, 0)

    def test_timer_coexists_with_direct_invocations(self, platform):
        platform.register_timer_trigger(FN, every_ms=5000.0, count=1)
        invoke_once(platform, FN)
        drain(platform)
        assert len(platform.records) == 2


class TestDbTriggerRegistration:
    def test_unknown_function_rejected(self, platform):
        with pytest.raises(FunctionNotFoundError):
            platform.register_db_trigger("wages", "ghost")

    def test_multiple_triggers_per_database(self, platform):
        spec2 = faasdom_spec("faas-fact", "nodejs")
        install_all(platform, [spec2])
        platform.register_db_trigger("events", FN)
        platform.register_db_trigger("events", spec2.name)
        platform.note_db_write("events")
        drain(platform)
        functions = sorted(record.function for record in platform.records)
        assert functions == sorted([FN, spec2.name])

    def test_write_to_untriggered_db_is_quiet(self, platform):
        platform.note_db_write("nobody-cares")
        drain(platform)
        assert platform.records == []
