"""Integration-style unit tests for the baseline platforms."""

import pytest

from repro.config import default_parameters
from repro.errors import FunctionNotFoundError, PlatformError
from repro.platforms import (MODE_COLD, MODE_SNAPSHOT, MODE_WARM,
                             FirecrackerPlatform,
                             FirecrackerSnapshotPlatform, GVisorPlatform,
                             OpenWhiskPlatform)
from repro.sim import Simulation
from repro.snapshot.image import STAGE_OS, STAGE_POST_JIT, STAGE_POST_LOAD
from repro.workloads import faasdom_spec
from tests.helpers import run


@pytest.fixture
def params():
    return default_parameters()


@pytest.fixture
def spec():
    return faasdom_spec("faas-fact", "nodejs")


def _installed(platform_cls, params, spec, **kwargs):
    sim = Simulation()
    platform = platform_cls(sim, params, **kwargs)
    run(sim, platform.install(spec))
    return platform


class TestRegistry:
    def test_invoke_uninstalled_raises(self, params, spec):
        sim = Simulation()
        platform = OpenWhiskPlatform(sim, params)
        with pytest.raises(FunctionNotFoundError):
            run(sim, platform.invoke("ghost"))

    def test_double_install_raises(self, params, spec):
        platform = _installed(OpenWhiskPlatform, params, spec)
        with pytest.raises(PlatformError):
            run(platform.sim, platform.install(spec))

    def test_failed_backend_install_rolls_back(self, params, spec):
        """A backend failure must not leave a half-installed function
        registered — the install should be retryable."""
        class FlakyInstall(OpenWhiskPlatform):
            fail_next = True

            def _install_backend(self, spec, host):
                yield from super()._install_backend(spec, host)
                if FlakyInstall.fail_next:
                    FlakyInstall.fail_next = False
                    raise PlatformError("disk full")

        sim = Simulation()
        platform = FlakyInstall(sim, params)
        with pytest.raises(PlatformError, match="disk full"):
            run(sim, platform.install(spec))
        assert spec.name not in platform.installed_functions()
        # Rollback means the retry is not rejected as a double install.
        run(sim, platform.install(spec))
        assert spec.name in platform.installed_functions()

    def test_installed_functions_listed(self, params, spec):
        platform = _installed(OpenWhiskPlatform, params, spec)
        assert platform.installed_functions() == (spec.name,)


class TestOpenWhisk:
    def test_cold_then_warm(self, params, spec):
        platform = _installed(OpenWhiskPlatform, params, spec)
        cold = run(platform.sim, platform.invoke(spec.name))
        warm = run(platform.sim, platform.invoke(spec.name))
        assert cold.mode == MODE_COLD
        assert warm.mode == MODE_WARM
        assert warm.startup_ms < cold.startup_ms / 20
        assert platform.cold_starts == 1
        assert platform.warm_starts == 1

    def test_warm_keeps_jit_state(self, params, spec):
        """OpenWhisk reuses the runtime process: V8 state survives, so the
        warm execution is faster than the cold one (it re-used JITted
        code)."""
        platform = _installed(OpenWhiskPlatform, params, spec)
        cold = run(platform.sim, platform.invoke(spec.name))
        warm = run(platform.sim, platform.invoke(spec.name))
        assert warm.exec_ms < cold.exec_ms

    def test_keepalive_expiry_forces_cold(self, params, spec):
        platform = _installed(OpenWhiskPlatform, params, spec)
        run(platform.sim, platform.invoke(spec.name))
        keepalive = params.control_plane.warm_keepalive_ms
        platform.sim.run(until=platform.sim.now + keepalive + 1)
        record = run(platform.sim, platform.invoke(spec.name))
        assert record.mode == MODE_COLD
        assert platform.cold_starts == 2

    def test_forced_warm_without_pool_raises(self, params, spec):
        platform = _installed(OpenWhiskPlatform, params, spec)
        with pytest.raises(PlatformError, match="warm pool is empty"):
            run(platform.sim, platform.invoke(spec.name, mode=MODE_WARM))


class TestFirecracker:
    def test_cold_start_is_slowest(self, params, spec):
        fc = _installed(FirecrackerPlatform, params, spec)
        ow = _installed(OpenWhiskPlatform, params, spec)
        gv = _installed(GVisorPlatform, params, spec)
        fc_cold = run(fc.sim, fc.invoke(spec.name, mode=MODE_COLD))
        ow_cold = run(ow.sim, ow.invoke(spec.name, mode=MODE_COLD))
        gv_cold = run(gv.sim, gv.invoke(spec.name, mode=MODE_COLD))
        assert fc_cold.startup_ms > gv_cold.startup_ms > ow_cold.startup_ms

    def test_warm_via_paused_vm(self, params, spec):
        platform = _installed(FirecrackerPlatform, params, spec)
        run(platform.sim, platform.provision_warm(spec.name))
        record = run(platform.sim, platform.invoke(spec.name,
                                                   mode=MODE_WARM))
        assert record.mode == MODE_WARM
        assert record.startup_ms == pytest.approx(
            params.latency("microvm").resume_paused_ms)

    def test_warm_exec_still_jits(self, params, spec):
        """§5.1: the warm sandbox was installed but never executed, so the
        first run still pays JIT warm-up."""
        platform = _installed(FirecrackerPlatform, params, spec)
        run(platform.sim, platform.provision_warm(spec.name))
        warm = run(platform.sim, platform.invoke(spec.name, mode=MODE_WARM))
        assert warm.guest.jit_compile_ms > 0

    def test_worker_torn_down_after_invoke(self, params, spec):
        platform = _installed(FirecrackerPlatform, params, spec)
        run(platform.sim, platform.invoke(spec.name))
        platform.sim.run()
        assert platform.host_memory.used_mb == 0

    def test_retained_workers_keep_memory(self, params, spec):
        platform = _installed(FirecrackerPlatform, params, spec)
        platform.retain_workers = True
        run(platform.sim, platform.invoke(spec.name))
        assert platform.host_memory.used_mb > 100
        assert len(platform.active_workers) == 1

    def test_chains_unsupported(self, params):
        from repro.workloads import alexa_skills_chain
        chain = alexa_skills_chain()
        sim = Simulation()
        platform = FirecrackerPlatform(sim, params)
        for fn_spec in chain.functions:
            run(sim, platform.install(fn_spec))
        with pytest.raises(PlatformError, match="chain"):
            run(sim, platform.invoke(chain.entry, payload={"skill": "fact"}))


class TestFirecrackerSnapshot:
    def test_post_jit_stage_rejected(self, params):
        sim = Simulation()
        with pytest.raises(PlatformError, match="post-JIT"):
            FirecrackerSnapshotPlatform(sim, params, stage=STAGE_POST_JIT)

    def test_os_stage_invocation(self, params, spec):
        platform = _installed(FirecrackerSnapshotPlatform, params, spec,
                              stage=STAGE_OS)
        record = run(platform.sim, platform.invoke(spec.name))
        assert record.mode == MODE_SNAPSHOT
        # Startup includes app load but not runtime launch or OS boot.
        cfg = params.runtime("nodejs")
        assert record.startup_ms > cfg.app_load_base_ms
        assert record.startup_ms < 700
        # Without post-JIT, execution still pays the V8 warm-up.
        assert record.guest.jit_compile_ms > 0

    def test_post_load_stage_skips_app_load(self, params, spec):
        os_platform = _installed(FirecrackerSnapshotPlatform, params, spec,
                                 stage=STAGE_OS)
        load_platform = _installed(FirecrackerSnapshotPlatform, params,
                                   spec, stage=STAGE_POST_LOAD)
        os_rec = run(os_platform.sim, os_platform.invoke(spec.name))
        load_rec = run(load_platform.sim, load_platform.invoke(spec.name))
        assert load_rec.startup_ms < os_rec.startup_ms

    def test_invoke_without_install_raises(self, params, spec):
        sim = Simulation()
        platform = FirecrackerSnapshotPlatform(sim, params, stage=STAGE_OS)
        platform._specs[spec.name] = spec  # bypass install
        with pytest.raises(PlatformError, match="no snapshot"):
            run(sim, platform.invoke(spec.name))


class TestGVisor:
    def test_io_heavy_exec_slowest(self, params):
        diskio = faasdom_spec("faas-diskio", "nodejs")
        gv = _installed(GVisorPlatform, params, diskio)
        fc = _installed(FirecrackerPlatform, params, diskio)
        gv_rec = run(gv.sim, gv.invoke(diskio.name, mode=MODE_COLD))
        fc_rec = run(fc.sim, fc.invoke(diskio.name, mode=MODE_COLD))
        assert gv_rec.exec_ms > 5 * fc_rec.exec_ms

    def test_warm_provisioning(self, params, spec):
        platform = _installed(GVisorPlatform, params, spec)
        run(platform.sim, platform.provision_warm(spec.name))
        record = run(platform.sim, platform.invoke(spec.name,
                                                   mode=MODE_WARM))
        assert record.startup_ms == pytest.approx(
            params.latency("gvisor").resume_paused_ms)


class TestInvocationRecord:
    def test_breakdown_sums_to_total(self, params, spec):
        platform = _installed(OpenWhiskPlatform, params, spec)
        record = run(platform.sim, platform.invoke(spec.name))
        assert record.total_ms == pytest.approx(
            record.startup_ms + record.exec_ms + record.other_ms)

    def test_records_accumulate(self, params, spec):
        platform = _installed(OpenWhiskPlatform, params, spec)
        run(platform.sim, platform.invoke(spec.name))
        run(platform.sim, platform.invoke(spec.name))
        assert len(platform.records) == 2

    def test_table1_row(self, params, spec):
        platform = _installed(FirecrackerPlatform, params, spec)
        row = platform.table1_row()
        assert row["isolation"] == "High (VM)"
        assert row["platform"] == "firecracker"
