"""Unit tests for IP/MAC value objects and allocators."""

import pytest

from repro.errors import NetworkError
from repro.net.address import (IpAddress, IpAllocator, MacAddress,
                               MacAllocator, ip_range)


class TestIpAddress:
    def test_parse_and_render(self):
        ip = IpAddress.parse("172.17.0.1")
        assert str(ip) == "172.17.0.1"
        assert ip.value == (172 << 24) | (17 << 16) | 1

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "a.b.c.d",
                                     "256.0.0.1", "-1.0.0.0"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(NetworkError):
            IpAddress.parse(bad)

    def test_equality_means_conflict(self):
        assert IpAddress.parse("10.0.0.1") == IpAddress.parse("10.0.0.1")
        assert IpAddress.parse("10.0.0.1") != IpAddress.parse("10.0.0.2")

    def test_out_of_range_value(self):
        with pytest.raises(NetworkError):
            IpAddress(2**32)

    def test_ordering(self):
        assert IpAddress.parse("10.0.0.1") < IpAddress.parse("10.0.0.2")


class TestMacAddress:
    def test_render(self):
        assert str(MacAddress(0x02F17E000001)) == "02:f1:7e:00:00:01"

    def test_out_of_range(self):
        with pytest.raises(NetworkError):
            MacAddress(2**48)


class TestAllocators:
    def test_ip_allocator_unique(self):
        allocator = IpAllocator()
        ips = {allocator.allocate() for _ in range(100)}
        assert len(ips) == 100
        assert allocator.allocated() == 100

    def test_ip_pool_exhaustion(self):
        allocator = IpAllocator(count=2)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(NetworkError):
            allocator.allocate()

    def test_mac_allocator_unique(self):
        allocator = MacAllocator()
        macs = {allocator.allocate() for _ in range(100)}
        assert len(macs) == 100

    def test_ip_range(self):
        ips = list(ip_range("10.0.0.250", 3))
        assert [str(ip) for ip in ips] == \
            ["10.0.0.250", "10.0.0.251", "10.0.0.252"]
