"""Unit tests for network namespaces — §3.5's conflict-isolation property."""

import pytest

from repro.errors import AddressConflictError, NetworkError
from repro.net.address import IpAddress, MacAddress
from repro.net.namespace import NamespaceManager, NetworkNamespace

GUEST_IP = IpAddress.parse("10.0.0.2")
GUEST_MAC = MacAddress(0x02F17E000001)


class TestNamespace:
    def test_duplicate_tap_in_one_namespace_conflicts(self):
        ns = NetworkNamespace("ns1")
        ns.create_tap("tap0")
        with pytest.raises(AddressConflictError):
            ns.create_tap("tap0")

    def test_same_tap_name_across_namespaces_ok(self):
        """§3.5: every clone names its device tap0 — no conflict across
        namespaces."""
        ns1, ns2 = NetworkNamespace("ns1"), NetworkNamespace("ns2")
        ns1.create_tap("tap0")
        ns2.create_tap("tap0")  # must not raise

    def test_duplicate_ip_in_one_namespace_conflicts(self):
        ns = NetworkNamespace("ns1")
        ns.create_tap("tap0")
        ns.create_tap("tap1")
        ns.bind("tap0", GUEST_IP, GUEST_MAC)
        with pytest.raises(AddressConflictError):
            ns.bind("tap1", GUEST_IP, MacAddress(0x02F17E000002))

    def test_duplicate_mac_in_one_namespace_conflicts(self):
        ns = NetworkNamespace("ns1")
        ns.create_tap("tap0")
        ns.create_tap("tap1")
        ns.bind("tap0", GUEST_IP, GUEST_MAC)
        with pytest.raises(AddressConflictError):
            ns.bind("tap1", IpAddress.parse("10.0.0.3"), GUEST_MAC)

    def test_same_guest_identity_across_namespaces_ok(self):
        """The core §3.5 property: identical snapshotted IP+MAC coexist."""
        for name in ("ns1", "ns2", "ns3"):
            ns = NetworkNamespace(name)
            ns.create_tap("tap0")
            ns.bind("tap0", GUEST_IP, GUEST_MAC)  # must not raise
            assert ns.is_bound(GUEST_IP)

    def test_bind_to_missing_device_raises(self):
        ns = NetworkNamespace("ns1")
        with pytest.raises(NetworkError):
            ns.bind("tap9", GUEST_IP, GUEST_MAC)


class TestNamespaceManager:
    def test_auto_names_are_unique(self):
        manager = NamespaceManager()
        names = {manager.create().name for _ in range(10)}
        assert len(names) == 10
        assert len(manager) == 10

    def test_explicit_duplicate_name_raises(self):
        manager = NamespaceManager()
        manager.create("x")
        with pytest.raises(NetworkError):
            manager.create("x")

    def test_destroy(self):
        manager = NamespaceManager()
        manager.create("x")
        manager.destroy("x")
        assert len(manager) == 0
        with pytest.raises(NetworkError):
            manager.destroy("x")

    def test_get(self):
        manager = NamespaceManager()
        ns = manager.create("x")
        assert manager.get("x") is ns
        with pytest.raises(NetworkError):
            manager.get("y")
