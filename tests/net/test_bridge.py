"""Unit tests for the host bridge (Figure 5 end-to-end path)."""

import pytest

from repro.errors import NetworkError
from repro.net.address import IpAddress, MacAddress
from repro.net.bridge import HostBridge
from repro.net.nat import Packet

GUEST_IP = IpAddress.parse("10.0.0.2")
GUEST_MAC = MacAddress(0x02F17E000001)
CLIENT = IpAddress.parse("192.168.1.9")


@pytest.fixture
def bridge():
    return HostBridge()


class TestConnectivity:
    def test_two_clones_same_identity(self, bridge):
        """The Figure 5 scenario: two microVMs from the same snapshot."""
        ep1 = bridge.connect_guest(GUEST_IP, GUEST_MAC)
        ep2 = bridge.connect_guest(GUEST_IP, GUEST_MAC)
        assert ep1.external_ip != ep2.external_ip
        assert ep1.namespace.name != ep2.namespace.name
        assert ep1.tap.name == ep2.tap.name == "tap0"

    def test_ingress_reaches_right_guest(self, bridge):
        ep1 = bridge.connect_guest(GUEST_IP, GUEST_MAC)
        ep2 = bridge.connect_guest(GUEST_IP, GUEST_MAC)
        packet = Packet(src=CLIENT, dst=ep2.external_ip)
        delivered = bridge.deliver(packet)
        assert delivered.dst == GUEST_IP
        assert ep2.tap.rx_packets == 1
        assert ep1.tap.rx_packets == 0

    def test_reply_snat(self, bridge):
        endpoint = bridge.connect_guest(GUEST_IP, GUEST_MAC)
        reply = Packet(src=GUEST_IP, dst=CLIENT)
        outbound = bridge.emit(endpoint.external_ip, reply)
        assert outbound.src == endpoint.external_ip
        assert endpoint.tap.tx_packets == 1

    def test_emit_with_wrong_source_raises(self, bridge):
        endpoint = bridge.connect_guest(GUEST_IP, GUEST_MAC)
        with pytest.raises(NetworkError):
            bridge.emit(endpoint.external_ip, Packet(src=CLIENT, dst=CLIENT))

    def test_unrouted_packet_raises(self, bridge):
        with pytest.raises(NetworkError):
            bridge.deliver(Packet(src=CLIENT, dst=CLIENT))

    def test_full_round_trip(self, bridge):
        endpoint = bridge.connect_guest(GUEST_IP, GUEST_MAC)
        request = Packet(src=CLIENT, dst=endpoint.external_ip, note="GET /")
        inbound = bridge.deliver(request)
        reply = Packet(src=GUEST_IP, dst=inbound.src, note="200 OK")
        outbound = bridge.emit(endpoint.external_ip, reply)
        assert outbound.src == endpoint.external_ip
        assert outbound.dst == CLIENT
        assert outbound.note == "200 OK"


class TestLifecycle:
    def test_disconnect_releases_route_and_namespace(self, bridge):
        endpoint = bridge.connect_guest(GUEST_IP, GUEST_MAC)
        assert bridge.endpoint_count() == 1
        bridge.disconnect(endpoint)
        assert bridge.endpoint_count() == 0
        assert len(bridge.namespaces) == 0
        with pytest.raises(NetworkError):
            bridge.disconnect(endpoint)

    def test_many_clones_scale(self, bridge):
        endpoints = [bridge.connect_guest(GUEST_IP, GUEST_MAC)
                     for _ in range(50)]
        assert len({e.external_ip for e in endpoints}) == 50
        assert bridge.endpoint_count() == 50

    def test_fresh_guest_addresses_unique(self, bridge):
        pairs = [bridge.allocate_guest_addresses() for _ in range(20)]
        assert len({ip for ip, _ in pairs}) == 20
        assert len({mac for _, mac in pairs}) == 20
