"""Unit tests for NAT tables (Figure 5 packet rewriting)."""

import pytest

from repro.errors import NetworkError
from repro.net.address import IpAddress
from repro.net.nat import NatTable, Packet

GUEST = IpAddress.parse("10.0.0.2")       # A.A.A.A
EXTERNAL = IpAddress.parse("10.128.0.2")  # B.B.B.B
CLIENT = IpAddress.parse("192.168.1.9")


@pytest.fixture
def nat():
    table = NatTable("ns1")
    table.add_rule(EXTERNAL, GUEST)
    return table


class TestTranslation:
    def test_ingress_dnat(self, nat):
        packet = Packet(src=CLIENT, dst=EXTERNAL)
        translated = nat.translate_ingress(packet)
        assert translated.dst == GUEST
        assert translated.src == CLIENT

    def test_egress_snat(self, nat):
        reply = Packet(src=GUEST, dst=CLIENT)
        translated = nat.translate_egress(reply)
        assert translated.src == EXTERNAL
        assert translated.dst == CLIENT

    def test_round_trip_preserves_payload(self, nat):
        packet = Packet(src=CLIENT, dst=EXTERNAL, payload_kb=1.5,
                        note="req")
        inbound = nat.translate_ingress(packet)
        reply = Packet(src=GUEST, dst=inbound.src, payload_kb=1.5,
                       note="req")
        outbound = nat.translate_egress(reply)
        assert outbound.payload_kb == 1.5
        assert outbound.note == "req"

    def test_unknown_destination_raises(self, nat):
        with pytest.raises(NetworkError):
            nat.translate_ingress(Packet(src=CLIENT, dst=CLIENT))

    def test_unknown_source_raises(self, nat):
        with pytest.raises(NetworkError):
            nat.translate_egress(Packet(src=CLIENT, dst=CLIENT))


class TestRules:
    def test_duplicate_external_raises(self, nat):
        with pytest.raises(NetworkError):
            nat.add_rule(EXTERNAL, IpAddress.parse("10.0.0.3"))

    def test_duplicate_internal_raises(self, nat):
        with pytest.raises(NetworkError):
            nat.add_rule(IpAddress.parse("10.128.0.3"), GUEST)

    def test_remove_rule(self, nat):
        nat.remove_rule(EXTERNAL)
        assert nat.rule_count() == 0
        with pytest.raises(NetworkError):
            nat.remove_rule(EXTERNAL)

    def test_external_for(self, nat):
        assert nat.external_for(GUEST) == EXTERNAL
        with pytest.raises(NetworkError):
            nat.external_for(CLIENT)
