"""Placement policies driving the real invoke path."""

import pytest

from repro.bench import fresh_cluster_platform, install_all, invoke_once
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.platforms.scheduler import (POLICY_HASH, POLICY_ROUND_ROBIN,
                                       home_index)
from repro.workloads import faasdom_spec


@pytest.fixture
def spec():
    return faasdom_spec("faas-netlatency", "nodejs")


class TestPolicyOnInvokePath:
    def test_hash_concentrates_warm_hits(self, spec):
        platform = fresh_cluster_platform(OpenWhiskPlatform, n_hosts=4,
                                          policy=POLICY_HASH)
        install_all(platform, [spec])
        for _ in range(4):
            invoke_once(platform, spec.name)
        assert platform.cold_starts == 1
        assert platform.warm_starts == 3

    def test_round_robin_pays_cold_start_per_host(self, spec):
        platform = fresh_cluster_platform(OpenWhiskPlatform, n_hosts=4,
                                          policy=POLICY_ROUND_ROBIN)
        install_all(platform, [spec])
        for _ in range(4):
            invoke_once(platform, spec.name)
        # Each request lands on a different host's (empty) warm pool.
        assert platform.cold_starts == 4
        assert platform.warm_starts == 0

    def test_capacity_overflow_fails_over_to_next_host(self, spec):
        platform = fresh_cluster_platform(OpenWhiskPlatform, n_hosts=2,
                                          policy=POLICY_HASH,
                                          capacity_per_host=1)
        install_all(platform, [spec])
        sim = platform.sim
        # Two concurrent requests: hash sends both to the home host, but
        # its single slot is taken, so the second probes the next host.
        processes = [sim.process(platform.invoke(spec.name))
                     for _ in range(2)]
        sim.run()
        hosts = sorted(p.value.host_id for p in processes)
        assert hosts == [0, 1]
        assert all(h.assigned_total == 1 for h in platform.cluster.hosts)
        assert platform.cluster.total_active() == 0

    def test_placement_span_records_host_and_policy(self, spec):
        platform = fresh_cluster_platform(OpenWhiskPlatform, n_hosts=4,
                                          policy=POLICY_HASH)
        install_all(platform, [spec])
        record = invoke_once(platform, spec.name)
        placement = record.span.find("placement")
        assert placement.attrs["policy"] == POLICY_HASH
        assert placement.attrs["host"] == home_index(spec.name, 4)
        assert placement.attrs["host"] == record.host_id

    def test_single_host_default_places_on_host_zero(self, spec):
        platform = fresh_cluster_platform(OpenWhiskPlatform)
        install_all(platform, [spec])
        record = invoke_once(platform, spec.name)
        assert record.host_id == 0
        assert record.span.find("placement").attrs["host"] == 0
