"""Unit tests for Host and Cluster bookkeeping."""

import pytest

from repro.cluster import Cluster, Host
from repro.config import default_parameters
from repro.errors import PlatformError, ValidationError
from repro.platforms.scheduler import (POLICY_ROUND_ROBIN,
                                       POLICY_SNAPSHOT_LOCALITY, home_index)
from repro.sim import Simulation


@pytest.fixture
def params():
    return default_parameters()


@pytest.fixture
def sim():
    return Simulation()


class TestHost:
    def test_owns_its_resources(self, sim, params):
        host = Host(sim, params, host_id=3)
        assert host.node_id == 3
        assert host.memory is not Host(sim, params, host_id=4).memory
        assert host.store.device.name == "host3-ssd"
        assert host.cpu is None  # unbounded unless cores are given

    def test_capacity_validation(self, sim, params):
        with pytest.raises(PlatformError, match="capacity"):
            Host(sim, params, capacity=0)

    def test_assign_release_counting(self, sim, params):
        host = Host(sim, params, capacity=2)
        host.assign("fn")
        host.assign("fn")
        assert not host.has_room
        with pytest.raises(PlatformError, match="over capacity"):
            host.assign("fn")
        host.release()
        assert host.has_room
        assert host.assigned_total == 2
        assert host.per_function["fn"] == 2

    def test_release_below_zero_raises(self, sim, params):
        host = Host(sim, params)
        with pytest.raises(PlatformError, match="below zero"):
            host.release()


class TestCluster:
    def test_validation(self, sim, params):
        with pytest.raises(PlatformError, match=">= 1 host"):
            Cluster(sim, params, n_hosts=0)
        with pytest.raises(ValidationError, match="unknown placement"):
            Cluster(sim, params, policy="random")
        with pytest.raises(PlatformError, match="no host 7"):
            Cluster(sim, params, n_hosts=2).host(7)

    def test_home_host_is_stable_hash(self, sim, params):
        cluster = Cluster(sim, params, n_hosts=4)
        assert cluster.home_host("fn-00").host_id == home_index("fn-00", 4)
        assert cluster.home_host("fn-00") is cluster.home_host("fn-00")

    def test_place_finish_bookkeeping(self, sim, params):
        cluster = Cluster(sim, params, n_hosts=3,
                          policy=POLICY_ROUND_ROBIN)
        first = cluster.place("fn")
        second = cluster.place("fn")
        assert {first.host_id, second.host_id} == {0, 1}
        assert cluster.total_active() == 2
        assert cluster.placements == 2
        cluster.finish(first)
        cluster.finish(second)
        assert cluster.total_active() == 0
        assert cluster.load_spread() == 1  # hosts 0,1 got one each

    def test_snapshot_locality_consults_callback(self, sim, params):
        cluster = Cluster(sim, params, n_hosts=4,
                          policy=POLICY_SNAPSHOT_LOCALITY)
        resident = cluster.place("fn", locality=lambda h: h.host_id == 2)
        assert resident.host_id == 2
        cluster.finish(resident)
        # No resident host: falls back to the hash home.
        fallback = cluster.place("fn", locality=lambda h: False)
        assert fallback.host_id == home_index("fn", 4)
