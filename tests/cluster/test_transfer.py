"""Cross-host snapshot transfer on the Fireworks platform."""

import pytest

from repro.bench import fresh_cluster_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.platforms.scheduler import POLICY_ROUND_ROBIN, home_index
from repro.workloads import faasdom_spec


@pytest.fixture
def spec():
    return faasdom_spec("faas-netlatency", "nodejs")


@pytest.fixture
def platform(spec):
    platform = fresh_cluster_platform(FireworksPlatform, n_hosts=2,
                                      policy=POLICY_ROUND_ROBIN)
    install_all(platform, [spec])
    return platform


class TestCrossHostTransfer:
    def test_install_seeds_only_the_home_host(self, platform, spec):
        home = home_index(spec.name, 2)
        assert platform.cluster.host(home).store.contains(spec.name)
        assert not platform.cluster.host(1 - home).store.contains(spec.name)

    def test_miss_on_other_host_pays_one_transfer(self, platform, spec):
        # Round-robin alternates hosts; one of the first two requests
        # lands off the home host and must copy the image across.
        invoke_once(platform, spec.name)
        invoke_once(platform, spec.name)
        assert platform.cross_host_transfers == 1
        assert platform.local_restores == 1
        # The replica is now resident, so the next round is all-local.
        invoke_once(platform, spec.name)
        invoke_once(platform, spec.name)
        assert platform.cross_host_transfers == 1
        assert platform.local_restores == 3

    def test_transfer_span_records_route_and_cost(self, platform, spec):
        home = home_index(spec.name, 2)
        first = invoke_once(platform, spec.name)
        second = invoke_once(platform, spec.name)
        transferred = second if home == 0 else first
        transfer = transferred.span.find("snapshot-transfer")
        assert transfer is not None
        assert transfer.attrs["src"] == home
        assert transfer.attrs["dst"] == 1 - home
        cfg = platform.params.cluster
        expected = (cfg.snapshot_transfer_base_ms
                    + cfg.snapshot_transfer_per_mb_ms
                    * transfer.attrs["size_mb"])
        assert transfer.duration_ms == pytest.approx(expected)
        # The local restore on the other host never paid a transfer.
        local = first if home == 0 else second
        assert local.span.find("snapshot-transfer") is None

    def test_replica_shares_key_and_generation(self, platform, spec):
        invoke_once(platform, spec.name)
        invoke_once(platform, spec.name)
        home = home_index(spec.name, 2)
        original = platform.cluster.host(home).store.get(spec.name)
        replica = platform.cluster.host(1 - home).store.get(spec.name)
        assert replica is not original
        assert replica.key == original.key
        assert replica.generation == original.generation
