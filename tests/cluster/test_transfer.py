"""Cross-host snapshot transfer on the Fireworks platform."""

import dataclasses

import pytest

from repro.bench import fresh_cluster_platform, install_all, invoke_once
from repro.config import default_parameters
from repro.core import FireworksPlatform
from repro.errors import HostDownError
from repro.platforms.scheduler import POLICY_ROUND_ROBIN, home_index
from repro.workloads import faasdom_spec


@pytest.fixture
def spec():
    return faasdom_spec("faas-netlatency", "nodejs")


@pytest.fixture
def platform(spec):
    platform = fresh_cluster_platform(FireworksPlatform, n_hosts=2,
                                      policy=POLICY_ROUND_ROBIN)
    install_all(platform, [spec])
    return platform


class TestCrossHostTransfer:
    def test_install_seeds_only_the_home_host(self, platform, spec):
        home = home_index(spec.name, 2)
        assert platform.cluster.host(home).store.contains(spec.name)
        assert not platform.cluster.host(1 - home).store.contains(spec.name)

    def test_miss_on_other_host_pays_one_transfer(self, platform, spec):
        # Round-robin alternates hosts; one of the first two requests
        # lands off the home host and must copy the image across.
        invoke_once(platform, spec.name)
        invoke_once(platform, spec.name)
        assert platform.cross_host_transfers == 1
        assert platform.local_restores == 1
        # The replica is now resident, so the next round is all-local.
        invoke_once(platform, spec.name)
        invoke_once(platform, spec.name)
        assert platform.cross_host_transfers == 1
        assert platform.local_restores == 3

    def test_transfer_span_records_route_and_cost(self, platform, spec):
        home = home_index(spec.name, 2)
        first = invoke_once(platform, spec.name)
        second = invoke_once(platform, spec.name)
        transferred = second if home == 0 else first
        transfer = transferred.span.find("snapshot-transfer")
        assert transfer is not None
        assert transfer.attrs["src"] == home
        assert transfer.attrs["dst"] == 1 - home
        cfg = platform.params.cluster
        expected = (cfg.snapshot_transfer_base_ms
                    + cfg.snapshot_transfer_per_mb_ms
                    * transfer.attrs["size_mb"])
        assert transfer.duration_ms == pytest.approx(expected)
        # The local restore on the other host never paid a transfer.
        local = first if home == 0 else second
        assert local.span.find("snapshot-transfer") is None

    def test_replica_shares_key_and_generation(self, platform, spec):
        invoke_once(platform, spec.name)
        invoke_once(platform, spec.name)
        home = home_index(spec.name, 2)
        original = platform.cluster.host(home).store.get(spec.name)
        replica = platform.cluster.host(1 - home).store.get(spec.name)
        assert replica is not original
        assert replica.key == original.key
        assert replica.generation == original.generation


def _off_home_host(platform, spec):
    """The first host that does not hold *spec*'s image yet."""
    return next(host for host in platform.cluster.hosts
                if not host.store.contains(spec.name))


class TestTransferRace:
    """Regression: the post-transfer world must be re-checked after the
    network wait — a concurrent transfer or a host crash during the copy
    used to clobber the landed replica / seed a dead host's store."""

    def test_concurrent_transfers_land_one_replica(self, platform, spec):
        sim = platform.sim
        off = _off_home_host(platform, spec)
        results = []

        def fetch():
            image = yield from platform._fetch_image_to_host(spec.name, off)
            results.append(image)

        sim.process(fetch(), name="fetch-a")
        sim.process(fetch(), name="fetch-b")
        sim.run()
        # One transfer pays; the loser adopts the landed replica instead
        # of clobbering it and double counting.
        assert platform.cross_host_transfers == 1
        assert platform.duplicate_transfers == 1
        assert len(results) == 2
        assert results[0] is results[1]
        assert off.store.get(spec.name) is results[0]

    def test_host_down_mid_transfer_raises_and_does_not_seed_store(
            self, platform, spec):
        sim = platform.sim
        off = _off_home_host(platform, spec)
        errors = []

        def fetch():
            try:
                yield from platform._fetch_image_to_host(spec.name, off)
            except HostDownError as error:
                errors.append(error)

        def crash():
            yield sim.timeout(1.0)  # well inside the transfer window
            off.mark_down(sim.now)

        sim.process(fetch(), name="fetch")
        sim.process(crash(), name="crash")
        sim.run()
        assert len(errors) == 1
        assert errors[0].host_id == off.host_id
        assert errors[0].stage == "snapshot-transfer"
        # The dead host's store must NOT hold a replica that would
        # silently survive its recovery.
        assert not off.store.contains(spec.name)
        assert platform.cross_host_transfers == 0


@pytest.fixture
def streaming_platform(spec):
    """3-host round-robin cluster with streaming transfers enabled and a
    recorded working-set profile (one completed invocation)."""
    params = default_parameters()
    tuned = dataclasses.replace(
        params, cluster=dataclasses.replace(params.cluster,
                                            stream_transfers=True))
    platform = fresh_cluster_platform(FireworksPlatform, tuned, n_hosts=3,
                                      policy=POLICY_ROUND_ROBIN)
    install_all(platform, [spec])
    invoke_once(platform, spec.name)  # records the working-set profile
    platform.sim.run()  # drain any background residual from that invoke
    return platform


class TestStreamingTransfer:
    def test_working_set_lands_first_then_residual(self, streaming_platform,
                                                   spec):
        platform = streaming_platform
        sim = platform.sim
        target = _off_home_host(platform, spec)
        image = platform.image_for(spec.name)
        ws_mb = platform._transfer_working_set_mb(image)
        assert ws_mb is not None and 0 < ws_mb < image.size_mb

        proc = sim.process(platform._fetch_image_to_host(spec.name, target),
                           name="fetch")
        sim.run(proc)
        # The fetch returned as soon as the working set landed: the
        # replica is resident but partial, residual still in flight.
        assert target.store.contains(spec.name)
        assert not target.store.is_complete(spec.name)
        assert target.store.resident_mb(spec.name) == pytest.approx(ws_mb)
        assert platform.streamed_transfers == 1
        before_background = platform.transfer_background_mb
        sim.run()
        assert target.store.is_complete(spec.name)
        assert platform.transfer_background_mb - before_background == \
            pytest.approx(image.size_mb - ws_mb)

    def test_streamed_invoke_span_shape(self, streaming_platform, spec):
        platform = streaming_platform
        for _ in range(3):
            record = invoke_once(platform, spec.name)
            transfer = record.span.find("snapshot-transfer")
            if transfer is not None and transfer.attrs.get("streamed"):
                break
        else:
            pytest.fail("no streamed transfer in three invocations")
        ws = transfer.find("transfer-working-set")
        assert ws is not None
        assert 0 < ws.attrs["mb"] < transfer.attrs["size_mb"]
        assert transfer.attrs["foreground_mb"] == ws.attrs["mb"]
        cfg = platform.params.cluster
        assert transfer.duration_ms == pytest.approx(
            cfg.snapshot_transfer_base_ms
            + ws.attrs["mb"] * cfg.snapshot_transfer_per_mb_ms)
        platform.sim.run()  # drain the background residual cleanly

    def test_residual_abandoned_when_host_dies(self, streaming_platform,
                                               spec):
        platform = streaming_platform
        sim = platform.sim
        target = _off_home_host(platform, spec)
        before_background = platform.transfer_background_mb
        proc = sim.process(platform._fetch_image_to_host(spec.name, target),
                           name="fetch")
        sim.run(proc)
        target.mark_down(sim.now)
        sim.run()
        # The background stream noticed the crash and landed nothing.
        assert platform.transfer_background_mb == before_background
        assert not target.store.is_complete(spec.name)

    def test_residual_abandoned_when_replica_evicted(self, streaming_platform,
                                                     spec):
        platform = streaming_platform
        sim = platform.sim
        target = _off_home_host(platform, spec)
        before_background = platform.transfer_background_mb
        proc = sim.process(platform._fetch_image_to_host(spec.name, target),
                           name="fetch")
        sim.run(proc)
        target.store.remove(spec.name)
        sim.run()
        assert platform.transfer_background_mb == before_background
        assert not target.store.contains(spec.name)
