"""Smoke tests: every example script runs clean and says what it should.

Examples are documentation; these tests keep them from rotting.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> a string its output must contain
EXPECTED_OUTPUT = {
    "quickstart.py": "invocation phase",
    "faasdom_comparison.py": "fireworks (both)",
    "alexa_chain.py": "deopts",
    "consolidation.py": "microVMs vs Firecracker",
    "annotate_source.py": "__fireworks_main",
    "custom_function.py": "act-acme-shop",
    "fault_tolerance.py": "invocation still succeeded",
    "sensitivity_analysis.py": "cold_start_speedup_x",
}


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_OUTPUT), (
        "examples/ and EXPECTED_OUTPUT drifted apart")


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert EXPECTED_OUTPUT[script] in completed.stdout
    assert not completed.stderr.strip()
