"""Unit tests for the pay-as-you-go billing model (§1)."""

import pytest

from repro.billing import (BillingLine, bill_invocation, bill_records,
                           run_billing_analysis)
from repro.errors import PlatformError
from repro.platforms.base import InvocationRecord


def _record(startup=100.0, exec_ms=50.0, other=5.0, function="fn"):
    record = InvocationRecord(function=function, platform="p",
                              mode="cold", submitted_ms=0.0)
    record.startup_ms = startup
    record.exec_ms = exec_ms
    record.other_ms = other
    return record


class TestBillInvocation:
    def test_user_pays_exec_only(self):
        line = bill_invocation(_record(startup=1000.0, exec_ms=50.0))
        assert line.billed_ms == 50.0
        assert line.resource_ms == pytest.approx(1055.0)
        assert line.unbilled_ms == pytest.approx(1005.0)

    def test_granularity_rounds_up(self):
        line = bill_invocation(_record(exec_ms=101.0),
                               granularity_ms=100.0)
        assert line.billed_ms == 200.0

    def test_bad_granularity_raises(self):
        with pytest.raises(PlatformError):
            bill_invocation(_record(), granularity_ms=0)

    def test_charge_scales_with_memory(self):
        small = bill_invocation(_record(), memory_gb=0.5)
        big = bill_invocation(_record(), memory_gb=1.0)
        assert big.charge_usd == pytest.approx(2 * small.charge_usd)


class TestBillRecords:
    def test_chains_flattened(self):
        parent = _record(function="a")
        parent.children.append(_record(function="b"))
        report = bill_records("p", [parent])
        assert {line.function for line in report.lines} == {"a", "b"}

    def test_chains_excluded_on_request(self):
        parent = _record(function="a")
        parent.children.append(_record(function="b"))
        report = bill_records("p", [parent], include_chains=False)
        assert len(report.lines) == 1

    def test_efficiency_bounds(self):
        report = bill_records("p", [_record(startup=0.0, other=0.0)])
        assert report.billable_efficiency == 1.0
        slow = bill_records("p", [_record(startup=10000.0)])
        assert slow.billable_efficiency < 0.01

    def test_empty_report(self):
        report = bill_records("p", [])
        assert report.billable_efficiency == 1.0
        assert report.revenue_usd == 0.0

    def test_as_line_renders(self):
        line = bill_records("fireworks", [_record()]).as_line()
        assert "fireworks" in line and "efficiency" in line


class TestBillingAnalysis:
    @pytest.fixture(scope="class")
    def reports(self):
        return run_billing_analysis(invocations=10, cold_every=3)

    def test_fireworks_efficiency_near_one(self, reports):
        """§1: Fireworks bills almost all of its resource time."""
        assert reports["fireworks"].billable_efficiency > 0.85

    def test_openwhisk_loses_time_to_cold_starts(self, reports):
        assert reports["openwhisk"].billable_efficiency < \
            reports["fireworks"].billable_efficiency - 0.1

    def test_unbilled_time_is_the_startup_gap(self, reports):
        openwhisk = reports["openwhisk"]
        assert openwhisk.unbilled_ms > 0
        assert openwhisk.unbilled_ms == pytest.approx(
            openwhisk.resource_ms - openwhisk.billed_ms)
