"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_scenario_flags(self):
        args = build_parser().parse_args(
            ["run", "paper-tables", "-j", "2", "--no-cache"])
        assert args.figure == "paper-tables"
        assert args.jobs == 2 and args.no_cache

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8177


class TestErrorPaths:
    """Unknown names and bad flags: exit codes + actionable messages."""

    def test_run_rejects_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err
        # The message lists both valid namespaces.
        assert "table1" in err and "fig6" in err       # figure ids
        assert "paper-repro" in err                    # scenario names

    def test_run_rejects_unknown_scenario_name(self, capsys):
        assert main(["run", "paper-reproo"]) == 2
        err = capsys.readouterr().err
        assert "paper-reproo" in err and "paper-repro" in err

    def test_run_rejects_zero_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "paper-tables", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_figure_rejects_zero_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure", "table1", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_run_with_broken_scenario_library_exits_2(
            self, tmp_path, capsys, monkeypatch):
        """A corrupt library file must not turn 'run <typo>' into a
        traceback (regression: ValidationError escaped main())."""
        bad = tmp_path / "scenarios"
        bad.mkdir()
        (bad / "broken.json").write_text("{not json")
        monkeypatch.setenv("REPRO_SCENARIOS", str(bad))
        assert main(["run", "no-such-target"]) == 2
        err = capsys.readouterr().err
        assert "scenario library is broken" in err
        assert "invalid JSON" in err

    def test_run_with_missing_scenario_library_exits_2(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIOS", str(tmp_path / "missing"))
        assert main(["run", "no-such-target"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_run_figure_id_works_despite_broken_library(
            self, tmp_path, capsys, monkeypatch):
        # Figure ids never consult the library, so they keep working.
        monkeypatch.setenv("REPRO_SCENARIOS", str(tmp_path / "missing"))
        assert main(["run", "table1"]) == 0
        assert "High (VM)" in capsys.readouterr().out

    def test_scenarios_with_broken_library_exits_2(
            self, tmp_path, capsys, monkeypatch):
        bad = tmp_path / "scenarios"
        bad.mkdir()
        (bad / "broken.json").write_text("[1, 2]")
        monkeypatch.setenv("REPRO_SCENARIOS", str(bad))
        assert main(["scenarios"]) == 2
        assert "scenario library is broken" in capsys.readouterr().err

    def test_corrupt_cache_blob_recomputes_instead_of_crashing(
            self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "c")]
        assert main(["figure", "table1"] + cache) == 0
        first = capsys.readouterr().out
        # Trash every cache entry the run wrote.
        blobs = list((tmp_path / "c").glob("*/*.bin"))
        assert blobs
        for blob in blobs:
            blob.write_bytes(b"\x00garbage, not a codec payload")
        assert main(["figure", "table1"] + cache) == 0
        second = capsys.readouterr()
        assert second.out == first                 # recomputed, identical
        assert "0 cached, 1 executed" in second.err  # miss, not a crash


class TestCommands:
    def test_figures_lists_everything(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(FIGURES)

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "fireworks" in out
        assert "High (VM)" in out

    def test_run_fig11(self, capsys):
        assert main(["run", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "faas-fact-nodejs" in out
        assert "+post-jit" in out

    def test_run_snapshot_creation(self, capsys):
        assert main(["run", "snapshot-creation"]) == 0
        assert "snapshot=" in capsys.readouterr().out

    def test_annotate_python_file(self, tmp_path, capsys):
        handler = tmp_path / "handler.py"
        handler.write_text("def main(params):\n    return params\n")
        assert main(["annotate", str(handler)]) == 0
        out = capsys.readouterr().out
        assert "@jit(cache=True)" in out
        assert "__fireworks_main" in out

    def test_annotate_js_file(self, tmp_path, capsys):
        handler = tmp_path / "handler.js"
        handler.write_text("function main(p) { return p; }\n")
        assert main(["annotate", str(handler)]) == 0
        assert "%OptimizeFunctionOnNextCall" in capsys.readouterr().out

    def test_burst(self, capsys):
        assert main(["burst", "-n", "16", "-c", "8"]) == 0
        out = capsys.readouterr().out
        assert "fireworks" in out and "p99" in out

    def test_trace_writes_valid_json(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "fig6", "--invocation", "0",
                     "--format", "chrome", "-o", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["traceEvents"]
        names = {event["name"] for event in document["traceEvents"]}
        # The fireworks invocation's stages are all there.
        assert {"invoke", "acquire", "exec", "restore",
                "mmds-write", "param-fetch"} <= names

    def test_trace_tree_format(self, capsys):
        assert main(["trace", "fig6", "--invocation", "5",
                     "--format", "tree"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace ")
        assert "cold-start" in out  # invocation 5 = firecracker cold

    def test_trace_chain_target(self, tmp_path, capsys):
        out_path = tmp_path / "chain.json"
        assert main(["trace", "chain", "-o", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        names = [event["name"] for event in document["traceEvents"]]
        assert names.count("invoke") >= 2  # chain hops nest invoke spans

    def test_trace_rejects_bad_invocation_index(self, capsys):
        assert main(["trace", "fig6", "--invocation", "99"]) == 1
        assert "--invocation" in capsys.readouterr().err

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "ServerlessBench" in capsys.readouterr().out

    def test_run_fig12(self, capsys):
        assert main(["run", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "os-snap" in out
        assert "faas-fact-python" in out

    def test_run_fig10(self, capsys):
        assert main(["run", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "max" in out and "before swapping" in out

    def test_export_command(self, tmp_path, capsys):
        assert main(["export", str(tmp_path), "--only", "fig11"]) == 0
        assert (tmp_path / "fig11.csv").exists()
        assert "wrote" in capsys.readouterr().out

    def test_validate_command(self, capsys):
        assert main(["validate"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_run_scorecard(self, capsys):
        assert main(["run", "scorecard"]) == 0
        out = capsys.readouterr().out
        assert "[OK ]" in out
        assert "[DEV]" not in out


class TestScenarioCommands:
    """`scenarios` and the scenario arm of `run`."""

    def test_scenarios_lists_the_library(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-repro", "paper-tables", "4-host-chaos",
                     "open-loop-load", "restore", "search-smoke"):
            assert name in out

    def test_run_named_scenario(self, tmp_path, capsys):
        assert main(["run", "paper-tables",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        captured = capsys.readouterr()
        assert "== table1 ==" in captured.out
        assert "== table2 ==" in captured.out
        assert "== snapshot-creation ==" in captured.out
        assert "3 shards" in captured.err

    def test_run_scenario_cached_rerun_is_identical(self, tmp_path,
                                                    capsys):
        cache = ["--cache-dir", str(tmp_path / "c")]
        assert main(["run", "paper-tables"] + cache) == 0
        first = capsys.readouterr()
        assert main(["run", "paper-tables"] + cache) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "3 cached" in second.err

    def test_run_figure_still_wins_over_scenarios(self, capsys):
        # Figure ids keep their historical `run` meaning; the scenario
        # library is checked second (and may not shadow figure ids).
        assert main(["run", "table1"]) == 0
        assert "High (VM)" in capsys.readouterr().out


class TestFigureCommand:
    """`figure`: many experiments through the parallel engine + cache."""

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_multiple_ids_one_invocation(self, tmp_path, capsys):
        assert main(["figure", "table1", "fig11",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== table1 ==" in out and "== fig11 ==" in out
        assert "High (VM)" in out           # table1 rendered as with `run`
        assert "faas-fact-nodejs" in out    # fig11 rendered as with `run`

    def test_matches_run_output(self, tmp_path, capsys):
        assert main(["run", "fig10"]) == 0
        via_run = capsys.readouterr().out
        assert main(["figure", "fig10", "--cache-dir", str(tmp_path)]) == 0
        via_figure = capsys.readouterr().out
        assert via_run in via_figure  # same body, plus the == header ==

    def test_cache_roundtrip_same_output(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "c")]
        assert main(["figure", "fig6"] + cache) == 0
        first = capsys.readouterr()
        assert main(["figure", "fig6", "--jobs", "2"] + cache) == 0
        second = capsys.readouterr()
        assert first.out == second.out
        assert "4 cached" in second.err  # all four shards hit the cache

    def test_no_cache_leaves_no_directory(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        assert main(["figure", "table2", "--no-cache",
                     "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()

    def test_extension_experiment(self, tmp_path, capsys):
        assert main(["figure", "sensitivity",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "hotness_threshold_units" in capsys.readouterr().out
