"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestCommands:
    def test_figures_lists_everything(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(FIGURES)

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "fireworks" in out
        assert "High (VM)" in out

    def test_run_fig11(self, capsys):
        assert main(["run", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "faas-fact-nodejs" in out
        assert "+post-jit" in out

    def test_run_snapshot_creation(self, capsys):
        assert main(["run", "snapshot-creation"]) == 0
        assert "snapshot=" in capsys.readouterr().out

    def test_annotate_python_file(self, tmp_path, capsys):
        handler = tmp_path / "handler.py"
        handler.write_text("def main(params):\n    return params\n")
        assert main(["annotate", str(handler)]) == 0
        out = capsys.readouterr().out
        assert "@jit(cache=True)" in out
        assert "__fireworks_main" in out

    def test_annotate_js_file(self, tmp_path, capsys):
        handler = tmp_path / "handler.js"
        handler.write_text("function main(p) { return p; }\n")
        assert main(["annotate", str(handler)]) == 0
        assert "%OptimizeFunctionOnNextCall" in capsys.readouterr().out

    def test_burst(self, capsys):
        assert main(["burst", "-n", "16", "-c", "8"]) == 0
        out = capsys.readouterr().out
        assert "fireworks" in out and "p99" in out

    def test_trace_writes_valid_json(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["traceEvents"]
        categories = {event["cat"] for event in document["traceEvents"]}
        assert "install" in categories  # install-phase spans included

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "ServerlessBench" in capsys.readouterr().out

    def test_run_fig12(self, capsys):
        assert main(["run", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "os-snap" in out
        assert "faas-fact-python" in out

    def test_run_fig10(self, capsys):
        assert main(["run", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "max" in out and "before swapping" in out

    def test_export_command(self, tmp_path, capsys):
        assert main(["export", str(tmp_path), "--only", "fig11"]) == 0
        assert (tmp_path / "fig11.csv").exists()
        assert "wrote" in capsys.readouterr().out

    def test_validate_command(self, capsys):
        assert main(["validate"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_run_scorecard(self, capsys):
        assert main(["run", "scorecard"]) == 0
        out = capsys.readouterr().out
        assert "[OK ]" in out
        assert "[DEV]" not in out
