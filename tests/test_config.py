"""Sanity tests for the calibrated parameters.

These encode the *relationships* the paper depends on, so a future
recalibration cannot silently break a figure's shape.
"""

import pytest

from repro.config import default_parameters


@pytest.fixture(scope="module")
def params():
    return default_parameters()


class TestHostShape:
    def test_paper_testbed(self, params):
        assert params.host.cores == 64
        assert params.host.dram_mb == 131072
        assert params.host.swappiness_threshold == 0.60
        assert params.microvm.vcpus == 1
        assert params.microvm.mem_mb == 512


class TestLatencyRelationships:
    def test_cold_boot_ordering(self, params):
        """Fig 6: Firecracker cold slowest, then gVisor, then OpenWhisk."""
        def cold(mechanism):
            latency = params.latency(mechanism)
            return latency.create_ms + latency.os_boot_ms + latency.init_ms

        assert cold("microvm") > cold("gvisor") > cold("container")

    def test_io_path_ordering(self, params):
        """§5.2.1(2): container < microVM << gVisor per I/O."""
        def per_io(mechanism):
            latency = params.latency(mechanism)
            return latency.disk_io_base_ms + latency.syscall_overhead_ms

        assert per_io("container") < per_io("microvm") < per_io("gvisor")

    def test_firecracker_cold_near_2200ms_node(self, params):
        latency = params.latency("microvm")
        runtime = params.runtime("nodejs")
        cold = (latency.create_ms + latency.os_boot_ms + runtime.launch_ms
                + runtime.app_load_base_ms)
        assert cold == pytest.approx(2200, abs=100)

    def test_restore_far_below_resume(self, params):
        """Fireworks start-up must beat even warm starts (Fig 6)."""
        layout = params.memory_layout("nodejs")
        snapshot = params.snapshot
        restore = (snapshot.restore_base_ms
                   + layout.guest_total_mb
                   * layout.snapshot_working_set_mb_fraction
                   * snapshot.restore_per_working_mb_ms)
        assert restore < params.latency("microvm").resume_paused_ms / 2


class TestRuntimeRelationships:
    def test_cpython_never_tiers(self, params):
        assert params.runtime("python").hotness_threshold_units == \
            float("inf")
        assert not params.runtime("python").has_runtime_jit

    def test_v8_tiers_between_io_and_compute_workloads(self, params):
        """§5.5.1: compute benchmarks cross the threshold, I/O ones don't."""
        from repro.workloads import faasdom_spec
        threshold = params.runtime("nodejs").hotness_threshold_units
        fact = faasdom_spec("faas-fact",
                            "nodejs").program().total_compute_units()
        netlat = faasdom_spec("faas-netlatency",
                              "nodejs").program().total_compute_units()
        assert netlat < threshold < fact

    def test_numba_compile_costlier_than_turbofan(self, params):
        assert params.runtime("python").jit_compile_ms_per_kunit > \
            params.runtime("nodejs").jit_compile_ms_per_kunit


class TestMemoryRelationships:
    def test_guest_total_near_170mb(self, params):
        """§5.1 footnote: the average sandbox is ~170 MB."""
        for language in ("nodejs", "python"):
            assert params.memory_layout(language).guest_total_mb == \
                pytest.approx(170, abs=10)

    def test_numba_jit_region_dwarfs_v8(self, params):
        """Fig 12's asymmetry lives here."""
        assert params.memory_layout("python").jit_code_mb > \
            3 * params.memory_layout("nodejs").jit_code_mb

    def test_python_jit_pages_dirty_at_exec(self, params):
        assert params.memory_layout("python").exec_dirty_jit_fraction > \
            params.memory_layout("nodejs").exec_dirty_jit_fraction


class TestOverrides:
    def test_with_overrides_replaces_top_level(self, params):
        from repro.config import HostConfig
        modified = params.with_overrides(host=HostConfig(dram_mb=1024))
        assert modified.host.dram_mb == 1024
        assert params.host.dram_mb == 131072  # original untouched

    def test_unknown_language_raises(self, params):
        with pytest.raises(KeyError):
            params.runtime("rust")
        with pytest.raises(KeyError):
            params.memory_layout("rust")
        with pytest.raises(KeyError):
            params.latency("hypervisor-x")


class TestSnapshotCreationBand:
    def test_write_time_in_paper_band(self, params):
        """§5.1: 0.36-0.47 s for a ~170 MiB image."""
        snapshot = params.snapshot
        for language in ("nodejs", "python"):
            size = params.memory_layout(language).guest_total_mb
            write_ms = snapshot.create_base_ms + size * snapshot.create_per_mb_ms
            assert 360 <= write_ms <= 470


class TestParamsFingerprint:
    """Canonical hashing of the calibrated constants (the cache key)."""

    def test_stable_across_calls(self, params):
        from repro.config import params_fingerprint
        assert params_fingerprint(params) == params_fingerprint(params)
        assert params_fingerprint(params) == \
            params_fingerprint(default_parameters())

    def test_short_hex(self, params):
        from repro.config import params_fingerprint
        fingerprint = params_fingerprint(params)
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # hex digest prefix

    def test_any_constant_changes_it(self, params):
        import dataclasses
        from repro.config import params_fingerprint
        base = params_fingerprint(params)
        tweaked = dataclasses.replace(
            params, snapshot=dataclasses.replace(
                params.snapshot, restore_base_ms=7.0))
        assert params_fingerprint(tweaked) != base

    def test_canonical_form_has_no_bare_floats(self, params):
        """Floats canonicalize through repr so the JSON text is unique."""
        from repro.config import canonical_jsonable

        def walk(node):
            assert not isinstance(node, float)
            if isinstance(node, dict):
                for value in node.values():
                    walk(value)
            elif isinstance(node, list):
                for item in node:
                    walk(item)

        walk(canonical_jsonable(params))

    def test_inf_canonicalizes(self, params):
        from repro.config import canonical_jsonable
        assert canonical_jsonable(float("inf")) == "inf"

    def test_unknown_type_rejected(self):
        from repro.config import canonical_jsonable
        with pytest.raises(TypeError):
            canonical_jsonable(object())
