"""The Figure 2 walkthrough: every numbered step of §3.1, asserted.

Installation phase: (1) create a microVM ready for a runtime, (2) annotate
the source, (3) invoke the annotated function, (4) JIT + snapshot.
Invocation phase: (5) parameters into the passer queue, (6) network setup,
(7) snapshot restore, (8) fetch parameters and run the original entry.
"""

import pytest

from repro.bench import fresh_platform
from repro.core import FireworksPlatform, topic_for
from repro.snapshot.image import STAGE_POST_JIT
from repro.workloads import faasdom_spec
from tests.helpers import run


@pytest.fixture
def fireworks():
    return fresh_platform(FireworksPlatform)


@pytest.fixture
def spec():
    return faasdom_spec("faas-fact", "python")


class TestInstallationPhase:
    def test_steps_1_through_4(self, fireworks, spec):
        sim = fireworks.sim
        run(sim, fireworks.install(spec))
        report = fireworks.install_reports[spec.name]

        # (2) the code annotator transformed the user source: @jit on the
        # user function, the three __fireworks_* additions present.
        annotated = report.annotated.annotated
        assert "@jit(cache=True)" in annotated
        for scaffold in ("__fireworks_jit", "__fireworks_snapshot",
                         "__fireworks_main"):
            assert scaffold in annotated

        # (3)+(4a) the annotated function ran its JIT pass: the image's
        # runtime state says the entry point is compiled.
        image = fireworks.image_for(spec.name)
        assert image.stage == STAGE_POST_JIT
        assert image.jit_state["main"].tier == "optimized"

        # (4b) the snapshot was taken before the original entry ran: no
        # invocation-time state in the image beyond load+JIT.
        assert image.size_mb == pytest.approx(
            fireworks.params.memory_layout("python").guest_total_mb,
            abs=5)

        # The installer microVM is gone; only the image file remains.
        assert fireworks.bridge.endpoint_count() == 0


class TestInvocationPhase:
    def test_steps_5_through_8(self, fireworks, spec):
        sim = fireworks.sim
        run(sim, fireworks.install(spec))
        fireworks.retain_workers = True
        record = run(sim, fireworks.invoke(spec.name,
                                           payload={"n": 1000003}))
        worker = record.worker

        # (5) the arguments went through the per-instance Kafka topic.
        fc_id = worker.sandbox.mmds.get("fcID")
        published = fireworks.bus.consume_latest(topic_for(fc_id))
        assert published.value["function"] == spec.name

        # (6) the clone got its own namespace/NAT wiring around the
        # snapshotted guest identity.
        image = fireworks.image_for(spec.name)
        assert worker.sandbox.guest_ip == image.guest_ip
        assert worker.endpoint.external_ip != image.guest_ip
        assert worker.endpoint.namespace.nat.external_for(
            image.guest_ip) == worker.endpoint.external_ip

        # (7) the sandbox is a snapshot restore, not a boot.
        assert worker.sandbox.restored_from_snapshot
        assert record.mode == "snapshot"

        # (8) the original entry executed fully JITted — no compile cost,
        # Numba-speed compute.
        assert record.guest.jit_compile_ms == 0
        interp_ms = (spec.program().total_compute_units()
                     / fireworks.params.runtime("python").interp_units_per_ms)
        assert record.guest.compute_ms < interp_ms / 10

    def test_no_cold_warm_distinction(self, fireworks, spec):
        """§5.1: Fireworks always resumes from the snapshot."""
        sim = fireworks.sim
        run(sim, fireworks.install(spec))
        startups = [run(sim, fireworks.invoke(spec.name)).startup_ms
                    for _ in range(4)]
        assert max(startups) == pytest.approx(min(startups), rel=1e-6)
