"""Differential + integration tests for the chain executor.

The differential suite is the proof object for the executor's central
byte-identity claims:

* a single-stage DAG driven orchestrated is indistinguishable (same
  simulated events, same trace, same clock) from calling
  ``platform.invoke`` directly;
* a guest-hopping linear DAG on a chain-capable backend is
  indistinguishable from the paper's §5.3 chain invocation (the Fig 9
  golden hash rides on this).

The integration half proves the headline: all five backends execute the
ServerlessBench DAGs through the one shared executor.
"""

import json
import re

import pytest

from repro.bench import (drain, fresh_platform, install_chain, invoke_once)
from repro.bench.load import LOAD_PLATFORMS
from repro.platforms.chains import (MODE_GUEST, MODE_ORCHESTRATED,
                                    STATUS_OK, STATUS_SKIPPED,
                                    ChainExecutor, run_dag_once)
from repro.trace.export import to_chrome_trace
from repro.workloads import (DagEdge, DagStage, alexa_skills_chain,
                             alexa_skills_dag, chain_to_dag,
                             data_analysis_dag, faasdom_spec, make_dag)

_OVERLAY_CATS = ("chain", "stage", "db-trigger")


def _base_trace(platform):
    """The exported trace minus the retrospective overlay spans — the
    byte-identity comparison object.  VM identifiers derive from object
    addresses (nondeterministic by design), so hex runs are masked."""
    doc = to_chrome_trace(platform.sim.tracer.traces())
    doc["traceEvents"] = [ev for ev in doc["traceEvents"]
                          if ev.get("cat") not in _OVERLAY_CATS]
    text = json.dumps(doc, sort_keys=True, default=str)
    return re.sub(r"[0-9a-f]{8,}", "ADDR", text)


def _single_stage_dag(spec):
    return make_dag("solo", "only", [DagStage("only", spec.name)],
                    functions=[spec])


@pytest.mark.parametrize("platform_name", sorted(LOAD_PLATFORMS))
class TestDifferential:
    def test_single_stage_dag_matches_plain_invoke(self, platform_name):
        """Orchestrated single-stage run == plain invocation, byte for
        byte: same record timings, same trace, same final clock."""
        spec = faasdom_spec("faas-fact", "nodejs")
        plain = fresh_platform(LOAD_PLATFORMS[platform_name])
        import repro.bench.harness as harness
        harness.install_all(plain, [spec])
        record = invoke_once(plain, spec.name)
        drain(plain)

        dagged = fresh_platform(LOAD_PLATFORMS[platform_name])
        run = run_dag_once(dagged, _single_stage_dag(spec), {},
                           mode=record.mode)
        drain(dagged)

        assert run.status == "ok"
        stage = run.stages["only"]
        assert stage.record is not None
        assert stage.record.total_ms == record.total_ms
        assert stage.record.mode == record.mode
        assert dagged.sim.now == plain.sim.now
        assert _base_trace(dagged) == _base_trace(plain)


class TestFig9Differential:
    @pytest.mark.parametrize("platform_name", ["openwhisk", "fireworks"])
    def test_linear_guest_dag_matches_chain_invocation(self,
                                                       platform_name):
        """chain_to_dag(alexa) through the executor reproduces the plain
        §5.3 chain invocation byte for byte (the Fig 9 path)."""
        chain = alexa_skills_chain()
        plain = fresh_platform(LOAD_PLATFORMS[platform_name])
        install_chain(plain, chain)
        record = invoke_once(plain, chain.entry,
                             payload={"skill": "fact"})
        drain(plain)

        dagged = fresh_platform(LOAD_PLATFORMS[platform_name])
        run = run_dag_once(dagged, alexa_skills_dag(),
                           {"skill": "fact"})
        drain(dagged)

        assert run.mode == MODE_GUEST
        assert run.entry_record is not None
        assert [r.function for r in run.records()] == \
            [r.function for r in record.chain_records()]
        assert run.entry_record.chain_total_ms() == \
            record.chain_total_ms()
        assert dagged.sim.now == plain.sim.now
        assert _base_trace(dagged) == _base_trace(plain)


@pytest.mark.parametrize("platform_name", sorted(LOAD_PLATFORMS))
class TestAllBackends:
    def test_alexa_dag_executes(self, platform_name):
        platform = fresh_platform(LOAD_PLATFORMS[platform_name])
        run = run_dag_once(platform, alexa_skills_dag(),
                           {"skill": "reminder"})
        drain(platform)
        expected_mode = MODE_GUEST if platform.supports_chains \
            else MODE_ORCHESTRATED
        assert run.mode == expected_mode
        assert run.status == "ok"
        assert run.ledger == {"frontend": 1, "reminder": 1}
        executed = {r.stage: r.status for r in run.executed()}
        assert executed == {"frontend": STATUS_OK, "reminder": STATUS_OK}
        # The skills the frontend did not select never ran.
        for name in ("fact", "smarthome"):
            assert run.stages[name].status == STATUS_SKIPPED
            assert name not in run.ledger

    def test_data_analysis_trigger_segment_fires(self, platform_name):
        platform = fresh_platform(LOAD_PLATFORMS[platform_name])
        executor = ChainExecutor(platform)
        dag = data_analysis_dag()
        executor.install(dag)
        run = executor.run(dag, {})
        drain(platform)
        assert run.status == "ok"
        # The executor drives input -> format; the change feed fires
        # analyze -> stats after the wages write.
        assert set(run.ledger) == {"input", "format"}
        analyzed = [r for r in platform.records
                    if r.function == "da-analyze"]
        assert len(analyzed) == 1
        if run.mode == MODE_ORCHESTRATED:
            segment = executor.trigger_runs
            assert len(segment) == 1
            assert segment[0].root == "analyze"
            assert segment[0].trigger_database
            assert set(segment[0].ledger) == {"analyze", "stats"}
            assert all(count == 1
                       for count in segment[0].ledger.values())
        else:
            assert executor.trigger_runs == []


class TestExecutorSemantics:
    def _fan_dag(self):
        specs = [faasdom_spec("faas-fact", "nodejs"),
                 faasdom_spec("faas-matrix-mult", "nodejs"),
                 faasdom_spec("faas-diskio", "nodejs"),
                 faasdom_spec("faas-gzip", "nodejs")]
        stages = [DagStage("a", specs[0].name),
                  DagStage("b", specs[1].name),
                  DagStage("c", specs[2].name),
                  DagStage("d", specs[3].name)]
        edges = [DagEdge("a", "b"), DagEdge("a", "c"),
                 DagEdge("b", "d"), DagEdge("c", "d")]
        return make_dag("fan", "a", stages, edges, functions=specs)

    def test_fan_out_runs_concurrently(self):
        from repro.platforms import FirecrackerPlatform
        platform = fresh_platform(FirecrackerPlatform)
        run = run_dag_once(platform, self._fan_dag(), {})
        b, c = run.stages["b"], run.stages["c"]
        assert run.status == "ok"
        # Same wave: both middle stages start together...
        assert b.start_ms == c.start_ms
        # ...and the join waits for the slower one.
        assert run.stages["d"].start_ms == max(b.end_ms, c.end_ms)

    def test_ledger_exactly_once(self):
        from repro.platforms import FirecrackerPlatform
        platform = fresh_platform(FirecrackerPlatform)
        run = run_dag_once(platform, self._fan_dag(), {})
        assert run.ledger == {"a": 1, "b": 1, "c": 1, "d": 1}

    def test_records_in_stage_order(self):
        from repro.platforms import FirecrackerPlatform
        platform = fresh_platform(FirecrackerPlatform)
        run = run_dag_once(platform, self._fan_dag(), {})
        assert [r.function for r in run.records()] == \
            [run.stages[s].function for s in ("a", "b", "c", "d")]

    def test_install_requires_bound_functions(self):
        from repro.errors import ValidationError
        from repro.platforms import FirecrackerPlatform
        platform = fresh_platform(FirecrackerPlatform)
        bare = make_dag("bare", "a", [DagStage("a", "fn-a")])
        with pytest.raises(ValidationError, match="no functions bound"):
            ChainExecutor(platform).install(bare)

    def test_install_idempotent(self):
        from repro.platforms import FirecrackerPlatform
        platform = fresh_platform(FirecrackerPlatform)
        executor = ChainExecutor(platform)
        dag = data_analysis_dag()
        executor.install(dag)
        installed_at = platform.sim.now
        executor.install(dag)
        assert platform.sim.now == installed_at
        # One registration per (database, function), not per install call.
        [(db, fns)] = list(platform._db_triggers.items())
        assert len(fns) == 1

    def test_guest_mode_keeps_plain_trigger(self):
        from repro.core import FireworksPlatform
        platform = fresh_platform(FireworksPlatform)
        executor = ChainExecutor(platform)
        executor.install(data_analysis_dag())
        for functions in platform._db_triggers.values():
            for _function, runner in functions:
                assert runner is None
