"""Integration tests: the paper's headline claims must hold in shape.

These are the end-to-end guarantees of §5, asserted as bands rather than
exact numbers (the substrate is a simulator, not the authors' testbed).
"""

import pytest

from repro.bench import (cold_and_warm, fireworks_invocation, run_fig10,
                         fig12_improvements, run_fig12)
from repro.platforms import FirecrackerPlatform, GVisorPlatform, \
    OpenWhiskPlatform
from repro.workloads import faasdom_spec


@pytest.fixture(scope="module")
def fact_node():
    return faasdom_spec("faas-fact", "nodejs")


@pytest.fixture(scope="module")
def fact_python():
    return faasdom_spec("faas-fact", "python")


@pytest.fixture(scope="module")
def fw_fact_node(fact_node):
    return fireworks_invocation(fact_node)


@pytest.fixture(scope="module")
def fc_fact_node(fact_node):
    return cold_and_warm(FirecrackerPlatform, fact_node)


class TestFig6Claims:
    def test_cold_startup_speedup_band(self, fw_fact_node, fc_fact_node):
        """Paper: up to 133x faster cold start-up (Node fact)."""
        cold, _warm = fc_fact_node
        speedup = cold.startup_ms / fw_fact_node.startup_ms
        assert 80 <= speedup <= 200

    def test_warm_startup_speedup_band(self, fw_fact_node, fc_fact_node):
        """Paper: up to 3.8x faster warm start-up."""
        _cold, warm = fc_fact_node
        speedup = warm.startup_ms / fw_fact_node.startup_ms
        assert 2.0 <= speedup <= 6.0

    def test_exec_faster_in_cold_band(self, fw_fact_node, fc_fact_node):
        """Paper: up to 38% faster execution in cold cases (Node)."""
        cold, _warm = fc_fact_node
        improvement = 1.0 - fw_fact_node.exec_ms / cold.exec_ms
        assert 0.25 <= improvement <= 0.50

    def test_fireworks_beats_every_warm_start(self, fw_fact_node,
                                              fact_node):
        for platform_cls in (OpenWhiskPlatform, GVisorPlatform,
                             FirecrackerPlatform):
            _cold, warm = cold_and_warm(platform_cls, fact_node)
            assert fw_fact_node.startup_ms <= warm.startup_ms * 1.2


class TestFig7Claims:
    def test_python_cold_startup_band(self, fact_python):
        """Paper: 59.8x faster cold start-up (Python fact)."""
        fw = fireworks_invocation(fact_python)
        cold, _ = cold_and_warm(FirecrackerPlatform, fact_python)
        assert 40 <= cold.startup_ms / fw.startup_ms <= 90

    def test_python_exec_speedup_band(self, fact_python):
        """Paper: 20x faster execution in cold cases (Numba vs CPython)."""
        fw = fireworks_invocation(fact_python)
        cold, _ = cold_and_warm(FirecrackerPlatform, fact_python)
        assert 15 <= cold.exec_ms / fw.exec_ms <= 25

    def test_python_matmul_exec_band(self):
        """Paper: up to 80x faster execution (matmul, vectorizable)."""
        spec = faasdom_spec("faas-matrix-mult", "python")
        fw = fireworks_invocation(spec)
        cold, _ = cold_and_warm(FirecrackerPlatform, spec)
        assert 55 <= cold.exec_ms / fw.exec_ms <= 95

    def test_io_similar_across_languages(self):
        """§5.2.2(3): I/O performance mostly depends on the sandbox, not
        the language."""
        node = fireworks_invocation(faasdom_spec("faas-diskio", "nodejs"))
        python = fireworks_invocation(faasdom_spec("faas-diskio", "python"))
        assert node.guest.disk_ms == pytest.approx(python.guest.disk_ms)


class TestDiskIoClaims:
    def test_gvisor_exec_slowest_fireworks_much_faster(self):
        """Paper: up to 9.2x faster execution than other frameworks."""
        spec = faasdom_spec("faas-diskio", "nodejs")
        fw = fireworks_invocation(spec)
        gv_cold, _ = cold_and_warm(GVisorPlatform, spec)
        ratio = gv_cold.exec_ms / fw.exec_ms
        assert 6 <= ratio <= 12

    def test_container_io_beats_microvm(self):
        """§5.2.1(2): OverlayFS containers do I/O faster than microVMs."""
        spec = faasdom_spec("faas-diskio", "nodejs")
        ow_cold, _ = cold_and_warm(OpenWhiskPlatform, spec)
        fw = fireworks_invocation(spec)
        assert ow_cold.guest.disk_ms < fw.guest.disk_ms


class TestFig10Claims:
    @pytest.fixture(scope="class")
    def consolidation(self):
        return run_fig10(sample_every=100)

    def test_fireworks_consolidates_more(self, consolidation):
        """Paper: 565 vs 337 microVMs (~1.68x more) before swapping."""
        fw = consolidation["fireworks"].max_vms_before_swap
        fc = consolidation["firecracker"].max_vms_before_swap
        assert fw / fc == pytest.approx(1.68, rel=0.15)

    def test_absolute_counts_in_band(self, consolidation):
        assert 280 <= consolidation["firecracker"].max_vms_before_swap <= 400
        assert 480 <= consolidation["fireworks"].max_vms_before_swap <= 650

    def test_per_vm_memory_lower_with_sharing(self, consolidation):
        fw_pss = consolidation["fireworks"].points[-1].mean_pss_mb
        fc_pss = consolidation["firecracker"].points[-1].mean_pss_mb
        assert fw_pss < fc_pss * 0.75


class TestFig12Claims:
    @pytest.fixture(scope="class")
    def improvements(self):
        return fig12_improvements(run_fig12(benchmarks=["faas-fact"]))

    def test_os_snapshot_saves_memory_both_languages(self, improvements):
        for workload, values in improvements.items():
            assert values["os_snapshot_vs_baseline_pct"] > 30, workload

    def test_node_post_jit_saves_more(self, improvements):
        """Paper: Node post-JIT reduces memory up to 74% further."""
        assert improvements["faas-fact-nodejs"][
            "post_jit_vs_os_snapshot_pct"] > 25

    def test_python_post_jit_no_gain(self, improvements):
        """Paper: no significant improvement for Python (Numba/MCJIT
        duplication)."""
        assert improvements["faas-fact-python"][
            "post_jit_vs_os_snapshot_pct"] < 10
