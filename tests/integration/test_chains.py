"""Integration tests: function chains and database triggers (§5.3)."""

import pytest

from repro.bench import drain, fresh_platform, install_chain, invoke_once
from repro.core import FireworksPlatform
from repro.platforms import OpenWhiskPlatform
from repro.workloads import (WAGES_DB, alexa_skills_chain,
                             data_analysis_chain)


@pytest.fixture(params=[OpenWhiskPlatform, FireworksPlatform],
                ids=["openwhisk", "fireworks"])
def chain_platform(request):
    return fresh_platform(request.param)


class TestAlexaChain:
    def test_frontend_invokes_selected_skill(self, chain_platform):
        chain = alexa_skills_chain()
        install_chain(chain_platform, chain)
        record = invoke_once(chain_platform, chain.entry,
                             payload={"skill": "reminder"})
        assert [child.function for child in record.children] == \
            ["alexa-reminder"]

    def test_chain_records_nest(self, chain_platform):
        chain = alexa_skills_chain()
        install_chain(chain_platform, chain)
        record = invoke_once(chain_platform, chain.entry,
                             payload={"skill": "fact"})
        all_records = record.chain_records()
        assert [r.function for r in all_records] == \
            ["alexa-frontend", "alexa-fact"]
        assert record.chain_total_ms() > record.total_ms

    def test_reminder_skill_touches_couchdb(self, chain_platform):
        chain = alexa_skills_chain()
        install_chain(chain_platform, chain)
        invoke_once(chain_platform, chain.entry,
                    payload={"skill": "reminder"})
        child = chain_platform.records[-1].children[0]
        assert child.guest.db_ms > 0


class TestDataAnalysisChain:
    def test_insertion_runs_both_functions(self, chain_platform):
        chain = data_analysis_chain()
        install_chain(chain_platform, chain)
        record = invoke_once(chain_platform, chain.entry,
                             payload={"name": "a", "id": "1"})
        assert [r.function for r in record.chain_records()] == \
            ["da-input", "da-format"]

    def test_db_trigger_fires_analysis(self, chain_platform):
        chain = data_analysis_chain()
        install_chain(chain_platform, chain)
        chain_platform.register_db_trigger(WAGES_DB, "da-analyze")
        invoke_once(chain_platform, chain.entry,
                    payload={"name": "a", "id": "1"})
        drain(chain_platform)
        functions = [r.function for r in chain_platform.records]
        assert "da-analyze" in functions
        assert "da-stats" in functions

    def test_no_trigger_without_registration(self, chain_platform):
        chain = data_analysis_chain()
        install_chain(chain_platform, chain)
        invoke_once(chain_platform, chain.entry,
                    payload={"name": "a", "id": "1"})
        drain(chain_platform)
        functions = [r.function for r in chain_platform.records]
        assert "da-analyze" not in functions


class TestFig9Shape:
    def test_fireworks_chain_beats_openwhisk(self):
        chain = alexa_skills_chain()
        results = {}
        for platform_cls in (OpenWhiskPlatform, FireworksPlatform):
            platform = fresh_platform(platform_cls)
            install_chain(platform, chain)
            record = invoke_once(platform, chain.entry,
                                 payload={"skill": "smarthome"})
            results[platform.name] = record
        ow, fw = results["openwhisk"], results["fireworks"]
        assert fw.chain_startup_ms() < ow.chain_startup_ms() / 10
        assert fw.chain_exec_ms() < ow.chain_exec_ms()
