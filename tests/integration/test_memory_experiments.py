"""Integration tests: memory behaviour across whole platforms."""

import pytest

from repro.bench import fresh_platform, install_all, invoke_once
from repro.bench.memory import run_fig4_view
from repro.core import FireworksPlatform
from repro.platforms import FirecrackerPlatform
from repro.workloads import faasdom_spec


class TestRetainedWorkerMemory:
    def test_fireworks_clones_cheaper_than_firecracker_vms(self):
        spec = faasdom_spec("faas-fact", "nodejs")
        means = {}
        for platform_cls in (FirecrackerPlatform, FireworksPlatform):
            platform = fresh_platform(platform_cls)
            install_all(platform, [spec])
            platform.retain_workers = True
            for _ in range(8):
                invoke_once(platform, spec.name)
            workers = platform.active_workers
            means[platform.name] = \
                sum(w.pss_mb() for w in workers) / len(workers)
        assert means["fireworks"] < means["firecracker"] / 2

    def test_marginal_clone_cost_shrinks_with_population(self):
        """The more clones, the less each additional one costs (sharing)."""
        spec = faasdom_spec("faas-fact", "nodejs")
        platform = fresh_platform(FireworksPlatform)
        install_all(platform, [spec])
        platform.retain_workers = True

        used = [platform.host_memory.used_mb]
        for _ in range(6):
            invoke_once(platform, spec.name)
            used.append(platform.host_memory.used_mb)
        increments = [b - a for a, b in zip(used, used[1:])]
        # First clone faults the image into the page cache (big);
        # subsequent clones cost only their private pages (small, equal).
        assert increments[0] > 3 * increments[1]
        for later in increments[2:]:
            assert later == pytest.approx(increments[1], rel=0.05)

    def test_language_asymmetry_in_clone_cost(self):
        """Numba-dirtied Python clones cost more than V8-lazy Node ones."""
        costs = {}
        for language in ("nodejs", "python"):
            spec = faasdom_spec("faas-fact", language)
            platform = fresh_platform(FireworksPlatform)
            install_all(platform, [spec])
            platform.retain_workers = True
            for _ in range(4):
                invoke_once(platform, spec.name)
            workers = platform.active_workers
            costs[language] = min(w.sandbox.space.uss_mb()
                                  for w in workers)
        assert costs["python"] > costs["nodejs"] * 1.5


class TestFig4Regions:
    @pytest.fixture(scope="class")
    def node_view(self):
        return run_fig4_view(n_clones=8)

    def test_jit_code_shared_for_node(self, node_view):
        assert node_view["jit_code"]["shared_fraction"] > 0.75

    def test_python_jit_code_mostly_private(self):
        view = run_fig4_view(language="python", n_clones=8)
        # Numba relocations dirty the JIT region at run time (§5.5.2).
        assert view["jit_code"]["shared_fraction"] < 0.5

    def test_pss_never_exceeds_rss(self, node_view):
        for region, stats in node_view.items():
            assert stats["pss_mb"] <= stats["rss_mb"] + 1e-9, region
