"""Full-system scenario: everything wired together at once.

One Fireworks deployment serving: an authenticated gateway, the data-
analysis chain with its CouchDB trigger, a timer-triggered health check,
injected faults mid-stream, retained-worker memory accounting, and billing
— the kind of day a real deployment has.
"""

import pytest

from repro.billing import bill_records
from repro.bench import drain, fresh_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.faults import FaultInjector
from repro.platforms.gateway import STATUS_SUCCESS, ApiGateway
from repro.workloads import (WAGES_DB, data_analysis_chain, faasdom_spec)
from tests.helpers import run


@pytest.fixture
def system():
    faults = FaultInjector()
    platform = fresh_platform(FireworksPlatform, faults=faults)
    chain = data_analysis_chain()
    install_all(platform, chain.functions)
    install_all(platform, [faasdom_spec("faas-netlatency", "nodejs")])
    platform.register_db_trigger(WAGES_DB, "da-analyze")
    gateway = ApiGateway(platform)
    api_key = gateway.create_namespace("payroll")
    return platform, gateway, api_key, faults


class TestFullScenario:
    def test_a_day_in_production(self, system):
        platform, gateway, api_key, faults = system
        sim = platform.sim

        # A timer-triggered health check runs alongside everything.
        platform.register_timer_trigger("faas-netlatency-nodejs",
                                        every_ms=30000.0, count=3)

        # Three wage insertions through the gateway; the second hits a
        # corrupted snapshot and a broker hiccup and must still succeed.
        activations = []
        for index in range(3):
            if index == 1:
                faults.arm("restore", "da-input", count=1)
                faults.arm("param-fetch", "da-format", count=1)
            activation = run(sim, gateway.handle_request(
                api_key, "da-input",
                payload={"name": f"user{index}", "id": str(index)}))
            activations.append(activation)
        drain(platform)

        # Every gateway request succeeded despite the injected faults.
        assert all(a.status == STATUS_SUCCESS for a in activations)
        assert platform.restore_failures == 1
        assert platform.param_fetch_retries == 1

        # Each insertion fired the db-triggered analysis chain.
        analyze_runs = [r for r in platform.records
                        if r.function == "da-analyze"]
        stats_runs = [r for r in platform.records
                      if r.function == "da-stats"]
        assert len(analyze_runs) == 3
        assert len(stats_runs) == 3

        # The timer fired its three health checks.
        health_runs = [r for r in platform.records
                       if r.function == "faas-netlatency-nodejs"]
        assert len(health_runs) == 3

        # The analysis chain wrote its statistics back to CouchDB.
        assert len(platform.couch.database("wage-stats")) >= 1

        # No leaked network wiring or sandboxes after the dust settles.
        # (The store's *current* images — including da-input's fault-
        # recovery regeneration — are the only resident memory left.)
        assert platform.bridge.endpoint_count() == 0
        assert platform.image_for("da-input").generation == 2
        image_cache_mb = sum(
            platform.image_for(key).size_mb
            for key in list(platform.store.keys())
            if platform.image_for(key).materialized)
        assert platform.host_memory.used_mb == pytest.approx(
            image_cache_mb)

        # Billing: even with several near-trivial executions (the health
        # checks bill ~3 ms against ~20 ms of restore), the deployment
        # bills the majority of its resource time.
        report = bill_records(platform.name, platform.records)
        assert report.billable_efficiency > 0.5
        assert len(report.lines) == len(platform.records) + sum(
            len(r.children) for r in platform.records)

    def test_gateway_activations_match_platform_records(self, system):
        platform, gateway, api_key, _faults = system
        sim = platform.sim
        for _ in range(2):
            run(sim, gateway.handle_request(api_key, "da-input",
                                            payload={"name": "x",
                                                     "id": "1"}))
        drain(platform)
        activations = gateway.list_activations("payroll")
        assert len(activations) == 2
        entry_records = [r for r in platform.records
                         if r.function == "da-input"]
        assert len(entry_records) == 2
