"""Cross-platform matrix: every FaaSdom workload on every platform.

The broad-coverage safety net: all 8 workloads install and invoke on all
5 platforms, and the paper's global orderings hold everywhere.
"""

import pytest

from repro.bench import (fresh_cluster_platform, fresh_platform, install_all,
                         invoke_once)
from repro.chaos import (KIND_HOST_CRASH, ChaosEvent, ChaosPlan,
                         HostFailureController)
from repro.core import FireworksPlatform
from repro.faults import FaultInjector
from repro.platforms import (CatalyzerPlatform, FirecrackerPlatform,
                             GVisorPlatform, OpenWhiskPlatform)
from repro.platforms.scheduler import POLICY_ROUND_ROBIN
from repro.workloads import all_faasdom_specs, faasdom_spec

ALL_PLATFORMS = (OpenWhiskPlatform, GVisorPlatform, FirecrackerPlatform,
                 CatalyzerPlatform, FireworksPlatform)


@pytest.fixture(scope="module")
def matrix():
    """record[platform_name][spec_name] for one invocation of everything."""
    records = {}
    for platform_cls in ALL_PLATFORMS:
        platform = fresh_platform(platform_cls)
        specs = all_faasdom_specs()
        install_all(platform, specs)
        records[platform.name] = {
            spec.name: invoke_once(platform, spec.name)
            for spec in specs
        }
    return records


class TestMatrix:
    def test_everything_ran(self, matrix):
        assert len(matrix) == 5
        for platform_name, by_spec in matrix.items():
            assert len(by_spec) == 8, platform_name
            for spec_name, record in by_spec.items():
                assert record.exec_ms > 0, (platform_name, spec_name)
                assert record.total_ms > 0, (platform_name, spec_name)

    def test_fireworks_fastest_startup_everywhere_but_sfork(self, matrix):
        for spec_name in matrix["fireworks"]:
            fw_startup = matrix["fireworks"][spec_name].startup_ms
            for platform_name, by_spec in matrix.items():
                if platform_name in ("fireworks", "catalyzer"):
                    continue  # catalyzer's sfork legitimately beats restore
                assert fw_startup < by_spec[spec_name].startup_ms, \
                    (platform_name, spec_name)

    def test_fireworks_exec_floor_on_compute_workloads(self, matrix):
        """Post-JIT execution is the floor wherever compute dominates."""
        compute_specs = [name for name in matrix["fireworks"]
                         if "fact" in name or "matrix" in name]
        for spec_name in compute_specs:
            fw_exec = matrix["fireworks"][spec_name].exec_ms
            for platform_name, by_spec in matrix.items():
                assert fw_exec <= by_spec[spec_name].exec_ms * 1.01, \
                    (platform_name, spec_name)

    def test_container_io_exception_holds(self, matrix):
        """§5.2.1(2): the one place a baseline out-executes Fireworks is
        container disk I/O (OverlayFS vs the microVM's virtio path)."""
        for spec_name in ("faas-diskio-nodejs", "faas-diskio-python"):
            assert matrix["openwhisk"][spec_name].exec_ms < \
                matrix["fireworks"][spec_name].exec_ms

    def test_python_compute_suffers_most_without_fireworks(self, matrix):
        """The interpreted-Python penalty is the largest exec gap."""
        gaps = {}
        for spec_name, fw_record in matrix["fireworks"].items():
            baseline = matrix["firecracker"][spec_name].exec_ms
            gaps[spec_name] = baseline / fw_record.exec_ms
        worst = max(gaps, key=gaps.get)
        assert worst == "faas-matrix-mult-python"

    def test_no_platform_leaks_endpoints(self, matrix):
        # The fixture platforms are gone; this asserts the records alone
        # don't pin workers (no retain_workers set).
        for by_spec in matrix.values():
            for record in by_spec.values():
                worker = record.worker
                if worker is not None and worker.endpoint is not None:
                    # Only live (retained) workers may hold endpoints.
                    assert worker.sandbox.state != "stopped"


def _fault_row(platform_cls):
    """One backend through the fault row: an armed restore fault plus a
    host crash on a 2-host cluster.  Returns everything the assertions
    need."""
    faults = FaultInjector()
    platform = fresh_cluster_platform(platform_cls, n_hosts=2,
                                      policy=POLICY_ROUND_ROBIN,
                                      faults=faults)
    specs = [faasdom_spec("faas-netlatency", "nodejs"),
             faasdom_spec("faas-fact", "nodejs")]
    install_all(platform, specs)
    # The armed restore fault only fires on snapshot restores (Fireworks);
    # arming it everywhere asserts it is harmless elsewhere.
    faults.arm("restore", specs[0].name, count=1)
    baseline = {spec.name: invoke_once(platform, spec.name)
                for spec in specs}
    sim = platform.sim
    pool_before = {
        host.host_id: [entry.worker
                       for entry in host.pool.live_entries(sim.now)]
        for host in platform.cluster.hosts}
    crash_host = baseline[specs[0].name].host_id
    now = sim.now
    plan = ChaosPlan([ChaosEvent(now + 5.0, KIND_HOST_CRASH,
                                 host_id=crash_host)])
    HostFailureController(platform, plan)
    sim.run(until=now + 10.0)
    survivors = {spec.name: invoke_once(platform, spec.name)
                 for spec in specs}
    sim.run()  # drain teardowns: nothing may stay half-reclaimed
    return platform, specs, crash_host, pool_before, baseline, survivors


@pytest.mark.parametrize("platform_cls", ALL_PLATFORMS,
                         ids=[cls.name for cls in ALL_PLATFORMS])
class TestMatrixUnderFaults:
    """The fault row: every backend survives one armed restore fault plus
    one host crash, without leaking warm-pool workers."""

    def test_post_crash_invocations_avoid_the_dead_host(self, platform_cls):
        platform, _, crash_host, _, _, survivors = _fault_row(platform_cls)
        for name, record in survivors.items():
            assert record.host_id != crash_host, name
            assert record.exec_ms > 0, name
        assert platform.failed_invocations == []

    def test_no_warm_pool_worker_leaks(self, platform_cls):
        platform, specs, crash_host, pool_before, _, _ = \
            _fault_row(platform_cls)
        sim = platform.sim
        # The crashed host's pool is empty and every warm worker it held
        # was actually torn down (not leaked half-alive).
        crashed = platform.cluster.host(crash_host)
        assert crashed.pool.live_entries(sim.now) == []
        for worker in pool_before[crash_host]:
            assert worker.sandbox.state == "stopped"
        # Pool sizes return to baseline: the cluster holds no more warm
        # workers than before the crash, all of them on live hosts.
        total_before = sum(len(workers) for workers in pool_before.values())
        live_after = [entry
                      for host in platform.cluster.hosts
                      for entry in host.pool.live_entries(sim.now)]
        assert len(live_after) <= total_before
        for entry in live_after:
            host_ids = [host.host_id for host in platform.cluster.hosts
                        if entry in host.pool.live_entries(sim.now)]
            assert crash_host not in host_ids

    def test_restore_fault_was_consumed_or_harmless(self, platform_cls):
        platform, specs, _, _, baseline, _ = _fault_row(platform_cls)
        # Fireworks pays the regeneration; everyone else never draws the
        # budget.  Either way the baseline invocation completed.
        assert baseline[specs[0].name].total_ms > 0
        if platform_cls is FireworksPlatform:
            assert platform.restore_failures == 1
