"""Cross-platform matrix: every FaaSdom workload on every platform.

The broad-coverage safety net: all 8 workloads install and invoke on all
5 platforms, and the paper's global orderings hold everywhere.
"""

import pytest

from repro.bench import fresh_platform, install_all, invoke_once
from repro.core import FireworksPlatform
from repro.platforms import (CatalyzerPlatform, FirecrackerPlatform,
                             GVisorPlatform, OpenWhiskPlatform)
from repro.workloads import all_faasdom_specs

ALL_PLATFORMS = (OpenWhiskPlatform, GVisorPlatform, FirecrackerPlatform,
                 CatalyzerPlatform, FireworksPlatform)


@pytest.fixture(scope="module")
def matrix():
    """record[platform_name][spec_name] for one invocation of everything."""
    records = {}
    for platform_cls in ALL_PLATFORMS:
        platform = fresh_platform(platform_cls)
        specs = all_faasdom_specs()
        install_all(platform, specs)
        records[platform.name] = {
            spec.name: invoke_once(platform, spec.name)
            for spec in specs
        }
    return records


class TestMatrix:
    def test_everything_ran(self, matrix):
        assert len(matrix) == 5
        for platform_name, by_spec in matrix.items():
            assert len(by_spec) == 8, platform_name
            for spec_name, record in by_spec.items():
                assert record.exec_ms > 0, (platform_name, spec_name)
                assert record.total_ms > 0, (platform_name, spec_name)

    def test_fireworks_fastest_startup_everywhere_but_sfork(self, matrix):
        for spec_name in matrix["fireworks"]:
            fw_startup = matrix["fireworks"][spec_name].startup_ms
            for platform_name, by_spec in matrix.items():
                if platform_name in ("fireworks", "catalyzer"):
                    continue  # catalyzer's sfork legitimately beats restore
                assert fw_startup < by_spec[spec_name].startup_ms, \
                    (platform_name, spec_name)

    def test_fireworks_exec_floor_on_compute_workloads(self, matrix):
        """Post-JIT execution is the floor wherever compute dominates."""
        compute_specs = [name for name in matrix["fireworks"]
                         if "fact" in name or "matrix" in name]
        for spec_name in compute_specs:
            fw_exec = matrix["fireworks"][spec_name].exec_ms
            for platform_name, by_spec in matrix.items():
                assert fw_exec <= by_spec[spec_name].exec_ms * 1.01, \
                    (platform_name, spec_name)

    def test_container_io_exception_holds(self, matrix):
        """§5.2.1(2): the one place a baseline out-executes Fireworks is
        container disk I/O (OverlayFS vs the microVM's virtio path)."""
        for spec_name in ("faas-diskio-nodejs", "faas-diskio-python"):
            assert matrix["openwhisk"][spec_name].exec_ms < \
                matrix["fireworks"][spec_name].exec_ms

    def test_python_compute_suffers_most_without_fireworks(self, matrix):
        """The interpreted-Python penalty is the largest exec gap."""
        gaps = {}
        for spec_name, fw_record in matrix["fireworks"].items():
            baseline = matrix["firecracker"][spec_name].exec_ms
            gaps[spec_name] = baseline / fw_record.exec_ms
        worst = max(gaps, key=gaps.get)
        assert worst == "faas-matrix-mult-python"

    def test_no_platform_leaks_endpoints(self, matrix):
        # The fixture platforms are gone; this asserts the records alone
        # don't pin workers (no retain_workers set).
        for by_spec in matrix.values():
            for record in by_spec.values():
                worker = record.worker
                if worker is not None and worker.endpoint is not None:
                    # Only live (retained) workers may hold endpoints.
                    assert worker.sandbox.state != "stopped"
