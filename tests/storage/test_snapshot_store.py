"""Unit tests for the LRU snapshot store (§6 replacement policy)."""

import pytest

from repro.errors import SnapshotNotFoundError, StorageError
from repro.storage.disk import BlockDevice
from repro.storage.snapshot_store import SnapshotStore


class FakeImage:
    """Minimal StorableImage."""

    def __init__(self, size_mb: float) -> None:
        self.size_mb = size_mb
        self.evicted = False

    def on_evicted(self) -> None:
        self.evicted = True


@pytest.fixture
def store():
    return SnapshotStore(BlockDevice(1000), capacity_images=3)


class TestBasics:
    def test_put_get_roundtrip(self, store):
        image = FakeImage(100)
        write_ms = store.put("fn", image)
        assert write_ms > 0
        assert store.get("fn") is image
        assert store.contains("fn")

    def test_missing_key_raises_and_counts_miss(self, store):
        with pytest.raises(SnapshotNotFoundError):
            store.get("nope")
        assert store.misses == 1

    def test_hits_counted(self, store):
        store.put("fn", FakeImage(10))
        store.get("fn")
        store.get("fn")
        assert store.hits == 2

    def test_overwrite_same_key(self, store):
        first = FakeImage(10)
        store.put("fn", first)
        store.put("fn", FakeImage(20))
        assert first.evicted
        assert len(store) == 1

    def test_remove(self, store):
        image = FakeImage(10)
        store.put("fn", image)
        store.remove("fn")
        assert image.evicted
        assert not store.contains("fn")
        with pytest.raises(SnapshotNotFoundError):
            store.remove("fn")

    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            SnapshotStore(BlockDevice(100), capacity_images=0)


class TestLru:
    def test_evicts_least_recently_used(self, store):
        images = {key: FakeImage(10) for key in ("a", "b", "c")}
        for key, image in images.items():
            store.put(key, image)
        store.get("a")  # refresh a; b becomes LRU
        store.put("d", FakeImage(10))
        assert images["b"].evicted
        assert store.contains("a")
        assert store.evictions == 1

    def test_evicts_for_disk_space(self):
        store = SnapshotStore(BlockDevice(250), capacity_images=100)
        first = FakeImage(170)
        store.put("a", first)
        store.put("b", FakeImage(170))
        assert first.evicted
        assert store.contains("b")

    def test_disk_usage_tracks_images(self, store):
        store.put("a", FakeImage(100))
        store.put("b", FakeImage(50))
        assert store.disk_used_mb == pytest.approx(150)

    def test_keys_in_lru_order(self, store):
        for key in ("a", "b", "c"):
            store.put(key, FakeImage(1))
        store.get("a")
        assert list(store.keys()) == ["b", "c", "a"]


class TestOversizeImage:
    """Regression: an image larger than the device used to drain the whole
    store through futile LRU evictions before the write finally failed."""

    def test_oversize_put_raises_without_evicting(self, store):
        keepers = {key: FakeImage(100) for key in ("a", "b")}
        for key, image in keepers.items():
            store.put(key, image)
        with pytest.raises(StorageError):
            store.put("huge", FakeImage(5000))
        # The store survives intact: nothing evicted, nothing lost.
        assert store.evictions == 0
        assert all(not image.evicted for image in keepers.values())
        assert sorted(store.keys()) == ["a", "b"]
        assert not store.contains("huge")

    def test_oversize_put_on_empty_store_raises(self, store):
        with pytest.raises(StorageError):
            store.put("huge", FakeImage(5000))
        assert len(store) == 0

    def test_exactly_device_sized_image_fits(self, store):
        store.put("fits", FakeImage(1000))
        assert store.contains("fits")


class TestPartialResidency:
    def test_partial_put_tracks_resident_bytes(self, store):
        store.put("fn", FakeImage(100), resident_mb=30)
        assert store.contains("fn")
        assert not store.is_complete("fn")
        assert store.resident_mb("fn") == pytest.approx(30)
        assert store.missing_mb("fn") == pytest.approx(70)
        assert store.disk_used_mb == pytest.approx(30)

    def test_full_put_is_complete(self, store):
        store.put("fn", FakeImage(100))
        assert store.is_complete("fn")
        assert store.missing_mb("fn") == 0.0
        assert store.resident_mb("fn") == pytest.approx(100)

    def test_resident_mb_bounds_validated(self, store):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            store.put("fn", FakeImage(100), resident_mb=-1)
        with pytest.raises(ValidationError):
            store.put("fn", FakeImage(100), resident_mb=101)

    def test_extend_resident_lands_bytes(self, store):
        store.put("fn", FakeImage(100), resident_mb=30)
        store.extend_resident("fn", 40)
        assert store.resident_mb("fn") == pytest.approx(70)
        assert not store.is_complete("fn")
        store.extend_resident("fn", 30)
        assert store.is_complete("fn")
        assert store.disk_used_mb == pytest.approx(100)

    def test_extend_past_size_clamps_and_completes(self, store):
        store.put("fn", FakeImage(100), resident_mb=90)
        store.extend_resident("fn", 500)
        assert store.is_complete("fn")
        assert store.resident_mb("fn") == pytest.approx(100)

    def test_extend_on_complete_image_is_noop(self, store):
        store.put("fn", FakeImage(100))
        assert store.extend_resident("fn", 50) == 0.0
        assert store.resident_mb("fn") == pytest.approx(100)

    def test_mark_complete(self, store):
        store.put("fn", FakeImage(100), resident_mb=10)
        store.mark_complete("fn")
        assert store.is_complete("fn")

    def test_missing_key_raises(self, store):
        with pytest.raises(SnapshotNotFoundError):
            store.resident_mb("nope")
        with pytest.raises(SnapshotNotFoundError):
            store.is_complete("nope")
        with pytest.raises(SnapshotNotFoundError):
            store.extend_resident("nope", 5)
        assert store.missing_mb("nope") == 0.0

    def test_discard_clears_partial_state(self, store):
        store.put("fn", FakeImage(100), resident_mb=30)
        store.remove("fn")
        # Re-adding the key fully resident must not inherit stale
        # partial-residency bookkeeping.
        store.put("fn", FakeImage(100))
        assert store.is_complete("fn")

    def test_clear_drops_partial_state(self, store):
        store.put("fn", FakeImage(100), resident_mb=30)
        assert store.clear() == 1
        store.put("fn", FakeImage(100))
        assert store.is_complete("fn")

    def test_extend_evicts_others_but_protects_self(self):
        store = SnapshotStore(BlockDevice(200), capacity_images=10)
        victim = FakeImage(120)
        store.put("victim", victim)
        store.put("fn", FakeImage(150), resident_mb=50)
        # Landing the residual needs 100 MiB; only 30 are free, so the
        # victim goes — but never the still-streaming image itself.
        store.extend_resident("fn", 100)
        assert victim.evicted
        assert store.contains("fn")
        assert store.is_complete("fn")
