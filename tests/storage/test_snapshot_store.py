"""Unit tests for the LRU snapshot store (§6 replacement policy)."""

import pytest

from repro.errors import SnapshotNotFoundError, StorageError
from repro.storage.disk import BlockDevice
from repro.storage.snapshot_store import SnapshotStore


class FakeImage:
    """Minimal StorableImage."""

    def __init__(self, size_mb: float) -> None:
        self.size_mb = size_mb
        self.evicted = False

    def on_evicted(self) -> None:
        self.evicted = True


@pytest.fixture
def store():
    return SnapshotStore(BlockDevice(1000), capacity_images=3)


class TestBasics:
    def test_put_get_roundtrip(self, store):
        image = FakeImage(100)
        write_ms = store.put("fn", image)
        assert write_ms > 0
        assert store.get("fn") is image
        assert store.contains("fn")

    def test_missing_key_raises_and_counts_miss(self, store):
        with pytest.raises(SnapshotNotFoundError):
            store.get("nope")
        assert store.misses == 1

    def test_hits_counted(self, store):
        store.put("fn", FakeImage(10))
        store.get("fn")
        store.get("fn")
        assert store.hits == 2

    def test_overwrite_same_key(self, store):
        first = FakeImage(10)
        store.put("fn", first)
        store.put("fn", FakeImage(20))
        assert first.evicted
        assert len(store) == 1

    def test_remove(self, store):
        image = FakeImage(10)
        store.put("fn", image)
        store.remove("fn")
        assert image.evicted
        assert not store.contains("fn")
        with pytest.raises(SnapshotNotFoundError):
            store.remove("fn")

    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            SnapshotStore(BlockDevice(100), capacity_images=0)


class TestLru:
    def test_evicts_least_recently_used(self, store):
        images = {key: FakeImage(10) for key in ("a", "b", "c")}
        for key, image in images.items():
            store.put(key, image)
        store.get("a")  # refresh a; b becomes LRU
        store.put("d", FakeImage(10))
        assert images["b"].evicted
        assert store.contains("a")
        assert store.evictions == 1

    def test_evicts_for_disk_space(self):
        store = SnapshotStore(BlockDevice(250), capacity_images=100)
        first = FakeImage(170)
        store.put("a", first)
        store.put("b", FakeImage(170))
        assert first.evicted
        assert store.contains("b")

    def test_disk_usage_tracks_images(self, store):
        store.put("a", FakeImage(100))
        store.put("b", FakeImage(50))
        assert store.disk_used_mb == pytest.approx(150)

    def test_keys_in_lru_order(self, store):
        for key in ("a", "b", "c"):
            store.put(key, FakeImage(1))
        store.get("a")
        assert list(store.keys()) == ["b", "c", "a"]
