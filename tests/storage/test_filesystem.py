"""Unit tests for per-sandbox I/O path models (Fig 6(c)'s ordering)."""

import pytest

from repro.config import (CONTAINER_LATENCY, GVISOR_LATENCY,
                          MICROVM_LATENCY)
from repro.errors import StorageError
from repro.storage.filesystem import IoPathModel


@pytest.fixture
def paths():
    return {
        "container": IoPathModel(CONTAINER_LATENCY),
        "microvm": IoPathModel(MICROVM_LATENCY),
        "gvisor": IoPathModel(GVISOR_LATENCY),
    }


class TestDiskOrdering:
    def test_paper_io_ordering(self, paths):
        """§5.2.1(2): OverlayFS container < virtio microVM << gVisor."""
        costs = {name: path.disk_read_ms(10.0)
                 for name, path in paths.items()}
        assert costs["container"] < costs["microvm"] < costs["gvisor"]

    def test_gvisor_pays_sentry_gofer_per_op(self, paths):
        base = paths["microvm"].disk_read_ms(10.0)
        gvisor = paths["gvisor"].disk_read_ms(10.0)
        assert gvisor - base >= GVISOR_LATENCY.syscall_overhead_ms

    def test_cost_scales_with_size(self, paths):
        small = paths["microvm"].disk_read_ms(1.0)
        large = paths["microvm"].disk_read_ms(100.0)
        assert large > small

    def test_write_equals_read_path(self, paths):
        assert paths["microvm"].disk_write_ms(10.0) == \
            pytest.approx(paths["microvm"].disk_read_ms(10.0))

    def test_negative_size_raises(self, paths):
        with pytest.raises(StorageError):
            paths["microvm"].disk_read_ms(-1)


class TestNetPath:
    def test_send_recv_symmetry(self, paths):
        assert paths["container"].net_send_ms(1.0) == \
            pytest.approx(paths["container"].net_recv_ms(1.0))

    def test_gvisor_network_also_intercepted(self, paths):
        assert paths["gvisor"].net_send_ms(0.5) > \
            paths["microvm"].net_send_ms(0.5)

    def test_negative_message_raises(self, paths):
        with pytest.raises(StorageError):
            paths["microvm"].net_send_ms(-0.1)
