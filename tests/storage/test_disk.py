"""Unit tests for the host block device."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import BlockDevice


class TestBlockDevice:
    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            BlockDevice(0)

    def test_write_and_read_costs(self):
        device = BlockDevice(1000, read_mb_per_ms=2.0, write_mb_per_ms=1.0)
        assert device.write_file("a.snap", 100) == pytest.approx(100)
        assert device.read_cost_ms(100) == pytest.approx(50)

    def test_usage_tracking(self):
        device = BlockDevice(1000)
        device.write_file("a", 300)
        device.write_file("b", 200)
        assert device.used_mb == pytest.approx(500)
        assert device.free_mb == pytest.approx(500)

    def test_overwrite_replaces_size(self):
        device = BlockDevice(1000)
        device.write_file("a", 300)
        device.write_file("a", 100)
        assert device.used_mb == pytest.approx(100)

    def test_disk_full_raises(self):
        device = BlockDevice(100)
        device.write_file("a", 90)
        with pytest.raises(StorageError, match="disk full"):
            device.write_file("b", 20)

    def test_overwrite_counts_reclaimed_space(self):
        device = BlockDevice(100)
        device.write_file("a", 90)
        device.write_file("a", 95)  # fits: old copy is replaced
        assert device.used_mb == pytest.approx(95)

    def test_delete(self):
        device = BlockDevice(100)
        device.write_file("a", 50)
        device.delete_file("a")
        assert device.used_mb == 0
        with pytest.raises(StorageError):
            device.delete_file("a")

    def test_file_size_queries(self):
        device = BlockDevice(100)
        device.write_file("a", 42)
        assert device.has_file("a")
        assert device.file_size_mb("a") == pytest.approx(42)
        with pytest.raises(StorageError):
            device.file_size_mb("missing")

    def test_negative_sizes_raise(self):
        device = BlockDevice(100)
        with pytest.raises(StorageError):
            device.write_file("a", -1)
        with pytest.raises(StorageError):
            device.read_cost_ms(-1)
