"""Unit tests for the tiered remote snapshot store (§6)."""

import pytest

from repro.errors import SnapshotNotFoundError, StorageError
from repro.storage.disk import BlockDevice
from repro.storage.remote_store import RemoteObjectStore, TieredSnapshotStore


class FakeImage:
    def __init__(self, size_mb: float) -> None:
        self.size_mb = size_mb
        self.evicted = False

    def on_evicted(self) -> None:
        self.evicted = True


@pytest.fixture
def tiered():
    return TieredSnapshotStore(BlockDevice(10000), RemoteObjectStore(),
                               local_capacity_images=2)


class TestRemoteObjectStore:
    def test_upload_download_roundtrip(self):
        remote = RemoteObjectStore(rtt_ms=8.0, bandwidth_mb_per_ms=2.0)
        image = FakeImage(100)
        upload_ms = remote.upload("fn", image)
        assert upload_ms == pytest.approx(8.0 + 50.0)
        fetched, download_ms = remote.download("fn")
        assert fetched is image
        assert download_ms == pytest.approx(58.0)

    def test_missing_key_raises(self):
        with pytest.raises(SnapshotNotFoundError):
            RemoteObjectStore().download("ghost")

    def test_bad_bandwidth_raises(self):
        with pytest.raises(StorageError):
            RemoteObjectStore(bandwidth_mb_per_ms=0)


class TestTieredStore:
    def test_local_hit_is_free(self, tiered):
        image = FakeImage(170)
        tiered.put("fn", image)
        fetched, extra_ms = tiered.get("fn")
        assert fetched is image
        assert extra_ms == 0.0
        assert tiered.local_hits == 1

    def test_local_miss_fetches_from_remote(self, tiered):
        image = FakeImage(170)
        tiered.put("fn", image)
        tiered.evict_local("fn")
        fetched, extra_ms = tiered.get("fn")
        assert fetched is image
        assert extra_ms > 0
        assert tiered.remote_fetches == 1
        # Now cached locally again.
        _, second_ms = tiered.get("fn")
        assert second_ms == 0.0

    def test_capacity_pressure_falls_back_to_remote(self, tiered):
        images = {k: FakeImage(100) for k in ("a", "b", "c")}
        for key, image in images.items():
            tiered.put(key, image)
        # Local capacity 2: "a" was evicted locally, but survives remotely.
        assert not tiered.local.contains("a")
        assert tiered.contains("a")
        _, extra_ms = tiered.get("a")
        assert extra_ms > 0

    def test_missing_everywhere_raises(self, tiered):
        with pytest.raises(SnapshotNotFoundError):
            tiered.get("ghost")

    def test_put_writes_through(self, tiered):
        total_ms = tiered.put("fn", FakeImage(50))
        assert total_ms > 0
        assert tiered.local.contains("fn")
        assert tiered.remote.contains("fn")
