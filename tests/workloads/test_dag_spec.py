"""Unit tests for DagSpec: lookups, graph queries, validation, documents."""

import pytest

from repro.errors import ValidationError
from repro.workloads import (DagEdge, DagSpec, DagStage, alexa_skills_chain,
                             alexa_skills_dag, chain_to_dag,
                             dag_from_document, dag_to_document,
                             data_analysis_dag, make_dag)
from repro.workloads.dag import EDGE_TRIGGER, bind_functions, validate_dag


def _diamond():
    """split fans out to left/right, both fan in to join."""
    stages = [DagStage("split", "fn-split"), DagStage("left", "fn-left"),
              DagStage("right", "fn-right"), DagStage("join", "fn-join")]
    edges = [DagEdge("split", "left"), DagEdge("split", "right"),
             DagEdge("left", "join"), DagEdge("right", "join")]
    return make_dag("diamond", "split", stages, edges)


class TestLookups:
    def test_stage_and_function_names(self):
        dag = _diamond()
        assert dag.stage("left").function == "fn-left"
        assert dag.stage_names() == ("split", "left", "right", "join")

    def test_missing_stage_raises(self):
        with pytest.raises(ValidationError, match="no stage"):
            _diamond().stage("ghost")

    def test_missing_function_binding_raises(self):
        with pytest.raises(ValidationError, match="no function"):
            _diamond().function_spec("fn-split")

    def test_edge_queries(self):
        dag = _diamond()
        assert {e.src for e in dag.invoke_in_edges("join")} == \
            {"left", "right"}
        assert {e.dst for e in dag.invoke_out_edges("split")} == \
            {"left", "right"}
        assert dag.trigger_edges() == ()

    def test_trigger_driven(self):
        dag = data_analysis_dag()
        assert dag.trigger_driven("analyze")
        assert not dag.trigger_driven("format")


class TestGraphQueries:
    def test_invoke_order_is_topological(self):
        dag = _diamond()
        order = dag.invoke_order()
        for edge in dag.edges:
            assert order.index(edge.src) < order.index(edge.dst)

    def test_invoke_order_tie_breaks_by_declaration(self):
        assert _diamond().invoke_order() == ("split", "left", "right",
                                             "join")

    def test_invoke_order_deterministic(self):
        dag = _diamond()
        assert dag.invoke_order() == dag.invoke_order()

    def test_active_stages_full_diamond(self):
        assert _diamond().active_stages({}) == ("split", "left", "right",
                                                "join")

    def test_active_stages_conditional_edge(self):
        stages = [DagStage("a", "fa"), DagStage("b", "fb"),
                  DagStage("c", "fc")]
        edges = [DagEdge("a", "b", when_key="go", when_value="yes"),
                 DagEdge("b", "c")]
        dag = make_dag("cond", "a", stages, edges)
        assert dag.active_stages({"go": "yes"}) == ("a", "b", "c")
        # Edge not taken: everything downstream of it is inactive.
        assert dag.active_stages({"go": "no"}) == ("a",)
        assert dag.active_stages({}) == ("a",)

    def test_active_stages_excludes_trigger_driven(self):
        dag = data_analysis_dag()
        active = dag.active_stages({})
        assert "analyze" not in active
        assert "stats" not in active  # downstream of the trigger stage

    def test_active_stages_trigger_segment_root(self):
        dag = data_analysis_dag()
        assert dag.active_stages({}, root="analyze") == ("analyze",
                                                         "stats")

    def test_active_stages_unknown_root_raises(self):
        with pytest.raises(ValidationError, match="no stage"):
            _diamond().active_stages({}, root="ghost")

    def test_alexa_fan_out_selects_one_skill(self):
        dag = alexa_skills_dag()
        active = dag.active_stages({"skill": "fact"})
        assert active == ("frontend", "fact")


class TestValidation:
    def test_unknown_edge_stage_path(self):
        stages = [DagStage("a", "fa"), DagStage("b", "fb")]
        edges = [DagEdge("a", "b"), DagEdge("a", "ghost")]
        with pytest.raises(ValidationError,
                           match=r"^dag\.edges\[1\]\.to:"):
            make_dag("bad", "a", stages, edges)

    def test_duplicate_stage_path(self):
        stages = [DagStage("a", "fa"), DagStage("a", "fb")]
        with pytest.raises(ValidationError,
                           match=r"^dag\.stages\[1\]\.name:"):
            make_dag("bad", "a", stages)

    def test_cycle_detected_over_trigger_edges(self):
        stages = [DagStage("a", "fa"), DagStage("b", "fb"),
                  DagStage("c", "fc")]
        edges = [DagEdge("b", "c"),
                 DagEdge("c", "b", kind=EDGE_TRIGGER, database="db")]
        with pytest.raises(ValidationError, match=r"^dag\.edges: cycle"):
            make_dag("bad", "a", stages, edges)

    def test_entry_cannot_have_in_edges(self):
        stages = [DagStage("a", "fa"), DagStage("b", "fb")]
        edges = [DagEdge("a", "b"), DagEdge("b", "a")]
        with pytest.raises(ValidationError,
                           match=r"entry stage 'a' cannot"):
            make_dag("bad", "a", stages, edges)

    def test_trigger_edge_needs_database(self):
        stages = [DagStage("a", "fa"), DagStage("b", "fb")]
        edges = [DagEdge("a", "b", kind=EDGE_TRIGGER)]
        with pytest.raises(ValidationError,
                           match=r"^dag\.edges\[0\]\.database:"):
            make_dag("bad", "a", stages, edges)

    def test_trigger_edge_cannot_be_conditional(self):
        stages = [DagStage("a", "fa"), DagStage("b", "fb")]
        edges = [DagEdge("a", "b", kind=EDGE_TRIGGER, database="db",
                         when_key="k", when_value=1)]
        with pytest.raises(ValidationError,
                           match=r"^dag\.edges\[0\]\.when:"):
            make_dag("bad", "a", stages, edges)

    def test_mixed_in_edge_kinds_rejected(self):
        stages = [DagStage("a", "fa"), DagStage("b", "fb"),
                  DagStage("c", "fc")]
        edges = [DagEdge("a", "b"), DagEdge("a", "c"), DagEdge("b", "c"),
                 DagEdge("a", "c", kind=EDGE_TRIGGER, database="db")]
        with pytest.raises(ValidationError, match="mixes invoke and"):
            make_dag("bad", "a", stages, edges)

    def test_guest_hops_needs_unique_functions(self):
        stages = [DagStage("a", "shared"), DagStage("b", "shared")]
        with pytest.raises(ValidationError, match="unique function"):
            make_dag("bad", "a", stages, [DagEdge("a", "b")],
                     guest_hops=True)

    def test_unbound_stage_function_rejected(self):
        dag = _diamond()
        chain = alexa_skills_chain()
        with pytest.raises(ValidationError, match="no bound function"):
            bind_functions(dag, chain.functions)

    def test_validate_returns_spec(self):
        dag = _diamond()
        assert validate_dag(dag) is dag


class TestChainToDag:
    def test_linear_structure(self):
        chain = alexa_skills_chain()
        dag = chain_to_dag(chain)
        assert dag.entry == chain.entry
        assert dag.guest_hops
        assert len(dag.edges) == len(dag.stages) - 1
        assert dag.invoke_order() == tuple(f.name for f in chain.functions)

    def test_functions_bound(self):
        dag = chain_to_dag(alexa_skills_chain())
        for stage in dag.stages:
            assert dag.function_spec(stage.function).name == stage.function


class TestDocuments:
    def test_round_trip(self):
        for dag in (_diamond(), alexa_skills_dag(), data_analysis_dag()):
            doc = dag_to_document(dag)
            parsed = dag_from_document(doc, functions=dag.functions)
            assert dag_to_document(parsed) == doc
            assert parsed.stage_names() == dag.stage_names()
            assert parsed.edges == dag.edges

    def test_unknown_key_path(self):
        doc = dag_to_document(_diamond())
        doc["bogus"] = 1
        with pytest.raises(ValidationError, match=r"^dag\.bogus:"):
            dag_from_document(doc)

    def test_non_mapping_document(self):
        with pytest.raises(ValidationError, match=r"^dag: must be an"):
            dag_from_document([1, 2])

    def test_missing_entry(self):
        doc = dag_to_document(_diamond())
        del doc["entry"]
        with pytest.raises(ValidationError, match="missing required key"):
            dag_from_document(doc)

    def test_bad_when_clause_path(self):
        doc = dag_to_document(_diamond())
        doc["edges"][0]["when"] = {"key": "k"}
        with pytest.raises(ValidationError,
                           match=r"^dag\.edges\[0\]\.when:"):
            dag_from_document(doc)

    def test_bool_payload_kb_rejected(self):
        doc = dag_to_document(_diamond())
        doc["edges"][0]["payload_kb"] = True
        with pytest.raises(ValidationError,
                           match=r"^dag\.edges\[0\]\.payload_kb:"):
            dag_from_document(doc)


class TestServerlessBenchDags:
    def test_alexa_dag_valid_and_guest_hopping(self):
        dag = alexa_skills_dag()
        assert dag.guest_hops
        assert validate_dag(dag) is dag
        skills = {e.when_value for e in dag.invoke_out_edges("frontend")}
        assert len(skills) >= 3

    def test_data_analysis_has_trigger_edge(self):
        dag = data_analysis_dag()
        triggers = dag.trigger_edges()
        assert len(triggers) == 1
        assert triggers[0].database
