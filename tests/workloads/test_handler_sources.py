"""Execute the Python handler sources for real.

The workload sources are not decoration: the faas-* Python handlers are
actual runnable code.  These tests ``exec`` them and check their results —
so the sources the annotator transforms stay semantically meaningful.
"""

import pytest

from repro.workloads.faasdom import faasdom_spec


def _load_main(source: str):
    namespace: dict = {}
    exec(compile(source, "<handler>", "exec"), namespace)  # noqa: S102
    return namespace["main"]


class TestFactHandler:
    @pytest.fixture(scope="class")
    def main(self):
        return _load_main(faasdom_spec("faas-fact", "python").source)

    def test_factorizes_composite(self, main):
        assert main({"n": 12})["factors"] == [2, 2, 3]

    def test_factorizes_prime(self, main):
        assert main({"n": 97})["factors"] == [97]

    def test_product_reconstructs_input(self, main):
        n = 277200
        product = 1
        for factor in main({"n": n})["factors"]:
            product *= factor
        assert product == n

    def test_default_parameter(self, main):
        factors = main({})["factors"]
        assert factors  # default n factorizes to something


class TestMatmulHandler:
    @pytest.fixture(scope="class")
    def namespace(self):
        source = faasdom_spec("faas-matrix-mult", "python").source
        namespace: dict = {}
        exec(compile(source, "<handler>", "exec"), namespace)  # noqa: S102
        return namespace

    def test_small_multiplication_correct(self, namespace):
        matmul = namespace["matmul"]
        a = [[1.0, 2.0], [3.0, 4.0]]
        b = [[5.0, 6.0], [7.0, 8.0]]
        assert matmul(a, b, 2) == [[19.0, 22.0], [43.0, 50.0]]

    def test_main_returns_trace(self, namespace):
        result = namespace["main"]({"n": 4})
        assert "trace" in result
        assert isinstance(result["trace"], float)

    def test_trace_matches_direct_computation(self, namespace):
        n = 3
        a = [[float(i + j) for j in range(n)] for i in range(n)]
        b = [[float(i - j) for j in range(n)] for i in range(n)]
        c = namespace["matmul"](a, b, n)
        expected = sum(
            sum(a[i][k] * b[k][i] for k in range(n)) for i in range(n))
        assert sum(c[i][i] for i in range(n)) == pytest.approx(expected)


class TestNetlatencyHandler:
    def test_responds_with_79_byte_body(self):
        """§5.2.1(3): the response body is 79 bytes."""
        main = _load_main(faasdom_spec("faas-netlatency", "python").source)
        response = main({})
        assert response["statusCode"] == 200
        assert len(response["body"]) == 79


class TestDiskioHandler:
    def test_round_trips_10kb_files(self, tmp_path, monkeypatch):
        """§5.2.1(2): 10 KB writes and reads, `rounds` times."""
        monkeypatch.chdir(tmp_path)
        source = faasdom_spec("faas-diskio", "python").source
        # Point the handler's fixed path into the sandboxed tmp dir.
        source = source.replace("/tmp/faas-diskio.bin",
                                str(tmp_path / "faas-diskio.bin"))
        main = _load_main(source)
        result = main({"rounds": 3})
        assert result["bytes"] == 3 * 10240


class TestAnnotatedSourcesStillDescribeHandlers:
    def test_annotated_python_keeps_user_logic(self):
        """The annotated source must still contain the user's algorithm."""
        from repro.core.annotator import annotate_python
        source = faasdom_spec("faas-fact", "python").source
        annotated = annotate_python(source).annotated
        assert "factors.append" in annotated
