"""Tests for the extra (appendix) FaaSdom workloads."""

import pytest

from repro.workloads import (BENCHMARK_NAMES, EXTRA_BENCHMARK_NAMES,
                             all_faasdom_specs, faasdom_spec)


def test_paper_set_unchanged():
    """The paper's four benchmarks stay exactly as Table 2 lists them."""
    assert BENCHMARK_NAMES == ("faas-fact", "faas-matrix-mult",
                               "faas-diskio", "faas-netlatency")
    assert set(EXTRA_BENCHMARK_NAMES).isdisjoint(BENCHMARK_NAMES)


def test_all_specs_excludes_extras_by_default():
    assert len(all_faasdom_specs()) == 8
    assert len(all_faasdom_specs(include_extras=True)) == 12


def test_extra_specs_build_and_annotate():
    from repro.core.annotator import annotate
    for name in EXTRA_BENCHMARK_NAMES:
        for language in ("nodejs", "python"):
            spec = faasdom_spec(name, language)
            assert "extra" in spec.description
            result = annotate(spec.source, spec.language)
            assert "main" in result.functions


def test_gzip_python_handler_actually_compresses():
    source = faasdom_spec("faas-gzip", "python").source
    namespace: dict = {}
    exec(compile(source, "<handler>", "exec"), namespace)  # noqa: S102
    result = namespace["main"]({"text": "aaaa", "level": 9})
    assert result["out"] < result["in"] / 10  # repetitive text compresses


def test_image_resize_python_handler_quarters_pixels():
    source = faasdom_spec("faas-image-resize", "python").source
    namespace: dict = {}
    exec(compile(source, "<handler>", "exec"), namespace)  # noqa: S102
    result = namespace["main"]({"w": 8, "h": 8})
    assert result["pixels"] == 16  # 8x8 -> 4x4


def test_gzip_program_includes_disk_write():
    from repro.runtime.ops import DiskWrite
    prog = faasdom_spec("faas-gzip", "nodejs").program()
    assert any(isinstance(op, DiskWrite) for op in prog)
