"""Unit tests for the FaaSdom workload definitions."""

import pytest

from repro.errors import PlatformError
from repro.runtime.ops import Compute, DiskRead, DiskWrite, Respond
from repro.workloads.faasdom import (BENCHMARK_NAMES, LANGUAGES,
                                     all_faasdom_specs, faasdom_spec)


class TestRegistry:
    def test_four_benchmarks_two_languages(self):
        assert len(BENCHMARK_NAMES) == 4
        assert len(LANGUAGES) == 2
        assert len(all_faasdom_specs()) == 8

    def test_unknown_benchmark_raises(self):
        with pytest.raises(PlatformError):
            faasdom_spec("faas-quantum", "nodejs")

    def test_unknown_language_raises(self):
        with pytest.raises(PlatformError):
            faasdom_spec("faas-fact", "rust")

    def test_specs_have_source(self):
        for spec in all_faasdom_specs():
            assert spec.source.strip()
            assert "main" in spec.source

    def test_node_sources_parse_for_annotator(self):
        from repro.core.annotator import annotate
        for spec in all_faasdom_specs():
            result = annotate(spec.source, spec.language)
            assert "main" in result.functions


class TestPrograms:
    def test_diskio_matches_paper_shape(self):
        """§5.2.1(2): 10 KB reads and writes, 100 times each."""
        spec = faasdom_spec("faas-diskio", "nodejs")
        ops = list(spec.program())
        reads = [op for op in ops if isinstance(op, DiskRead)]
        writes = [op for op in ops if isinstance(op, DiskWrite)]
        assert reads[0].kb == 10.0 and reads[0].times == 100
        assert writes[0].kb == 10.0 and writes[0].times == 100

    def test_netlatency_is_compute_light(self):
        spec = faasdom_spec("faas-netlatency", "nodejs")
        prog = spec.program()
        assert prog.total_compute_units() < 500
        assert any(isinstance(op, Respond) for op in prog)

    def test_compute_benchmarks_are_compute_heavy(self):
        for name in ("faas-fact", "faas-matrix-mult"):
            prog = faasdom_spec(name, "nodejs").program()
            assert prog.total_compute_units() > 20000

    def test_python_numba_speedups(self):
        """Fig 7: fact ~20x, matmul ~80x (vectorizable)."""
        fact = faasdom_spec("faas-fact", "python")
        matmul = faasdom_spec("faas-matrix-mult", "python")
        assert fact.app.guest_functions[0].jit_speedup == 20.0
        assert matmul.app.guest_functions[0].jit_speedup == 80.0

    def test_node_npm_load_dominates(self):
        """§5.1: npm installation dominates Node install time."""
        node = faasdom_spec("faas-fact", "nodejs")
        python = faasdom_spec("faas-fact", "python")
        assert node.app.extra_load_ms > python.app.extra_load_ms

    def test_program_factory_is_stable(self):
        spec = faasdom_spec("faas-fact", "nodejs")
        assert spec.program() is spec.program({"anything": 1})


class TestSpecValidation:
    def test_language_mismatch_rejected(self):
        from repro.workloads.base import FunctionSpec
        spec = faasdom_spec("faas-fact", "nodejs")
        with pytest.raises(PlatformError):
            FunctionSpec(name="bad", language="python", app=spec.app,
                         make_program=spec.make_program)

    def test_unsupported_language_rejected(self):
        from repro.runtime.interpreter import AppCode
        from repro.workloads.base import FunctionSpec
        with pytest.raises(PlatformError):
            FunctionSpec(name="bad", language="cobol",
                         app=AppCode(name="a", language="cobol"),
                         make_program=lambda p: None)
