"""Unit tests for the ServerlessBench chain definitions."""

import pytest

from repro.errors import PlatformError
from repro.runtime.ops import Compute, DbGet, DbPut, InvokeNext
from repro.workloads.serverlessbench import (ALEXA_SKILLS, REMINDER_DB,
                                             WAGES_DB, alexa_skills_chain,
                                             analysis_trigger,
                                             data_analysis_chain)


class TestAlexa:
    def test_chain_structure(self):
        chain = alexa_skills_chain()
        assert chain.entry == "alexa-frontend"
        names = {spec.name for spec in chain.functions}
        assert names == {"alexa-frontend", "alexa-fact", "alexa-reminder",
                         "alexa-smarthome"}

    def test_frontend_dispatches_per_skill(self):
        chain = alexa_skills_chain()
        frontend = chain.function("alexa-frontend")
        for skill in ALEXA_SKILLS:
            prog = frontend.program({"skill": skill})
            invoke = next(op for op in prog if isinstance(op, InvokeNext))
            assert invoke.function == f"alexa-{skill}"

    def test_frontend_arg_shapes_vary(self):
        """§6: different skills send different argument shapes."""
        chain = alexa_skills_chain()
        frontend = chain.function("alexa-frontend")
        shapes = set()
        for skill in ALEXA_SKILLS:
            prog = frontend.program({"skill": skill})
            compute = next(op for op in prog if isinstance(op, Compute))
            shapes.add(compute.arg_shape)
        assert len(shapes) == len(ALEXA_SKILLS)

    def test_reminder_reads_and_writes_couchdb(self):
        chain = alexa_skills_chain()
        prog = chain.function("alexa-reminder").program({})
        assert any(isinstance(op, DbGet) and op.database == REMINDER_DB
                   for op in prog)
        assert any(isinstance(op, DbPut) and op.database == REMINDER_DB
                   for op in prog)

    def test_unknown_function_lookup_raises(self):
        with pytest.raises(PlatformError):
            alexa_skills_chain().function("alexa-ghost")

    def test_sources_annotate(self):
        from repro.core.annotator import annotate
        for spec in alexa_skills_chain().functions:
            annotate(spec.source, spec.language)


class TestDataAnalysis:
    def test_chain_structure(self):
        chain = data_analysis_chain()
        assert chain.entry == "da-input"
        assert {spec.name for spec in chain.functions} == \
            {"da-input", "da-format", "da-analyze", "da-stats"}

    def test_insertion_path_writes_wages(self):
        chain = data_analysis_chain()
        fmt = chain.function("da-format").program({})
        assert any(isinstance(op, DbPut) and op.database == WAGES_DB
                   for op in fmt)

    def test_input_chains_to_format(self):
        chain = data_analysis_chain()
        prog = chain.function("da-input").program({})
        invoke = next(op for op in prog if isinstance(op, InvokeNext))
        assert invoke.function == "da-format"

    def test_analysis_chains_to_stats(self):
        chain = data_analysis_chain()
        prog = chain.function("da-analyze").program({})
        invoke = next(op for op in prog if isinstance(op, InvokeNext))
        assert invoke.function == "da-stats"

    def test_trigger_wiring(self):
        """Fig 8(b): the analysis chain is triggered on wages update."""
        assert analysis_trigger() == {WAGES_DB: "da-analyze"}

    def test_all_functions_are_nodejs(self):
        """§5.3: both real-world apps are written in Node.js."""
        for chain in (alexa_skills_chain(), data_analysis_chain()):
            for spec in chain.functions:
                assert spec.language == "nodejs"
