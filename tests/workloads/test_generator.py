"""Unit tests for the Azure-like trace generator."""

import pytest

from repro.errors import PlatformError
from repro.sim.rng import RngStreams
from repro.workloads.generator import (POPULAR_FRACTION, assign_popularity,
                                       poisson_trace, trace_stats)


@pytest.fixture
def rng():
    return RngStreams(42)


class TestPopularity:
    def test_split_matches_shahrad(self, rng):
        """[48]: 18.6% of functions are called more than once a minute."""
        functions = [f"fn{i}" for i in range(100)]
        pops = assign_popularity(functions, rng)
        popular = [p for p in pops if p.popular]
        assert len(popular) == round(100 * POPULAR_FRACTION)

    def test_at_least_one_popular(self, rng):
        pops = assign_popularity(["only"], rng)
        assert pops[0].popular

    def test_empty_functions_raise(self, rng):
        with pytest.raises(PlatformError):
            assign_popularity([], rng)

    def test_popular_rate_faster(self, rng):
        pops = assign_popularity([f"fn{i}" for i in range(10)], rng)
        popular = [p for p in pops if p.popular]
        rare = [p for p in pops if not p.popular]
        assert all(p.mean_interarrival_ms < r.mean_interarrival_ms
                   for p in popular for r in rare)

    def test_deterministic(self):
        a = assign_popularity([f"fn{i}" for i in range(20)], RngStreams(1))
        b = assign_popularity([f"fn{i}" for i in range(20)], RngStreams(1))
        assert [p.function for p in a if p.popular] == \
            [p.function for p in b if p.popular]


class TestTrace:
    def test_sorted_by_time(self, rng):
        pops = assign_popularity([f"fn{i}" for i in range(5)], rng)
        trace = poisson_trace(pops, 600000.0, rng)
        times = [e.at_ms for e in trace]
        assert times == sorted(times)
        assert all(0 <= t < 600000.0 for t in times)

    def test_popular_functions_fire_more(self, rng):
        pops = assign_popularity([f"fn{i}" for i in range(10)], rng)
        trace = poisson_trace(pops, 3_600_000.0, rng)
        counts = {}
        for event in trace:
            counts[event.function] = counts.get(event.function, 0) + 1
        popular_counts = [counts.get(p.function, 0)
                          for p in pops if p.popular]
        rare_counts = [counts.get(p.function, 0)
                       for p in pops if not p.popular]
        assert min(popular_counts) > max(rare_counts)

    def test_rates_match_classes(self, rng):
        """Popular > 1/min; rare << 1/min, over a long horizon."""
        pops = assign_popularity([f"fn{i}" for i in range(10)], rng)
        duration = 7_200_000.0  # 2 hours
        trace = poisson_trace(pops, duration, rng)
        stats = trace_stats(trace, duration)
        for pop in pops:
            rate = stats["per_minute_rates"].get(pop.function, 0.0)
            if pop.popular:
                assert rate > 1.0
            else:
                assert rate < 1.0

    def test_zero_duration_raises(self, rng):
        with pytest.raises(PlatformError):
            poisson_trace([], 0.0, rng)

    def test_deterministic_trace(self):
        pops = assign_popularity(["a", "b"], RngStreams(3))
        t1 = poisson_trace(pops, 60000.0, RngStreams(3))
        t2 = poisson_trace(pops, 60000.0, RngStreams(3))
        assert t1 == t2


class TestZipfWeights:
    def test_normalized_and_monotone(self):
        from repro.workloads.generator import zipf_weights
        weights = zipf_weights(12)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert all(a > b for a, b in zip(weights, weights[1:]))
        assert all(w > 0 for w in weights)

    def test_single_rank(self):
        from repro.workloads.generator import zipf_weights
        assert zipf_weights(1) == [1.0]

    def test_steeper_exponent_concentrates(self):
        from repro.workloads.generator import zipf_weights
        flat = zipf_weights(10, exponent=0.5)
        steep = zipf_weights(10, exponent=2.0)
        assert steep[0] > flat[0]

    def test_errors(self):
        from repro.workloads.generator import zipf_weights
        with pytest.raises(PlatformError):
            zipf_weights(0)
        with pytest.raises(PlatformError):
            zipf_weights(5, exponent=0.0)


class TestMultiTenantChainTrace:
    TENANTS = [f"tenant-{i:02d}" for i in range(5)]
    DAGS = ["diamond", "pipeline"]

    def _trace(self, seed=11, duration_ms=600_000.0, **kwargs):
        from repro.workloads.generator import multi_tenant_chain_trace
        return multi_tenant_chain_trace(self.TENANTS, self.DAGS,
                                        duration_ms, RngStreams(seed),
                                        **kwargs)

    def test_sorted_and_in_window(self):
        trace = self._trace()
        assert trace == sorted(trace,
                               key=lambda e: (e.at_ms, e.tenant, e.dag))
        assert all(0.0 <= e.at_ms < 600_000.0 for e in trace)
        assert {e.dag for e in trace} == set(self.DAGS)

    def test_deterministic(self):
        assert self._trace(seed=11) == self._trace(seed=11)

    def test_seed_changes_trace(self):
        assert self._trace(seed=11) != self._trace(seed=12)

    def test_zipf_ordering_of_tenant_counts(self):
        """Zipf head dominates: the hottest tenant submits the most,
        head ranks stay ordered, and the head/tail ratio is large.
        (Adjacent tail ranks may flip under Poisson noise — the expected
        gap there is small — so only robust order claims are made.)"""
        from repro.workloads.generator import chain_trace_stats
        stats = chain_trace_stats(self._trace(duration_ms=3_600_000.0))
        counts = [stats["per_tenant"][t] for t in self.TENANTS]
        assert counts[0] == max(counts)
        assert counts[0] > counts[1] > counts[2]
        assert counts[0] >= 4 * min(counts)
        assert stats["total_events"] == sum(counts)

    def test_streams_are_independent_per_pair(self):
        """Dropping a dag leaves the other dag's arrivals untouched."""
        from repro.workloads.generator import multi_tenant_chain_trace
        both = self._trace()
        only = multi_tenant_chain_trace(self.TENANTS, ["diamond"],
                                        600_000.0, RngStreams(11))
        assert [e for e in both if e.dag == "diamond"] == only

    def test_error_cases(self):
        from repro.workloads.generator import multi_tenant_chain_trace
        rng = RngStreams(1)
        with pytest.raises(PlatformError):
            multi_tenant_chain_trace([], self.DAGS, 1000.0, rng)
        with pytest.raises(PlatformError):
            multi_tenant_chain_trace(self.TENANTS, [], 1000.0, rng)
        with pytest.raises(PlatformError):
            multi_tenant_chain_trace(self.TENANTS, self.DAGS, 0.0, rng)
        with pytest.raises(PlatformError):
            multi_tenant_chain_trace(self.TENANTS, self.DAGS, 1000.0,
                                     rng, mean_interarrival_ms=0.0)
        with pytest.raises(PlatformError):
            multi_tenant_chain_trace(self.TENANTS, self.DAGS, 1000.0,
                                     rng, depth=1.0)
        with pytest.raises(PlatformError):
            multi_tenant_chain_trace(self.TENANTS, self.DAGS, 1000.0,
                                     rng, period_ms=-1.0)
        with pytest.raises(PlatformError):
            multi_tenant_chain_trace(["a", "a"], self.DAGS, 1000.0, rng)

    def test_scales_to_hundreds_of_tenants(self):
        """Generation-only scale check: 300 tenants x 2 dags (600
        implied function chains) stays a pure, sorted event list."""
        from repro.workloads.generator import (chain_trace_stats,
                                               multi_tenant_chain_trace)
        tenants = [f"t{i:03d}" for i in range(300)]
        trace = multi_tenant_chain_trace(tenants, self.DAGS, 120_000.0,
                                         RngStreams(5))
        assert trace
        ats = [e.at_ms for e in trace]
        assert ats == sorted(ats)
        stats = chain_trace_stats(trace)
        assert stats["per_tenant"]["t000"] >= max(
            stats["per_tenant"].get(t, 0) for t in tenants[250:])
