"""Unit tests for the Azure-like trace generator."""

import pytest

from repro.errors import PlatformError
from repro.sim.rng import RngStreams
from repro.workloads.generator import (POPULAR_FRACTION, assign_popularity,
                                       poisson_trace, trace_stats)


@pytest.fixture
def rng():
    return RngStreams(42)


class TestPopularity:
    def test_split_matches_shahrad(self, rng):
        """[48]: 18.6% of functions are called more than once a minute."""
        functions = [f"fn{i}" for i in range(100)]
        pops = assign_popularity(functions, rng)
        popular = [p for p in pops if p.popular]
        assert len(popular) == round(100 * POPULAR_FRACTION)

    def test_at_least_one_popular(self, rng):
        pops = assign_popularity(["only"], rng)
        assert pops[0].popular

    def test_empty_functions_raise(self, rng):
        with pytest.raises(PlatformError):
            assign_popularity([], rng)

    def test_popular_rate_faster(self, rng):
        pops = assign_popularity([f"fn{i}" for i in range(10)], rng)
        popular = [p for p in pops if p.popular]
        rare = [p for p in pops if not p.popular]
        assert all(p.mean_interarrival_ms < r.mean_interarrival_ms
                   for p in popular for r in rare)

    def test_deterministic(self):
        a = assign_popularity([f"fn{i}" for i in range(20)], RngStreams(1))
        b = assign_popularity([f"fn{i}" for i in range(20)], RngStreams(1))
        assert [p.function for p in a if p.popular] == \
            [p.function for p in b if p.popular]


class TestTrace:
    def test_sorted_by_time(self, rng):
        pops = assign_popularity([f"fn{i}" for i in range(5)], rng)
        trace = poisson_trace(pops, 600000.0, rng)
        times = [e.at_ms for e in trace]
        assert times == sorted(times)
        assert all(0 <= t < 600000.0 for t in times)

    def test_popular_functions_fire_more(self, rng):
        pops = assign_popularity([f"fn{i}" for i in range(10)], rng)
        trace = poisson_trace(pops, 3_600_000.0, rng)
        counts = {}
        for event in trace:
            counts[event.function] = counts.get(event.function, 0) + 1
        popular_counts = [counts.get(p.function, 0)
                          for p in pops if p.popular]
        rare_counts = [counts.get(p.function, 0)
                       for p in pops if not p.popular]
        assert min(popular_counts) > max(rare_counts)

    def test_rates_match_classes(self, rng):
        """Popular > 1/min; rare << 1/min, over a long horizon."""
        pops = assign_popularity([f"fn{i}" for i in range(10)], rng)
        duration = 7_200_000.0  # 2 hours
        trace = poisson_trace(pops, duration, rng)
        stats = trace_stats(trace, duration)
        for pop in pops:
            rate = stats["per_minute_rates"].get(pop.function, 0.0)
            if pop.popular:
                assert rate > 1.0
            else:
                assert rate < 1.0

    def test_zero_duration_raises(self, rng):
        with pytest.raises(PlatformError):
            poisson_trace([], 0.0, rng)

    def test_deterministic_trace(self):
        pops = assign_popularity(["a", "b"], RngStreams(3))
        t1 = poisson_trace(pops, 60000.0, RngStreams(3))
        t2 = poisson_trace(pops, 60000.0, RngStreams(3))
        assert t1 == t2
