# Convenience targets for the Fireworks reproduction.

.PHONY: install test bench report examples serve serve-smoke all clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report

serve:
	python -m repro serve

serve-smoke:
	python tools/validate_scenarios.py
	python tools/serve_smoke.py

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		python $$ex > /dev/null && echo ok || exit 1; \
	done

all: test bench

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
