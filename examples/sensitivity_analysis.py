#!/usr/bin/env python3
"""How robust are the paper's claims to calibration error?

Sweeps two load-bearing constants and watches the headline metrics respond:

* V8's tier-up (hotness) threshold vs the Fig 6a "38% faster execution";
* the snapshot working-set size vs the "133x faster cold start".

Run:  python examples/sensitivity_analysis.py
"""

from repro.bench.sensitivity import run_sensitivity


def main() -> None:
    print("sweeping V8's hotness threshold "
          "(paper-calibrated value: 8000 units)...\n")
    exec_sweep = run_sensitivity(
        "nodejs.hotness_threshold_units",
        [1000.0, 4000.0, 8000.0, 16000.0, 26000.0],
        "node_exec_improvement_pct")
    print(exec_sweep.as_table())
    print("  -> the later V8 tiers up, the more interpreted work the\n"
          "     baselines do, the bigger Fireworks' execution edge.\n")

    print("sweeping the snapshot restore working set "
          "(calibrated: 15% of the image)...\n")
    cold_sweep = run_sensitivity(
        "nodejs.snapshot_working_set_fraction",
        [0.05, 0.10, 0.15, 0.30, 0.60],
        "cold_start_speedup_x")
    print(cold_sweep.as_table())
    print("  -> the cold-start ratio is REAP's lever [54]: fault in less\n"
          "     before first useful work, start up faster.  The paper's\n"
          "     133x and 59.8x both live inside this plausible range.")


if __name__ == "__main__":
    main()
