#!/usr/bin/env python3
"""Memory consolidation: how many microVMs fit before swapping (Fig 10).

Launches faas-fact microVMs under sustained load on plain Firecracker and
on Fireworks until the 128 GB host (vm.swappiness=60) starts swapping, and
prints the memory curve plus the max consolidation counts.

Run:  python examples/consolidation.py
"""

from repro.bench import run_fig10


def main() -> None:
    print("consolidating faas-fact microVMs until the host swaps "
          "(128 GB, threshold 60%)...\n")
    results = run_fig10(sample_every=50)
    for name, series in results.items():
        print(series.as_table())
        print()
    fc = results["firecracker"].max_vms_before_swap
    fw = results["fireworks"].max_vms_before_swap
    print(f"Fireworks consolidates {fw} microVMs vs Firecracker's {fc} "
          f"({fw / fc:.2f}x more; the paper reports 565 vs 337 = 1.68x).")
    print("The difference is the snapshot: clean guest pages — kernel, "
          "runtime, app, and JITted code — are shared copy-on-write "
          "across every clone (Figure 4).")


if __name__ == "__main__":
    main()
