#!/usr/bin/env python3
"""Fault tolerance: Fireworks recovering from injected failures.

Arms the deterministic fault injector with a corrupted snapshot image and
two Kafka-broker hiccups, then shows the invocation succeeding anyway:
the corrupted image is regenerated (the §6 ASLR machinery) and the
parameter fetch is retried.

Run:  python examples/fault_tolerance.py
"""

from repro import FireworksPlatform, Simulation, default_parameters
from repro.faults import FaultInjector
from repro.workloads import faasdom_spec


def main() -> None:
    sim = Simulation(seed=2022)
    faults = FaultInjector()
    fireworks = FireworksPlatform(sim, default_parameters(), faults=faults)
    spec = faasdom_spec("faas-fact", "nodejs")
    sim.run(sim.process(fireworks.install(spec)))

    print("== clean invocation ==")
    clean = sim.run(sim.process(fireworks.invoke(spec.name)))
    print(f"  start-up {clean.startup_ms:6.1f} ms (generation "
          f"{fireworks.image_for(spec.name).generation})")

    print("\n== arming faults: 1 corrupted restore + 2 broker hiccups ==")
    faults.arm("restore", spec.name, count=1)
    faults.arm("param-fetch", spec.name, count=2)
    recovered = sim.run(sim.process(fireworks.invoke(spec.name)))
    print(f"  invocation still succeeded: mode={recovered.mode}")
    print(f"  start-up {recovered.startup_ms:6.1f} ms — includes one "
          "snapshot regeneration and two fetch retries")
    print(f"  restore failures seen : {fireworks.restore_failures}")
    print(f"  param fetch retries   : {fireworks.param_fetch_retries}")
    print(f"  snapshot generation   : "
          f"{fireworks.image_for(spec.name).generation} (was 1)")
    print(f"  leaked network wiring : {fireworks.bridge.endpoint_count()}")

    print("\n== back to normal ==")
    after = sim.run(sim.process(fireworks.invoke(spec.name)))
    print(f"  start-up {after.startup_ms:6.1f} ms (fresh generation, "
          "no faults armed)")


if __name__ == "__main__":
    main()
