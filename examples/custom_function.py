#!/usr/bin/env python3
"""Deploy YOUR function on Fireworks: the downstream-user walkthrough.

Shows the full adoption path for code this repo has never seen:

1. write a handler (real Python source below);
2. describe its runtime behaviour as an op program (compute / db / respond);
3. install it through the API gateway with an authenticated namespace;
4. invoke it and inspect the activation record and latency breakdown.

Run:  python examples/custom_function.py
"""

from repro import FireworksPlatform, Simulation, default_parameters
from repro.platforms import ApiGateway
from repro.runtime import (AppCode, Compute, DbGet, DbPut, GuestFunction,
                           Respond, program)
from repro.workloads import FunctionSpec

HANDLER_SOURCE = '''\
def score(order):
    total = sum(item["price"] * item["qty"] for item in order["items"])
    return total * (0.9 if order.get("loyal") else 1.0)

def main(params):
    order = params.get("order", {"items": []})
    return {"order_id": order.get("id"), "total": score(order)}
'''


def make_order_program(payload):
    """What one invocation does: load the order, price it, persist it."""
    return program(
        DbGet("orders", doc_kb=1.8),
        Compute(4200.0, function="main",
                arg_shape=(payload.get("currency", "usd"),)),
        DbPut("order-totals", doc_kb=0.7),
        Respond(0.5),
    )


def main() -> None:
    sim = Simulation(seed=2022)
    fireworks = FireworksPlatform(sim, default_parameters())
    gateway = ApiGateway(fireworks)
    api_key = gateway.create_namespace("acme-shop")

    spec = FunctionSpec(
        name="price-order",
        language="python",
        app=AppCode(
            name="price-order", language="python",
            guest_functions=(GuestFunction("main", 600.0, 14.0),
                             GuestFunction("score", 300.0, 14.0))),
        make_program=make_order_program,
        source=HANDLER_SOURCE,
        description="Prices an order with loyalty discount")

    print("== install (annotate + post-JIT snapshot) ==")
    sim.run(sim.process(fireworks.install(spec)))
    report = fireworks.install_reports["price-order"]
    print(f"  annotated functions: {report.annotated.functions}")
    print(f"  install total: {report.total_ms:.0f} ms "
          f"(snapshot {report.snapshot_ms:.0f} ms)")

    print("\n== invoke through the authenticated gateway ==")
    fireworks.couch.database("orders").put(
        "o-17", {"id": "o-17", "items": [{"price": 10.0, "qty": 3}],
                 "loyal": True})
    for currency in ("usd", "eur"):
        activation = sim.run(sim.process(gateway.handle_request(
            api_key, "price-order",
            payload={"order": {"id": "o-17"}, "currency": currency})))
        record = activation.record
        print(f"  {activation.activation_id}: {activation.status}, "
              f"start-up {record.startup_ms:5.1f} ms, "
              f"exec {record.exec_ms:6.1f} ms "
              f"(db {record.guest.db_ms:4.1f} ms, "
              f"deopts {record.guest.deopt_count})")

    print("\nEach clone resumed the same post-JIT snapshot in ~35 ms; the "
          "first concrete argument shape de-optimized the snapshot's "
          "generically-trained code once per clone and immediately "
          "re-specialized (§6) — snapshots share code, not runtime "
          "type feedback.")


if __name__ == "__main__":
    main()
