#!/usr/bin/env python3
"""Quickstart: install a function on Fireworks and invoke it.

Walks the whole §3 flow: the code annotator transforms the handler source,
the installer boots a microVM, JITs the function, snapshots it, and the
invocation restores the snapshot with fresh arguments through Kafka/MMDS.

Run:  python examples/quickstart.py
"""

from repro import FireworksPlatform, Simulation, default_parameters
from repro.workloads import faasdom_spec


def main() -> None:
    sim = Simulation(seed=2022)
    fireworks = FireworksPlatform(sim, default_parameters())

    # A FaaSdom benchmark: integer factorization in Python.
    spec = faasdom_spec("faas-fact", "python")

    print("== installation phase (annotate, boot, JIT, snapshot) ==")
    sim.run(sim.process(fireworks.install(spec)))
    report = fireworks.install_reports[spec.name]
    print(f"  annotate : {report.annotate_ms:8.1f} ms")
    print(f"  boot+load: {report.boot_ms:8.1f} ms")
    print(f"  forced JIT (Numba): {report.jit_ms:5.1f} ms")
    print(f"  snapshot : {report.snapshot_ms:8.1f} ms "
          f"({report.image.size_mb:.0f} MiB post-JIT image)")

    print("\n== annotated source (first 14 lines) ==")
    for line in report.annotated.annotated.splitlines()[:14]:
        print(f"  {line}")

    print("\n== invocation phase (restore the post-JIT snapshot) ==")
    for index in range(3):
        record = sim.run(sim.process(
            fireworks.invoke(spec.name, payload={"n": 1000003 + index})))
        print(f"  invocation {index + 1}: start-up {record.startup_ms:6.1f} ms"
              f" | exec {record.exec_ms:6.1f} ms"
              f" | others {record.other_ms:4.1f} ms"
              f" | mode={record.mode}")

    print("\nEvery invocation resumes the same post-JIT snapshot: no cold "
          "start, no interpreter warm-up, no JIT cost.")


if __name__ == "__main__":
    main()
