#!/usr/bin/env python3
"""Annotate your own serverless handler the way Fireworks does (§3.2).

Reads a Python or Node.js handler (or uses a built-in sample), runs the
Fireworks code annotator, and prints the transformed source — the
`@jit(cache=True)` decorators / V8 hooks plus the `__fireworks_*`
install-and-resume scaffolding of Figure 3.

Run:  python examples/annotate_source.py [path/to/handler.py|.js]
"""

import sys
from pathlib import Path

from repro.core import annotate

SAMPLE = '''\
def normalize(record):
    return {k.lower(): v for k, v in record.items()}

def main(params):
    clean = normalize(params)
    print("hello world", clean)
'''


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        source = path.read_text()
        language = "nodejs" if path.suffix == ".js" else "python"
    else:
        source, language = SAMPLE, "python"
        print("(no file given — annotating a built-in sample)\n")

    result = annotate(source, language, service_name="my-function")
    print(f"language     : {result.language}")
    print(f"entry point  : {result.entry_point}")
    print(f"JITted funcs : {', '.join(result.functions)}")
    print("-" * 60)
    print(result.annotated)


if __name__ == "__main__":
    main()
