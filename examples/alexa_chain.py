#!/usr/bin/env python3
"""Run the ServerlessBench Alexa Skills chain on Fireworks (Fig 8/9).

Installs the four chain functions (each gets its own post-JIT snapshot),
then sends the paper's three requests — a fact question, a reminder lookup
(CouchDB), and a smart-home status check — and prints the per-chain latency
breakdown, including the de-optimizations triggered by the differently
shaped skill arguments (§6).

Run:  python examples/alexa_chain.py
"""

from repro import FireworksPlatform, Simulation, default_parameters
from repro.workloads import ALEXA_SKILLS, REMINDER_DB, alexa_skills_chain


def main() -> None:
    sim = Simulation(seed=2022)
    fireworks = FireworksPlatform(sim, default_parameters())
    chain = alexa_skills_chain()

    print(f"== installing the {chain.name} chain "
          f"({len(chain.functions)} functions) ==")
    for spec in chain.functions:
        sim.run(sim.process(fireworks.install(spec)))
        report = fireworks.install_reports[spec.name]
        print(f"  {spec.name:<18} installed in {report.total_ms:7.0f} ms "
              f"(snapshot {report.image.size_mb:.0f} MiB)")

    # Pre-populate the reminders database, like a user with a schedule.
    reminders = fireworks.couch.database(REMINDER_DB)
    reminders.put("dentist", {"item": "dentist", "place": "downtown",
                              "url": "https://example.org/cal"})

    print("\n== the paper's three requests (§5.3(1)) ==")
    for skill in ALEXA_SKILLS:
        record = sim.run(sim.process(
            fireworks.invoke(chain.entry, payload={"skill": skill})))
        hops = " -> ".join(r.function for r in record.chain_records())
        deopts = sum(r.guest.deopt_count for r in record.chain_records()
                     if r.guest)
        print(f"  skill={skill:<10} {hops}")
        print(f"    chain start-up {record.chain_startup_ms():7.1f} ms | "
              f"exec {record.chain_exec_ms():7.1f} ms | "
              f"deopts {deopts}")

    print("\nEach hop resumed a post-JIT snapshot; the frontend "
          "de-optimized once per new argument shape and immediately "
          "re-specialized (§6).")


if __name__ == "__main__":
    main()
