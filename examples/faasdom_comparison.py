#!/usr/bin/env python3
"""Compare Fireworks against OpenWhisk, gVisor and Firecracker (Fig 6/7).

Runs one FaaSdom benchmark (default: faas-fact in Node.js) through all four
platforms, cold and warm, and prints the paper's latency breakdown.

Run:  python examples/faasdom_comparison.py [benchmark] [language]
e.g.  python examples/faasdom_comparison.py faas-diskio python
"""

import sys

from repro.bench import run_faasdom_benchmark
from repro.workloads import BENCHMARK_NAMES, LANGUAGES


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "faas-fact"
    language = sys.argv[2] if len(sys.argv) > 2 else "nodejs"
    if benchmark not in BENCHMARK_NAMES or language not in LANGUAGES:
        print(f"usage: {sys.argv[0]} [{'|'.join(BENCHMARK_NAMES)}] "
              f"[{'|'.join(LANGUAGES)}]")
        raise SystemExit(2)

    result = run_faasdom_benchmark(benchmark, language)
    print(result.as_table())

    fireworks = result.row("fireworks", "snapshot")
    print(f"\nFireworks start-up: {fireworks.startup_ms:.1f} ms — faster "
          "than every baseline's *warm* start, with full VM isolation.")


if __name__ == "__main__":
    main()
