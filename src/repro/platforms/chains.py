"""The chain executor: drives :class:`~repro.workloads.dag.DagSpec` DAGs
on *any* backend.

Two execution modes, chosen per (dag, platform):

* **guest** — the DAG's ``guest_hops`` programs perform their own
  ``InvokeNext`` hops, exactly the paper's §5.3 chains.  Only
  chain-capable backends (OpenWhisk, Fireworks) run this mode; the
  executor contributes installation, trigger wiring, and the chain/stage
  span overlay.  The driven event sequence is byte-identical to calling
  ``platform.invoke`` directly (the Fig 9 golden hash rides on this).
* **orchestrated** — the executor itself dispatches every invoke edge as
  a top-level invocation through the real bus/frontend/placement path
  (``defer_hops=True`` stops the guest from double-dispatching), so all
  five backends execute chains.  Fan-out stages run concurrently;
  fan-in waits for every taken in-edge; conditional edges are evaluated
  against the run payload.  Each dispatched stage carries a placement
  ``locality_hint`` marking its predecessors' hosts — the chain-locality
  placement signals read this.

Trigger edges route through the platform's CouchDB change feed in both
modes: ``install`` registers them, and in orchestrated mode the
registration carries a *runner* so the triggered subgraph is itself
executor-driven (a guest-chaining triggered function would otherwise
crash a backend without chain support).

**At-most-once per stage**: every dispatch increments the run's ledger
*before* invoking, and a stage is dispatched only when it has never been
dispatched — chaos retries happen *inside* ``platform.invoke`` (the
failover path), so a crash mid-DAG can never double-execute a completed
stage.  The chaos regression suite locks this.

Tracing: after a run completes, a retrospective ``chain`` root span
(duration exactly the run's end-to-end) with one ``stage`` child per
executed stage is recorded.  Retrospective spans consume no simulated
time, no RNG, and leave every invocation's own span tree untouched,
which is what keeps the golden figures byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Set

from repro.errors import (InvocationFailedError, InvocationSheddedError,
                          ValidationError)
from repro.platforms.base import (MODE_AUTO, InvocationRecord,
                                  ServerlessPlatform)
from repro.workloads.dag import DagSpec, validate_dag

MODE_GUEST = "guest"
MODE_ORCHESTRATED = "orchestrated"

STATUS_PENDING = "pending"
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_SHED = "shed"
STATUS_SKIPPED = "skipped"
STATUS_ABORTED = "aborted"


class StageResult:
    """What happened to one stage of one run."""

    __slots__ = ("stage", "function", "status", "record", "host_id",
                 "start_ms", "end_ms", "attempts")

    def __init__(self, stage: str, function: str) -> None:
        self.stage = stage
        self.function = function
        self.status = STATUS_PENDING
        self.record: Optional[InvocationRecord] = None
        self.host_id: Optional[int] = None
        self.start_ms = 0.0
        self.end_ms = 0.0
        self.attempts = 1


class DagRun:
    """One DAG execution: per-stage results, ledger, and timings."""

    def __init__(self, dag: DagSpec, mode: str, chain_id: str,
                 root: Optional[str] = None,
                 trigger_database: str = "") -> None:
        self.dag = dag
        self.mode = mode
        self.chain_id = chain_id
        #: The subgraph root: the dag entry, or a trigger-driven stage
        #: for a change-feed segment.
        self.root = root or dag.entry
        self.trigger_database = trigger_database
        self.stages: Dict[str, StageResult] = {
            stage.name: StageResult(stage.name, stage.function)
            for stage in dag.stages}
        #: Dispatch count per stage — the at-most-once proof object.
        self.ledger: Dict[str, int] = {}
        self.start_ms = 0.0
        self.end_ms = 0.0
        self.entry_record: Optional[InvocationRecord] = None
        self.failed = False
        self.locality_hits = 0
        self.locality_chances = 0
        self.process = None

    @property
    def end_to_end_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def status(self) -> str:
        return STATUS_FAILED if self.failed else STATUS_OK

    def executed(self) -> List[StageResult]:
        """Stage results that actually dispatched, in stage order."""
        return [self.stages[name] for name in self.dag.stage_names()
                if self.ledger.get(name)]

    def records(self) -> List[InvocationRecord]:
        """Every invocation record of this run (guest children included)."""
        if self.mode == MODE_GUEST and self.entry_record is not None:
            return self.entry_record.chain_records()
        return [result.record for result in self.executed()
                if result.record is not None]


class ChainExecutor:
    """Drives DAGs on one platform (see module docstring)."""

    def __init__(self, platform: ServerlessPlatform) -> None:
        self.platform = platform
        self._seq = 0
        self._installed: set = set()
        self._registered_triggers: set = set()
        #: Change-feed segments run on behalf of trigger edges
        #: (orchestrated mode only), in firing order.
        self.trigger_runs: List[DagRun] = []

    # -- setup -----------------------------------------------------------------
    def mode_for(self, dag: DagSpec) -> str:
        """How this platform executes *dag*: guest hops when both sides
        support them, the orchestrator otherwise."""
        if dag.guest_hops and self.platform.supports_chains:
            return MODE_GUEST
        return MODE_ORCHESTRATED

    def install(self, dag: DagSpec) -> None:
        """Install the DAG's functions and wire its trigger edges.

        Blocking (runs the simulation per install, like
        :func:`repro.bench.harness.install_all`); idempotent per function
        and per trigger edge.
        """
        validate_dag(dag)
        if not dag.functions:
            raise ValidationError(
                f"dag {dag.name!r} has no functions bound; "
                "attach FunctionSpecs before installing")
        sim = self.platform.sim
        for spec in dag.functions:
            if spec.name in self._installed:
                continue
            sim.run(sim.process(self.platform.install(spec)))
            self._installed.add(spec.name)
        use_guest = self.mode_for(dag) == MODE_GUEST
        for edge in dag.trigger_edges():
            stage = dag.stage(edge.dst)
            key = (edge.database, stage.function)
            if key in self._registered_triggers:
                continue
            runner = None if use_guest else \
                self._make_trigger_runner(dag, edge.dst)
            self.platform.register_db_trigger(
                edge.database, stage.function, runner=runner)
            self._registered_triggers.add(key)

    # -- execution -------------------------------------------------------------
    def submit(self, dag: DagSpec, payload: Optional[Mapping[str, Any]] = None,
               mode: str = MODE_AUTO) -> DagRun:
        """Launch one DAG run as a detached process (open-loop replay)."""
        run = self._new_run(dag)
        run.process = self.platform.sim.process(
            self._drive(run, dict(payload or {}), mode),
            name=f"chain:{dag.name}:{self._seq}")
        return run

    def run(self, dag: DagSpec, payload: Optional[Mapping[str, Any]] = None,
            mode: str = MODE_AUTO) -> DagRun:
        """Run one DAG to completion (blocking); verifies the records."""
        from repro.trace import verify_invocation
        run = self.submit(dag, payload, mode)
        self.platform.sim.run(run.process)
        for record in run.records():
            verify_invocation(record)
        return run

    def _new_run(self, dag: DagSpec, root: Optional[str] = None,
                 trigger_database: str = "") -> DagRun:
        self._seq += 1
        mode = self.mode_for(dag)
        chain_id = f"chain-{self.platform.name}-{self._seq}"
        return DagRun(dag, mode, chain_id, root=root,
                      trigger_database=trigger_database)

    # -- drivers ---------------------------------------------------------------
    def _drive(self, run: DagRun, payload: Dict[str, Any], mode: str):
        if run.mode == MODE_GUEST:
            yield from self._drive_guest(run, payload, mode)
        else:
            yield from self._drive_orchestrated(run, payload, mode)
        self._overlay_spans(run)

    def _drive_guest(self, run: DagRun, payload: Dict[str, Any], mode: str):
        """Entry invocation only: the guest performs the hops itself."""
        platform = self.platform
        run.start_ms = platform.sim.now
        entry = run.stages[run.root]
        run.ledger[run.root] = run.ledger.get(run.root, 0) + 1
        try:
            record = yield from platform.invoke(
                entry.function, payload=payload, mode=mode)
        except InvocationSheddedError:
            entry.status = STATUS_SHED
            run.failed = True
        except InvocationFailedError:
            entry.status = STATUS_FAILED
            run.failed = True
        else:
            run.entry_record = record
            by_function = {stage.function: stage.name
                           for stage in run.dag.stages}
            for hop in record.chain_records():
                stage_name = by_function.get(hop.function)
                if stage_name is None:
                    continue
                result = run.stages[stage_name]
                if stage_name != run.root:
                    run.ledger[stage_name] = \
                        run.ledger.get(stage_name, 0) + 1
                result.status = STATUS_OK
                result.record = hop
                result.host_id = hop.host_id
                result.attempts = hop.attempts
                if hop.span is not None:
                    result.start_ms = hop.span.start_ms
                    result.end_ms = hop.span.end_ms
        run.end_ms = platform.sim.now
        self._mark_skipped(run)

    def _drive_orchestrated(self, run: DagRun, payload: Dict[str, Any],
                            mode: str):
        """Wave-synchronous dispatch over the taken invoke subgraph."""
        platform = self.platform
        sim = platform.sim
        dag = run.dag
        run.start_ms = sim.now
        active = set(dag.active_stages(payload, root=run.root))
        pred_hosts: Dict[str, int] = {}
        done: set = set()
        dead: set = set()
        remaining = [name for name in dag.invoke_order() if name in active]

        def deps(stage: str) -> List[str]:
            if stage == run.root:
                return []
            return [edge.src for edge in dag.invoke_in_edges(stage)
                    if edge.src in active and edge.taken(payload)]

        while remaining:
            wave: List[str] = []
            for stage in list(remaining):
                stage_deps = deps(stage)
                if any(src in dead for src in stage_deps):
                    run.stages[stage].status = STATUS_ABORTED
                    dead.add(stage)
                    remaining.remove(stage)
                elif all(src in done for src in stage_deps):
                    wave.append(stage)
            if not wave:
                if any(src in dead for name in remaining
                       for src in deps(name)):
                    continue
                break  # defensive: validate_dag guarantees progress
            processes = []
            for stage in wave:
                remaining.remove(stage)
                if run.ledger.get(stage):
                    continue  # at-most-once: never re-dispatch
                processes.append((stage, sim.process(
                    self._dispatch_stage(run, stage, payload, mode,
                                         pred_hosts),
                    name=f"stage:{dag.name}:{stage}")))
            if processes:
                yield sim.all_of([process for _, process in processes])
            for stage, _process in processes:
                if run.stages[stage].status == STATUS_OK:
                    done.add(stage)
                else:
                    dead.add(stage)
        run.end_ms = sim.now
        self._mark_skipped(run)

    def _dispatch_stage(self, run: DagRun, stage: str,
                        payload: Dict[str, Any], mode: str,
                        pred_hosts: Dict[str, int]):
        """One orchestrated stage: a top-level invocation with hop
        deferral and a predecessor-locality placement hint."""
        platform = self.platform
        dag = run.dag
        result = run.stages[stage]
        result.start_ms = platform.sim.now
        run.ledger[stage] = run.ledger.get(stage, 0) + 1
        stage_payload = payload
        hint = None
        wanted: Set[int] = set()
        if stage != run.root:
            in_edges = [edge for edge in dag.invoke_in_edges(stage)
                        if edge.taken(payload)]
            if in_edges:
                stage_payload = dict(payload)
                stage_payload["kb"] = in_edges[0].payload_kb
            wanted = {pred_hosts[edge.src] for edge in in_edges
                      if edge.src in pred_hosts}
            if wanted:
                hint = lambda host: host.host_id in wanted  # noqa: E731
                run.locality_chances += 1
        try:
            record = yield from platform.invoke(
                result.function, payload=stage_payload, mode=mode,
                locality_hint=hint, defer_hops=True)
        except InvocationSheddedError:
            result.status = STATUS_SHED
            run.failed = True
        except InvocationFailedError:
            result.status = STATUS_FAILED
            run.failed = True
        else:
            result.status = STATUS_OK
            result.record = record
            result.host_id = record.host_id
            result.attempts = record.attempts
            pred_hosts[stage] = record.host_id
            if hint is not None and record.host_id in wanted:
                run.locality_hits += 1
            if stage == run.root:
                run.entry_record = record
        result.end_ms = platform.sim.now

    def _make_trigger_runner(self, dag: DagSpec, stage: str):
        """A change-feed runner: the triggered stage and its invoke
        descendants run as an executor-driven segment."""

        def runner(function: str, database: str):
            run = self._new_run(dag, root=stage, trigger_database=database)
            self.trigger_runs.append(run)
            start_ms = self.platform.sim.now
            yield from self._drive_orchestrated(run, {}, MODE_AUTO)
            self._overlay_spans(run)
            # The same observable firing `_fire_trigger` records in guest
            # mode, so trigger ordering validates identically in both.
            self.platform.sim.tracer.add_span(
                "db-trigger", start_ms, self.platform.sim.now,
                kind="db-trigger", trace_id=f"{run.chain_id}-trigger",
                database=database, function=function, status=run.status,
                invocation=run.chain_id)
            return run

        return runner

    # -- bookkeeping -----------------------------------------------------------
    def _mark_skipped(self, run: DagRun) -> None:
        for name, result in run.stages.items():
            if result.status == STATUS_PENDING:
                result.status = STATUS_SKIPPED

    def _overlay_spans(self, run: DagRun) -> None:
        """The retrospective chain root + per-stage spans (zero sim cost)."""
        tracer = self.platform.sim.tracer
        executed = run.executed()
        attrs: Dict[str, Any] = {
            "dag": run.dag.name, "mode": run.mode,
            "stages": len(executed), "status": run.status,
            "end_to_end_ms": run.end_to_end_ms}
        if run.trigger_database:
            attrs["trigger"] = run.trigger_database
        chain_span = tracer.add_span(
            "chain", run.start_ms, run.end_ms, kind="chain",
            trace_id=run.chain_id, **attrs)
        for result in executed:
            tracer.add_span(
                "stage", result.start_ms, result.end_ms, kind="stage",
                parent=chain_span, stage=result.stage,
                function=result.function, status=result.status,
                chain=run.chain_id,
                invocation=(result.record.trace_id
                            if result.record is not None else ""))
        return None


def run_dag_once(platform: ServerlessPlatform, dag: DagSpec,
                 payload: Optional[Mapping[str, Any]] = None,
                 mode: str = MODE_AUTO) -> DagRun:
    """Convenience: install (if needed) + one blocking run."""
    executor = ChainExecutor(platform)
    executor.install(dag)
    return executor.run(dag, payload, mode)
