"""Kafka-like message bus: the communication backbone of the platform (§2.1)
and Fireworks' parameter passer transport (§3.6).

Topics are append-only partitions of records with offsets.  The guest-side
``kafkacat -C -b 172.17.0.1:9092 -t topic<fcID> -o -1 -c 1`` of Figure 3
maps to :meth:`consume_latest`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.errors import BusError


@dataclass(frozen=True)
class Record:
    """One message in a topic."""

    topic: str
    offset: int
    value: Any
    timestamp_ms: float


class Topic:
    """An append-only log of records."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._records: List[Record] = []

    def append(self, value: Any, timestamp_ms: float) -> Record:
        """Append a record, assigning the next offset."""
        record = Record(self.name, len(self._records), value, timestamp_ms)
        self._records.append(record)
        return record

    def latest(self) -> Record:
        """The newest record; BusError when empty."""
        if not self._records:
            raise BusError(f"topic {self.name!r} is empty")
        return self._records[-1]

    def at(self, offset: int) -> Record:
        """The record at *offset*; BusError when out of range."""
        if not 0 <= offset < len(self._records):
            raise BusError(
                f"offset {offset} out of range for topic {self.name!r}")
        return self._records[offset]

    def __len__(self) -> int:
        return len(self._records)


class MessageBus:
    """The broker: named topics, produce/consume."""

    def __init__(self, auto_create_topics: bool = True) -> None:
        self.auto_create_topics = auto_create_topics
        self._topics: Dict[str, Topic] = {}

    def create_topic(self, name: str) -> Topic:
        """Create a topic; BusError on duplicates."""
        if name in self._topics:
            raise BusError(f"topic {name!r} already exists")
        topic = Topic(name)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        """Get (or auto-create) a topic by name."""
        if name not in self._topics:
            if not self.auto_create_topics:
                raise BusError(f"no topic {name!r}")
            return self.create_topic(name)
        return self._topics[name]

    def has_topic(self, name: str) -> bool:
        """Whether the topic exists."""
        return name in self._topics

    def produce(self, topic: str, value: Any,
                timestamp_ms: float = 0.0) -> Record:
        """Append *value* to *topic*; returns the record with its offset."""
        return self.topic(topic).append(value, timestamp_ms)

    def consume_latest(self, topic: str) -> Record:
        """``kafkacat -o -1 -c 1``: the newest record of *topic*."""
        if topic not in self._topics:
            raise BusError(f"no topic {topic!r}")
        return self._topics[topic].latest()

    def consume_at(self, topic: str, offset: int) -> Record:
        """Read one record at an explicit offset."""
        if topic not in self._topics:
            raise BusError(f"no topic {topic!r}")
        return self._topics[topic].at(offset)

    def topic_names(self):
        """Names of all topics on the broker."""
        return tuple(self._topics)
