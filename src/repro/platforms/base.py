"""The serverless platform control plane (Figure 1) shared by all backends.

``ServerlessPlatform`` implements the frontend flow — gateway, controller,
message bus — and the invocation bookkeeping (latency breakdown into
*start-up*, *exec*, and *others*, exactly the bars of Figs 6/7/9).  Each
backend (OpenWhisk, Firecracker, gVisor, Fireworks) supplies its own worker
acquisition strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.config import CalibratedParameters
from repro.db.couchdb import CouchServer
from repro.errors import (BusPartitionedError, ExecutionLostError,
                          FunctionNotFoundError, HostDownError,
                          InvocationFailedError, InvocationSheddedError,
                          PlatformError, ReproError, RetryableChaosError,
                          SimulationError, TraceError)
from repro.faults import FaultInjector, InjectedFault
from repro.mem.host_memory import HostMemory
from repro.net.bridge import HostBridge
from repro.platforms.bus import MessageBus
from repro.runtime.interpreter import ExecBreakdown, ExternalHandlers
from repro.runtime.ops import DbGet, DbPut, InvokeNext, Respond
from repro.sandbox.worker import Worker
from repro.trace import Span, phase_breakdown
from repro.workloads.base import FunctionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.host import Cluster, Host
    from repro.sim.kernel import Simulation
    from repro.sim.process import Process

MODE_AUTO = "auto"
MODE_COLD = "cold"
MODE_WARM = "warm"
MODE_SNAPSHOT = "snapshot"


@dataclass
class InvocationRecord:
    """End-to-end accounting of one invocation (one bar of Fig 6/7/9)."""

    function: str
    platform: str
    mode: str                     # cold | warm | snapshot
    submitted_ms: float
    host_id: int = 0             # which cluster host served it
    startup_ms: float = 0.0      # sandbox acquisition until code runs
    exec_ms: float = 0.0         # in-guest program execution
    other_ms: float = 0.0        # gateway, dispatch, params, response
    queue_wait_ms: float = 0.0   # waiting for a host core (burst benches);
    #                              also included in other_ms
    guest: Optional[ExecBreakdown] = None
    children: List["InvocationRecord"] = field(default_factory=list)
    worker: Optional[Worker] = None
    completed_ms: Optional[float] = None  # wall clock when invoke() returned
    trace_id: str = ""                    # id of the invocation's trace
    span: Optional[Span] = None           # the root "invoke" span
    attempts: int = 1                     # dispatch attempts (chaos retries)
    #: Chain-executor mode: guest ``InvokeNext`` ops are *recorded* here
    #: instead of dispatched inline — the executor drives the DAG's edges
    #: itself, which is what lets backends without guest-chain support
    #: (§5.3) run chains at all.
    defer_hops: bool = False
    deferred_hops: List[InvokeNext] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        """End-to-end latency of this record's own work (no double count:
        children's time is *not* added — it already elapsed inside exec's
        wall clock only if the chain was synchronous, and we track chain
        time separately)."""
        return self.startup_ms + self.exec_ms + self.other_ms

    @property
    def end_to_end_ms(self) -> float:
        """Submission-to-response wall latency (includes chain hops).

        A pure wall delta on the DES clock — bitwise-equal to the duration
        of the invocation's root span, which is the invariant
        :func:`repro.trace.verify_invocation` asserts.
        """
        if self.completed_ms is None:
            return 0.0
        return self.completed_ms - self.submitted_ms

    # -- chain aggregates (Fig 9 sums the whole chain) -------------------------
    def chain_startup_ms(self) -> float:
        """Start-up summed over this record and its chain children."""
        return self.startup_ms + sum(c.chain_startup_ms()
                                     for c in self.children)

    def chain_exec_ms(self) -> float:
        """Exec time summed over the whole chain."""
        return self.exec_ms + sum(c.chain_exec_ms() for c in self.children)

    def chain_other_ms(self) -> float:
        """Control-plane time summed over the whole chain."""
        return self.other_ms + sum(c.chain_other_ms() for c in self.children)

    def chain_total_ms(self) -> float:
        """End-to-end chain latency (all phases, all hops)."""
        return (self.chain_startup_ms() + self.chain_exec_ms()
                + self.chain_other_ms())

    def chain_records(self) -> List["InvocationRecord"]:
        """This record plus all chain descendants, pre-order."""
        records = [self]
        for child in self.children:
            records.extend(child.chain_records())
        return records


@dataclass(frozen=True)
class FailedInvocation:
    """One invocation that exhausted its retry budget under chaos.

    A first-class *result*, not a crash: chaos experiments count these
    against availability instead of aborting, mirroring how a real
    platform returns 5xx for requests it could not place.
    """

    function: str
    platform: str
    submitted_ms: float
    failed_ms: float
    attempts: int
    reason: str
    hosts_tried: Tuple[int, ...]
    trace_id: str = ""
    span: Optional[Span] = None

    @property
    def latency_ms(self) -> float:
        """How long the platform tried before giving up."""
        return self.failed_ms - self.submitted_ms


class _PlatformHandlers(ExternalHandlers):
    """Routes db/chain ops from the guest back through the platform.

    Database requests can time out (an armed ``db`` fault): the guest SDK
    retries with a short backoff, surfacing the wait as a ``retry`` span.
    """

    def __init__(self, platform: "ServerlessPlatform", worker: Worker,
                 record: InvocationRecord) -> None:
        self.platform = platform
        self.worker = worker
        self.record = record

    def _check_db_fault(self, database: str) -> None:
        if self.platform.faults is not None:
            self.platform.faults.check("db", database)

    def _db_backoff(self, attempt: int):
        self.platform.db_retries += 1
        with self.platform.sim.tracer.span("retry", kind="retry",
                                           target="db", attempt=attempt):
            yield self.platform.sim.timeout(
                self.platform.DB_RETRY_BACKOFF_MS)

    def db_get(self, op: DbGet):
        sim = self.platform.sim
        database = self.platform.couch.database(op.database)
        io = self.worker.sandbox.io
        for attempt in range(1, self.platform.MAX_DB_ATTEMPTS + 1):
            try:
                with sim.tracer.span("db-get", database=op.database,
                                     attempt=attempt):
                    yield sim.timeout(io.net_send_ms(0.3))   # request out
                    self._check_db_fault(op.database)        # request timeout
                    yield sim.timeout(
                        database.latency.get_cost(op.doc_kb))
                    yield sim.timeout(io.net_recv_ms(op.doc_kb))  # doc back
                return
            except InjectedFault as fault:
                if fault.kind != "db" or \
                        attempt == self.platform.MAX_DB_ATTEMPTS:
                    raise
                yield from self._db_backoff(attempt)

    def db_put(self, op: DbPut):
        sim = self.platform.sim
        database = self.platform.couch.database(op.database)
        io = self.worker.sandbox.io
        for attempt in range(1, self.platform.MAX_DB_ATTEMPTS + 1):
            try:
                with sim.tracer.span("db-put", database=op.database,
                                     attempt=attempt):
                    yield sim.timeout(io.net_send_ms(op.doc_kb))  # doc out
                    self._check_db_fault(op.database)        # request timeout
                    yield sim.timeout(
                        database.latency.put_cost(op.doc_kb))
                    # The write is real: a fresh document lands in the
                    # database.
                    database.put(
                        f"{self.record.function}-{database.last_seq + 1}",
                        {"source": self.record.function, "at_ms": sim.now},
                        size_kb=op.doc_kb)
                    yield sim.timeout(io.net_recv_ms(0.2))   # ack back
                break
            except InjectedFault as fault:
                if fault.kind != "db" or \
                        attempt == self.platform.MAX_DB_ATTEMPTS:
                    raise
                yield from self._db_backoff(attempt)
        self.platform.note_db_write(op.database)

    def invoke_next(self, op: InvokeNext):
        if self.record.defer_hops:
            # Chain-executor mode: the executor dispatches the DAG's
            # invoke edges itself (paying the real bus/frontend per
            # stage); the guest's hop intent is recorded for auditing,
            # costs nothing, and works on every backend.
            self.record.deferred_hops.append(op)
            return
        if not self.platform.supports_chains:
            raise PlatformError(
                f"{self.platform.name} cannot process a chain of serverless "
                "functions (§5.3: only OpenWhisk and Fireworks can)")
        child = yield from self.platform.invoke(op.function,
                                                payload={"kb": op.payload_kb})
        self.record.children.append(child)

    def respond(self, op: Respond):
        # Response already left through the guest NIC; platform-side routing
        # cost is charged by invoke() as "other".
        del op
        return
        yield  # pragma: no cover


class ServerlessPlatform:
    """Base class: registry + frontend + invocation accounting."""

    name = "abstract"
    isolation_label = "?"
    performance_label = "?"
    memory_label = "?"
    supports_chains = False

    #: How often the guest SDK retries a timed-out database request.
    MAX_DB_ATTEMPTS = 3
    DB_RETRY_BACKOFF_MS = 0.5

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 host_memory: Optional[HostMemory] = None,
                 bridge: Optional[HostBridge] = None,
                 bus: Optional[MessageBus] = None,
                 couch: Optional[CouchServer] = None,
                 host_cpu=None,
                 faults: Optional[FaultInjector] = None,
                 cluster: Optional["Cluster"] = None) -> None:
        # Imported here, not at module scope: repro.cluster.host uses the
        # warm pool and scheduler from this package.
        from repro.cluster.host import Cluster
        self.sim = sim
        self.params = params
        if cluster is not None:
            if host_memory is not None or bridge is not None \
                    or host_cpu is not None:
                raise PlatformError(
                    "pass host resources on the cluster's hosts, not both "
                    "a cluster and host_memory/bridge/host_cpu")
            self.cluster = cluster
        else:
            # Single implicit host: the paper's evaluation setup.  Legacy
            # host resources, when given, become host 0's resources.
            self.cluster = Cluster(sim, params, n_hosts=1)
            host0 = self.cluster.hosts[0]
            if host_memory is not None:
                host0.memory = host_memory
            if bridge is not None:
                host0.bridge = bridge
            if host_cpu is not None:
                host0.cpu = host_cpu
        self.bus = bus or MessageBus()
        self.couch = couch or CouchServer()
        self.faults = faults  # optional FaultInjector (db request timeouts)
        self.db_retries = 0
        self.retain_workers = False
        self.local_restores = 0      # snapshot found on the chosen host
        self.cross_host_transfers = 0  # snapshot copied over the network
        self.duplicate_transfers = 0  # transfer lost the race to a concurrent
        #                               one landing the same key (no re-put)
        self.streamed_transfers = 0  # transfers that shipped the working set
        #                              first, residual in background
        self.transfer_foreground_mb = 0.0  # bytes moved on the critical path
        self.transfer_background_mb = 0.0  # bytes streamed in the background
        # Chaos: a HostFailureController attaches itself here; with no
        # controller the invoke path is byte-identical to the pre-chaos one
        # (single attempt, no containment, no extra RNG draws).
        self.chaos = None
        self.retries = 0             # invoke-level retry spans emitted
        self.failovers = 0           # attempts re-dispatched off a dead host
        self.failed_invocations: List[FailedInvocation] = []
        # Serving layer (repro.autoscale): a WarmPoolAutoscaler attaches
        # itself here; sheds are first-class results, like failures.
        self.autoscaler = None
        self.shedded_invocations: List = []
        self.active_workers: List[Worker] = []
        self.records: List[InvocationRecord] = []
        self._specs: Dict[str, FunctionSpec] = {}
        self._db_triggers: Dict[str, List[Tuple[str, Any]]] = {}
        self._invocation_seq = 0

    # -- single-host views (host 0 is the only host by default) ------------------
    @property
    def host_memory(self) -> HostMemory:
        return self.cluster.hosts[0].memory

    @property
    def bridge(self) -> HostBridge:
        return self.cluster.hosts[0].bridge

    @property
    def host_cpu(self):
        return self.cluster.hosts[0].cpu

    # -- registry ------------------------------------------------------------------
    def install(self, spec: FunctionSpec):
        """Install *spec* (a simulation generator).  Subclasses extend.

        Backend state (snapshots, templates) is seeded on the function's
        *home host*.  A failed backend install rolls the registration back
        so the install can be retried.
        """
        if spec.name in self._specs:
            raise PlatformError(f"function {spec.name!r} already installed")
        self._specs[spec.name] = spec
        try:
            yield from self._install_backend(
                spec, self.cluster.home_host(spec.name))
        except BaseException:
            self._specs.pop(spec.name, None)
            raise

    def _install_backend(self, spec: FunctionSpec, host: Host):
        """Backend-specific installation work.  Default: registration only."""
        del spec, host
        return
        yield  # pragma: no cover

    def spec(self, name: str) -> FunctionSpec:
        """The installed FunctionSpec for *name*; 404s otherwise."""
        if name not in self._specs:
            raise FunctionNotFoundError(
                f"{self.name}: function {name!r} is not installed")
        return self._specs[name]

    def installed_functions(self) -> Tuple[str, ...]:
        """Names of every installed function."""
        return tuple(self._specs)

    # -- triggers (Cloud trigger box of Figure 1) -------------------------------
    def register_db_trigger(self, database: str, function: str,
                            runner: Optional[Any] = None) -> None:
        """Invoke *function* whenever *database* changes (Fig 8(b)).

        *runner*, if given, is a generator factory ``runner(function,
        database)`` that replaces the default single-invocation firing —
        the chain executor registers one so a change-feed firing drives a
        whole DAG segment (deferring guest hops) instead of a bare
        invoke, which is what lets backends without guest-chain support
        serve trigger-driven chains.
        """
        self.spec(function)  # must exist
        self._db_triggers.setdefault(database, []).append((function, runner))

    def note_db_write(self, database: str) -> None:
        """Called by the db handler after a write; fires triggers async."""
        for function, runner in self._db_triggers.get(database, ()):
            gen = (runner(function, database) if runner is not None
                   else self._fire_trigger(function, database))
            self.sim.process(gen, name=f"trigger:{function}")

    def _fire_trigger(self, function: str, database: str = ""):
        """One change-feed firing (a detached process, its own trace).

        A firing that exhausts its chaos-retry budget (e.g. the bus stays
        partitioned) is already accounted as a
        :class:`FailedInvocation` on the platform — it is swallowed here
        so a dead trigger surfaces as a failed *result*, never as a
        crashed drain.  The retrospective ``db-trigger`` span ties the
        firing back to the database write for the trace validator.
        """
        start_ms = self.sim.now
        status, trace_id = "ok", ""
        try:
            record = yield from self.invoke(function)
            trace_id = record.trace_id
        except InvocationFailedError as error:
            status, trace_id = "failed", error.failed.trace_id
            record = None
        if database:
            self.sim.tracer.add_span(
                "db-trigger", start_ms, self.sim.now, kind="db-trigger",
                trace_id=f"{trace_id}-trigger" if trace_id else "",
                database=database, function=function, status=status,
                invocation=trace_id)
        return record

    def register_timer_trigger(self, function: str, every_ms: float,
                               count: int) -> "Process":
        """Invoke *function* every *every_ms*, *count* times (Figure 1's
        Cloud-trigger box: triggering events include timers)."""
        if every_ms <= 0:
            raise PlatformError(f"timer period must be > 0, got {every_ms}")
        if count < 1:
            raise PlatformError(f"timer count must be >= 1, got {count}")
        self.spec(function)  # must exist

        def ticker():
            # Fixed-rate ticks; each invocation runs as its own process so
            # a slow function cannot skew the timer cadence.
            for _ in range(count):
                yield self.sim.timeout(every_ms)
                self.sim.process(self._fire_trigger(function),
                                 name=f"timer-fire:{function}")

        return self.sim.process(ticker(), name=f"timer:{function}")

    # -- invocation -------------------------------------------------------------------
    def invoke(self, name: str, payload: Optional[Dict[str, Any]] = None,
               mode: str = MODE_AUTO,
               locality_hint: Optional[Any] = None,
               defer_hops: bool = False):
        """Invoke a function end-to-end (a simulation generator).

        Returns the :class:`InvocationRecord` with the full latency
        breakdown.  ``mode`` forces a cold or warm path where the backend
        distinguishes them.

        With a chaos controller attached (``self.chaos``), retryable
        infrastructure failures (dead host, bus partition, no live host)
        are retried with exponential backoff up to
        ``params.cluster.retry_max_attempts`` total tries; an attempt that
        follows a :class:`HostDownError` is marked with a zero-width
        ``failover`` span.  An invocation that exhausts its budget (or
        hits an unretryable fault) is recorded as a
        :class:`FailedInvocation` and surfaces as a
        :class:`InvocationFailedError` rather than crashing the
        experiment.  Without a controller the path is unchanged: one
        attempt, failures propagate as before.

        *locality_hint* (``host -> bool``) widens the placement locality
        probe — the chain executor marks the hosts that served a stage's
        predecessors so chain-aware policies can co-locate successive
        stages.  *defer_hops* records guest ``InvokeNext`` ops on the
        record instead of dispatching them inline (chain-executor mode).
        Both default off, leaving the golden invocation path untouched.
        """
        spec = self.spec(name)
        if self.autoscaler is not None:
            # Feed the predictive scaler's arrival histograms (pure
            # bookkeeping: no sim events, no RNG draws).
            self.autoscaler.observe_arrival(name, self.sim.now)
        tracer = self.sim.tracer
        self._invocation_seq += 1
        record = InvocationRecord(
            function=name, platform=self.name, mode=mode,
            submitted_ms=self.sim.now, defer_hops=defer_hops)
        invoke_span = tracer.span(
            "invoke", kind="invoke",
            trace_id=f"{self.name}-inv{self._invocation_seq}",
            function=name, platform=self.name)
        cfg = self.params.cluster
        max_attempts = cfg.retry_max_attempts if self.chaos is not None else 1
        hosts_tried: List[int] = []

        try:
            with invoke_span:
                attempt = 1
                failed_from: Optional[int] = None
                while True:
                    try:
                        if failed_from is not None:
                            # Zero-width marker: this attempt re-dispatches
                            # a request whose previous host died.
                            with tracer.span("failover", kind="failover",
                                             from_host=failed_from,
                                             attempt=attempt):
                                pass
                            self.failovers += 1
                            failed_from = None
                        yield from self._invoke_attempt(
                            spec, mode, payload, record, hosts_tried,
                            locality_hint)
                        break
                    except RetryableChaosError as error:
                        if attempt >= max_attempts:
                            raise
                        delay_ms = self._retry_backoff_ms(attempt)
                        with tracer.span("retry", kind="retry",
                                         target="invoke", attempt=attempt,
                                         error=type(error).__name__):
                            yield self.sim.timeout(delay_ms)
                        self.retries += 1
                        if isinstance(error, HostDownError):
                            failed_from = error.host_id
                        attempt += 1
                        record.attempts = attempt
        except InvocationSheddedError as error:
            # Overload protection, not a failure: account the shed as a
            # first-class result and let the caller observe the 429.
            from repro.autoscale.admission import SheddedInvocation
            shedded = SheddedInvocation(
                function=name, platform=self.name,
                submitted_ms=record.submitted_ms, shed_ms=self.sim.now,
                host_id=error.host_id, reason=error.reason,
                queue_depth=error.queue_depth,
                trace_id=invoke_span.trace_id, span=invoke_span)
            self.shedded_invocations.append(shedded)
            error.shedded = shedded
            raise
        except ReproError as error:
            if self.chaos is None or \
                    isinstance(error, (TraceError, SimulationError)):
                raise
            failed = FailedInvocation(
                function=name, platform=self.name,
                submitted_ms=record.submitted_ms, failed_ms=self.sim.now,
                attempts=record.attempts,
                reason=str(error) or type(error).__name__,
                hosts_tried=tuple(hosts_tried),
                trace_id=invoke_span.trace_id, span=invoke_span)
            self.failed_invocations.append(failed)
            raise InvocationFailedError(failed) from error

        # The record's breakdown is *derived* from the span tree, so the
        # Fig 6/7 bars and the trace cannot disagree (repro.trace.verify).
        record.completed_ms = self.sim.now
        record.trace_id = invoke_span.trace_id
        record.span = invoke_span
        breakdown = phase_breakdown(invoke_span)
        record.startup_ms = breakdown.startup_ms
        record.exec_ms = breakdown.exec_ms
        record.other_ms = breakdown.other_ms
        record.queue_wait_ms = breakdown.queue_ms
        self.records.append(record)
        return record

    def _invoke_attempt(self, spec: FunctionSpec, mode: str,
                        payload: Optional[Dict[str, Any]],
                        record: InvocationRecord,
                        hosts_tried: List[int],
                        locality_hint: Optional[Any] = None):
        """One dispatch attempt (a simulation generator).

        Chaos failures surface at *stage boundaries*: a host that dies
        mid-stage is observed when the stage completes, which keeps every
        stage span well formed (docs/chaos.md).
        """
        tracer = self.sim.tracer
        name = spec.name

        # Frontend: gateway relays, controller dispatches over the bus.
        if self.chaos is not None and \
                self.chaos.bus_partitioned(self.sim.now):
            raise BusPartitionedError(
                f"message bus unreachable at {self.sim.now:.0f}ms")
        cp = self.params.control_plane
        frontend_ms = (cp.gateway_route_ms + cp.controller_dispatch_ms
                       + cp.bus_publish_ms)
        self.bus.produce(f"invoke-{name}", payload or {},
                         timestamp_ms=self.sim.now)
        with tracer.span("frontend", phase="other"):
            yield self.sim.timeout(frontend_ms)

        # Placement: the controller picks a backend host (Figure 1:
        # "relays it to one of the backend servers").  The decision is
        # instantaneous — the span records *where* and *why*, not time.
        # Down hosts advertise no room, so every policy fails over here.
        serving = self.params.autoscale.enabled
        placement_span = tracer.span("placement", kind="placement",
                                     policy=self.cluster.policy,
                                     source=self.cluster.policy_source)
        if locality_hint is None:
            probe = lambda h: self._host_affinity(h, spec.name)  # noqa: E731
        else:
            # Chain-executor hint: a predecessor stage's host counts as
            # local even without resident function state, so chain-aware
            # policies can keep a chain on one machine.
            probe = lambda h: (self._host_affinity(h, spec.name)  # noqa: E731
                               or bool(locality_hint(h)))
        with placement_span:
            if serving:
                # Serving layer: full clusters queue instead of bouncing.
                host = self.cluster.place_queued(spec.name, locality=probe)
            else:
                host = self.cluster.place(spec.name, locality=probe)
            placement_span.attrs["host"] = host.host_id
        record.host_id = host.host_id
        hosts_tried.append(host.host_id)

        if serving:
            # Admission: wait in the host's bounded FIFO for a capacity
            # slot, or get shed (InvocationSheddedError).  Zero-width
            # when the host has room and nobody is queued ahead.
            if host.admission is None:
                host.assign(spec.name)   # legacy cluster, no queue
            else:
                admission_span = tracer.span("admission", phase="queue",
                                             host=host.host_id)
                with admission_span:
                    wait_ms = yield from host.admission.admit(spec.name)
                    admission_span.attrs["wait_ms"] = wait_ms
                    admission_span.attrs["depth"] = host.admission.depth

        try:
            # An injected host degradation slows dispatch onto this host.
            penalty_ms = host.degradation_penalty_ms(self.sim.now)
            if penalty_ms > 0.0:
                with tracer.span("degraded", kind="degraded",
                                 host=host.host_id, penalty_ms=penalty_ms):
                    yield self.sim.timeout(penalty_ms)

            # Under burst load the chosen host's core pool gates
            # everything past placement: claim a core for the sandbox
            # work + execution.
            cpu_claim = None
            if host.cpu is not None:
                with tracer.span("queue", phase="queue"):
                    cpu_claim = yield from host.cpu.acquire()

            try:
                if cpu_claim is not None:
                    self._check_host_alive(host, "queue")
                # Backend: acquire a worker (cold boot / warm pool /
                # snapshot) on the chosen host.  Time in this span is
                # start-up, except spans explicitly tagged
                # phase="other" (parameter publish).
                acquire_span = tracer.span("acquire", kind="acquire")
                with acquire_span:
                    worker, mode_used, _extra_other_ms = \
                        yield from self._acquire_worker(spec, mode, host)
                    acquire_span.attrs["mode"] = mode_used
                self._check_host_alive(host, "acquire")
                record.mode = mode_used
                record.worker = worker

                # Execute the guest program.  Nested invoke spans
                # (chain hops) are accounted on the child records, not
                # here.
                handlers = self._make_handlers(worker, record)
                exec_span = tracer.span("exec", phase="exec")
                with exec_span:
                    guest = yield from worker.invoke(
                        spec.program(payload), handlers)
                    exec_span.attrs["deopts"] = guest.deopt_count
                    exec_span.attrs["jit_optimized"] = len(
                        worker.runtime.jit.optimized_functions())
                    # Pages this clone CoW-broke (its private/dirty
                    # MiB).
                    exec_span.attrs["uss_mb"] = \
                        worker.sandbox.space.uss_mb()
                record.guest = guest
            finally:
                if cpu_claim is not None:
                    host.cpu.release(cpu_claim)

            if host.down:
                # The function ran, then the host died before the response
                # was accounted.  NOT retryable: at-most-once billing.
                raise ExecutionLostError(host.host_id)

            with tracer.span("release", kind="release"):
                yield from self._release_worker(spec, worker, host)
            if self.retain_workers and worker not in self.active_workers:
                self.active_workers.append(worker)
        finally:
            self.cluster.finish(host)

    def _check_host_alive(self, host: Host, stage: str) -> None:
        """Raise :class:`HostDownError` if *host* died during *stage*."""
        if host.down:
            raise HostDownError(host.host_id, stage)

    def _retry_backoff_ms(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1``: capped exponential with
        deterministic, seed-derived jitter (the ``chaos-retry`` stream is
        only drawn on retries, so golden traces never see it)."""
        cfg = self.params.cluster
        delay = min(cfg.retry_cap_ms,
                    cfg.retry_base_ms
                    * cfg.retry_backoff_factor ** (attempt - 1))
        if cfg.retry_jitter_frac > 0.0:
            unit = self.sim.rng.stream("chaos-retry").random()
            delay *= 1.0 + cfg.retry_jitter_frac * (2.0 * unit - 1.0)
        return delay

    # -- chaos hooks -----------------------------------------------------------------
    def on_chaos_attached(self) -> None:
        """Called once when a chaos controller binds to this platform.
        Backends that cache per-host helpers override this to wire the
        controller into them (e.g. restorers honouring slow-restore)."""

    def on_host_crash(self, host: Host) -> None:
        """Called by the chaos controller after *host* is marked down and
        its warm pool / snapshot store are cleared.  Backends drop any
        per-host caches that died with the machine (e.g. Catalyzer
        templates)."""
        del host

    # -- autoscaler hooks (repro.autoscale) --------------------------------------
    def provision_warm_on(self, spec: FunctionSpec, host: Host):
        """Autoscaler hook (a simulation generator): boot one warm worker
        for *spec* on *host*, off the invoke critical path.

        Returns a :class:`~repro.platforms.pooling.WarmEntry` for the
        scaler to stamp with a TTL and park in ``host.pool`` — or ``None``
        when the backend has nothing useful to pre-provision (the default;
        e.g. Catalyzer's templates are already resident on every host).
        """
        del spec, host
        return None
        yield  # pragma: no cover - makes this function a generator

    def discard_warm(self, entry, host: Host) -> None:
        """Tear down a pooled warm worker (TTL expiry, crashed host).

        Runs detached: teardown cost is off every request's critical path.
        """
        del host
        self.sim.process(entry.worker.stop(),
                         name=f"warm-discard:{entry.worker.sandbox.name}")

    def _make_handlers(self, worker: Worker,
                       record: InvocationRecord) -> ExternalHandlers:
        return _PlatformHandlers(self, worker, record)

    # -- backend hooks ---------------------------------------------------------------
    def _acquire_worker(self, spec: FunctionSpec, mode: str, host: Host):
        """Yield-based hook returning ``(worker, mode_used, other_ms)``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def _release_worker(self, spec: FunctionSpec, worker: Worker,
                        host: Host):
        """What happens to the worker after the invocation."""
        raise NotImplementedError
        yield  # pragma: no cover

    def _host_affinity(self, host: Host, function: str) -> bool:
        """Whether *host* already holds state (warm sandbox, snapshot)
        for *function* — the ``snapshot-locality`` policy's predicate.
        Default: a live warm-pool entry."""
        return host.pool.size(function, self.sim.now) > 0

    def _transfer_working_set_mb(self, image) -> Optional[float]:
        """Recorded working-set bytes a streaming transfer ships first, or
        ``None`` when nothing is recorded (full up-front transfer).
        Backends with a working-set recorder override this."""
        del image
        return None

    def _fetch_image_to_host(self, key: str, host: Host):
        """Make the snapshot under *key* resident on *host* (a generator).

        A local hit is free; otherwise the image is copied from the
        lowest-numbered host that has it, paying the modeled network
        transfer (``params.cluster``) as a ``snapshot-transfer`` span —
        the cost the ``snapshot-locality`` policy exists to avoid.

        With ``cluster.stream_transfers`` on and a recorded working set,
        only the working-set chunks move on the critical path (a
        ``transfer-working-set`` child span); the residual chunks stream in
        a detached background process at the same modeled bandwidth, so an
        off-home placement is runnable as soon as its working set lands.

        Concurrency and liveness are re-checked *after* the transfer wait:
        a concurrent transfer that landed the same key first wins (no
        double count, no clobbered replica), and a destination that died
        mid-transfer surfaces :class:`HostDownError` instead of seeding a
        crashed host's store with a replica that would survive recovery.
        """
        if host.store.contains(key):
            self.local_restores += 1
            return host.store.get(key)
        sources = [other for other in self.cluster.hosts
                   if other is not host and other.store.contains(key)]
        if not sources:
            # Nobody has it: surface the store's own miss.
            return host.store.get(key)
        source = min(sources, key=lambda other: other.host_id)
        image = source.store.get(key)
        cfg = self.params.cluster
        working_set_mb = (self._transfer_working_set_mb(image)
                          if cfg.stream_transfers else None)
        streamed = (working_set_mb is not None
                    and working_set_mb < image.size_mb)
        transfer_span = self.sim.tracer.span(
            "snapshot-transfer", kind="transfer", key=key,
            src=source.host_id, dst=host.host_id, streamed=streamed)
        with transfer_span:
            if streamed:
                with self.sim.tracer.span(
                        "transfer-working-set", kind="transfer-working-set",
                        mb=working_set_mb):
                    yield self.sim.timeout(
                        cfg.snapshot_transfer_base_ms
                        + working_set_mb * cfg.snapshot_transfer_per_mb_ms)
                foreground_mb = working_set_mb
            else:
                yield self.sim.timeout(
                    cfg.snapshot_transfer_base_ms
                    + image.size_mb * cfg.snapshot_transfer_per_mb_ms)
                foreground_mb = image.size_mb
            transfer_span.attrs["size_mb"] = image.size_mb
            transfer_span.attrs["foreground_mb"] = foreground_mb
        # Re-check the world after the wait: the transfer raced with
        # whatever else happened on *host* during it.
        if host.down:
            raise HostDownError(host.host_id, "snapshot-transfer")
        if host.store.contains(key):
            # A concurrent transfer already landed this key here; keep the
            # landed replica instead of clobbering it and double counting.
            self.duplicate_transfers += 1
            return host.store.get(key)
        replica = image.clone_for_transfer()
        self.cross_host_transfers += 1
        self.transfer_foreground_mb += foreground_mb
        if streamed:
            residual_mb = image.size_mb - working_set_mb
            host.store.put(key, replica, resident_mb=working_set_mb)
            self.streamed_transfers += 1
            self.sim.process(
                self._stream_residual(key, host, residual_mb),
                name=f"stream-residual:{key}@h{host.host_id}")
        else:
            host.store.put(key, replica)
        return replica

    def _stream_residual(self, key: str, host: Host, residual_mb: float):
        """Background tail of a streaming transfer: land the chunks outside
        the working set at the modeled bandwidth (a detached process, so it
        is off every request's critical path)."""
        with self.sim.tracer.span(
                "transfer-residual", kind="transfer-residual", key=key,
                dst=host.host_id, mb=residual_mb):
            yield self.sim.timeout(
                residual_mb * self.params.cluster.snapshot_transfer_per_mb_ms)
        if host.down or not host.store.contains(key):
            return  # crashed or evicted mid-stream: nothing left to land
        host.store.extend_resident(key, residual_mb)
        self.transfer_background_mb += residual_mb

    # -- reporting ----------------------------------------------------------------
    def memory_pss_mb(self) -> List[float]:
        """PSS of every retained worker (Fig 10/12 measurements)."""
        return [worker.pss_mb() for worker in self.active_workers]

    def table1_row(self) -> Dict[str, str]:
        """This platform's row of the paper's Table 1."""
        return {
            "platform": self.name,
            "isolation": self.isolation_label,
            "performance": self.performance_label,
            "memory_efficiency": self.memory_label,
        }
