"""Firecracker sandbox-manager baselines.

Two variants, both providing VM-level isolation (Table 1, row 1):

* :class:`FirecrackerPlatform` — plain Firecracker: cold start boots the
  microVM, guest OS, runtime, and loads the function (the slowest cold start
  in Fig 6); warm start resumes a *paused* microVM that was installed but
  never executed (§5.1 methodology), so the first execution still JITs.
* :class:`FirecrackerSnapshotPlatform` — Firecracker *using a snapshot*
  (§5.2's extra comparison point and Fig 11's factor analysis): the install
  phase snapshots the VM at a configurable stage (after OS boot + runtime
  agent, or after app load), and invocation restores it.  No forced JIT —
  that is the piece Fireworks adds.

Neither variant can execute chains of functions (§5.3).

Warm microVMs and snapshot images are host-local: installation seeds the
function's home host, and a snapshot restore on any other host first pays
the modeled cross-host transfer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.errors import PlatformError
from repro.platforms.base import (MODE_AUTO, MODE_COLD, MODE_SNAPSHOT,
                                  MODE_WARM, ServerlessPlatform)
from repro.platforms.pooling import WarmEntry, WarmPool, require_warm
from repro.runtime import make_runtime
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.snapshot.image import STAGE_OS, STAGE_POST_LOAD
from repro.snapshot.restorer import POLICY_DEMAND, Restorer
from repro.snapshot.snapshotter import Snapshotter
from repro.storage.snapshot_store import SnapshotStore
from repro.workloads.base import FunctionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.host import Host


class FirecrackerPlatform(ServerlessPlatform):
    """Plain Firecracker microVMs: highest isolation, slowest cold start."""

    name = "firecracker"
    isolation_label = "High (VM)"
    performance_label = "Medium (snapshot)"
    memory_label = "High (snapshot)"
    supports_chains = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cold_starts = 0
        self.warm_starts = 0

    @property
    def pool(self) -> WarmPool:
        """Host 0's warm pool (the only pool on a single-host cluster)."""
        return self.cluster.hosts[0].pool

    # -- worker construction -------------------------------------------------------
    def _boot_worker(self, spec: FunctionSpec, host: Host):
        microvm = MicroVM(self.sim, self.params, host.memory,
                          spec.language)
        guest_ip, guest_mac = host.bridge.allocate_guest_addresses()
        microvm.assign_guest_addresses(guest_ip, guest_mac)
        worker = Worker(self.sim, microvm,
                        make_runtime(self.sim, self.params, spec.language))
        yield from worker.cold_start(spec.app)
        worker.endpoint = host.bridge.connect_guest(guest_ip, guest_mac)
        return worker

    def provision_warm(self, name: str, host: Host = None):
        """§5.1 warm methodology: boot, install, pause — keep in memory.

        Defaults to the function's home host, where the hash policy (and
        a single-host cluster trivially) will look for it.
        """
        spec = self.spec(name)
        if host is None:
            host = self.cluster.home_host(name)
        worker = yield from self._boot_worker(spec, host)
        yield from worker.pause()
        host.pool.add(name, WarmEntry(worker, float("inf"), paused=True))
        return worker

    # -- autoscaler hook ---------------------------------------------------------
    def provision_warm_on(self, spec: FunctionSpec, host: Host):
        """Boot + pause one microVM on *host* (the §5.1 warm methodology,
        driven by the autoscaler instead of the bench harness)."""
        worker = yield from self._boot_worker(spec, host)
        yield from worker.pause()
        return WarmEntry(worker, float("inf"), paused=True)

    def discard_warm(self, entry, host: Host) -> None:
        """Warm microVMs hold a bridge endpoint: disconnect on teardown."""
        self.sim.process(self._teardown(entry.worker, host),
                         name=f"warm-discard:{entry.worker.sandbox.name}")

    # -- backend hooks -----------------------------------------------------------------
    def _acquire_worker(self, spec: FunctionSpec, mode: str, host: Host):
        if mode in (MODE_AUTO, MODE_WARM):
            entry = host.pool.take(spec.name, self.sim.now)
            if mode == MODE_WARM:
                entry = require_warm(entry, spec.name, self.name)
            if entry is not None:
                yield from entry.worker.resume()
                self.warm_starts += 1
                return entry.worker, MODE_WARM, 0.0
        worker = yield from self._boot_worker(spec, host)
        self.cold_starts += 1
        return worker, MODE_COLD, 0.0

    def _release_worker(self, spec: FunctionSpec, worker: Worker,
                        host: Host):
        del spec
        if not self.retain_workers:
            # The response already left; reclaim the VM off the critical
            # path.
            self.sim.process(self._teardown(worker, host),
                             name=f"teardown:{worker.sandbox.name}")
        return
        yield  # pragma: no cover

    def _teardown(self, worker: Worker, host: Host):
        if worker.endpoint is not None:
            host.bridge.disconnect(worker.endpoint)
            worker.endpoint = None
        yield from worker.stop()


class FirecrackerSnapshotPlatform(FirecrackerPlatform):
    """Firecracker with its VM-level snapshot feature (no post-JIT).

    ``stage`` selects what the install-phase snapshot captures:

    * ``STAGE_OS`` — Fig 11's "+VM-level OS snapshot": guest OS booted and
      runtime agent up, function not loaded; invocation pays app load and
      run-time JIT.
    * ``STAGE_POST_LOAD`` — function loaded but never executed: invocation
      pays only run-time JIT.
    """

    name = "firecracker-snapshot"

    def __init__(self, *args, stage: str = STAGE_OS,
                 restore_policy: str = POLICY_DEMAND, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if stage not in (STAGE_OS, STAGE_POST_LOAD):
            raise PlatformError(
                f"{self.name}: stage must be os/post-load, got {stage!r} — "
                "post-JIT snapshots are what Fireworks adds")
        self.stage = stage
        # No working-set recorder here: a ``lazy`` restore on this backend
        # demand-faults everything — the honest recorder-less comparison
        # point for the restore figure.
        self.restore_policy = restore_policy
        self.snapshotter = Snapshotter(self.sim, self.params.snapshot)
        self._restorers: Dict[int, Restorer] = {}

    @property
    def store(self) -> SnapshotStore:
        """Host 0's snapshot store."""
        return self.cluster.hosts[0].store

    @property
    def restorer(self) -> Restorer:
        """Host 0's restorer."""
        return self.restorer_for(self.cluster.hosts[0])

    def restorer_for(self, host: Host) -> Restorer:
        """The restorer bound to *host*'s physical memory."""
        restorer = self._restorers.get(host.host_id)
        if restorer is None:
            restorer = Restorer(self.sim, self.params, host.memory)
            restorer.chaos = self.chaos
            self._restorers[host.host_id] = restorer
        return restorer

    def on_chaos_attached(self) -> None:
        """Wire the chaos controller into restorers built before it
        attached, so they honour its slow-restore windows too."""
        for restorer in self._restorers.values():
            restorer.chaos = self.chaos

    # -- installation ---------------------------------------------------------------
    def _install_backend(self, spec: FunctionSpec, host: Host):
        microvm = MicroVM(self.sim, self.params, host.memory,
                          spec.language, name=f"install-{spec.name}")
        guest_ip, guest_mac = host.bridge.allocate_guest_addresses()
        microvm.assign_guest_addresses(guest_ip, guest_mac)
        worker = Worker(self.sim, microvm,
                        make_runtime(self.sim, self.params, spec.language))
        yield from microvm.boot()
        yield from worker.runtime.launch()
        microvm.map_runtime_memory()
        if self.stage == STAGE_POST_LOAD:
            yield from worker.runtime.load_app(spec.app)
            microvm.map_app_memory()
            worker.app = spec.app
        image = yield from self.snapshotter.create(
            worker, spec.name, self.stage)
        host.store.put(spec.name, image)
        yield from worker.stop()

    # -- invocation -------------------------------------------------------------------
    def _host_affinity(self, host: Host, function: str) -> bool:
        # Snapshot restores are cheap exactly where the image is resident.
        return host.store.contains(function)

    def _acquire_worker(self, spec: FunctionSpec, mode: str, host: Host):
        if mode == MODE_WARM:
            # Warm and snapshot starts coincide: there is nothing warmer
            # than the always-available snapshot.
            mode = MODE_AUTO
        if not any(other.store.contains(spec.name)
                   for other in self.cluster.hosts):
            raise PlatformError(
                f"{self.name}: {spec.name!r} has no snapshot; install first")
        image = yield from self._fetch_image_to_host(spec.name, host)
        worker = yield from self.restorer_for(host).restore(
            image, self.restore_policy)
        worker.endpoint = host.bridge.connect_guest(
            image.guest_ip, image.guest_mac)
        if self.stage == STAGE_OS:
            yield from worker.load_app_only(spec.app)
        return worker, MODE_SNAPSHOT, 0.0
