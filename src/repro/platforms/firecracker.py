"""Firecracker sandbox-manager baselines.

Two variants, both providing VM-level isolation (Table 1, row 1):

* :class:`FirecrackerPlatform` — plain Firecracker: cold start boots the
  microVM, guest OS, runtime, and loads the function (the slowest cold start
  in Fig 6); warm start resumes a *paused* microVM that was installed but
  never executed (§5.1 methodology), so the first execution still JITs.
* :class:`FirecrackerSnapshotPlatform` — Firecracker *using a snapshot*
  (§5.2's extra comparison point and Fig 11's factor analysis): the install
  phase snapshots the VM at a configurable stage (after OS boot + runtime
  agent, or after app load), and invocation restores it.  No forced JIT —
  that is the piece Fireworks adds.

Neither variant can execute chains of functions (§5.3).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import PlatformError
from repro.platforms.base import (MODE_AUTO, MODE_COLD, MODE_SNAPSHOT,
                                  MODE_WARM, ServerlessPlatform)
from repro.platforms.pooling import WarmEntry, WarmPool, require_warm
from repro.runtime import make_runtime
from repro.sandbox.microvm import MicroVM
from repro.sandbox.worker import Worker
from repro.snapshot.image import STAGE_OS, STAGE_POST_LOAD, SnapshotImage
from repro.snapshot.restorer import POLICY_DEMAND, Restorer
from repro.snapshot.snapshotter import Snapshotter
from repro.storage.disk import BlockDevice
from repro.storage.snapshot_store import SnapshotStore
from repro.workloads.base import FunctionSpec


class FirecrackerPlatform(ServerlessPlatform):
    """Plain Firecracker microVMs: highest isolation, slowest cold start."""

    name = "firecracker"
    isolation_label = "High (VM)"
    performance_label = "Medium (snapshot)"
    memory_label = "High (snapshot)"
    supports_chains = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.pool = WarmPool()
        self.cold_starts = 0
        self.warm_starts = 0

    # -- worker construction -------------------------------------------------------
    def _boot_worker(self, spec: FunctionSpec):
        microvm = MicroVM(self.sim, self.params, self.host_memory,
                          spec.language)
        guest_ip, guest_mac = self.bridge.allocate_guest_addresses()
        microvm.assign_guest_addresses(guest_ip, guest_mac)
        worker = Worker(self.sim, microvm,
                        make_runtime(self.sim, self.params, spec.language))
        yield from worker.cold_start(spec.app)
        worker.endpoint = self.bridge.connect_guest(guest_ip, guest_mac)
        return worker

    def provision_warm(self, name: str):
        """§5.1 warm methodology: boot, install, pause — keep in memory."""
        spec = self.spec(name)
        worker = yield from self._boot_worker(spec)
        yield from worker.pause()
        self.pool.add(name, WarmEntry(worker, float("inf"), paused=True))
        return worker

    # -- backend hooks -----------------------------------------------------------------
    def _acquire_worker(self, spec: FunctionSpec, mode: str):
        if mode in (MODE_AUTO, MODE_WARM):
            entry = self.pool.take(spec.name, self.sim.now)
            if mode == MODE_WARM:
                entry = require_warm(entry, spec.name, self.name)
            if entry is not None:
                yield from entry.worker.resume()
                self.warm_starts += 1
                return entry.worker, MODE_WARM, 0.0
        worker = yield from self._boot_worker(spec)
        self.cold_starts += 1
        return worker, MODE_COLD, 0.0

    def _release_worker(self, spec: FunctionSpec, worker: Worker):
        del spec
        if not self.retain_workers:
            # The response already left; reclaim the VM off the critical
            # path.
            self.sim.process(self._teardown(worker),
                             name=f"teardown:{worker.sandbox.name}")
        return
        yield  # pragma: no cover

    def _teardown(self, worker: Worker):
        if worker.endpoint is not None:
            self.bridge.disconnect(worker.endpoint)
            worker.endpoint = None
        yield from worker.stop()


class FirecrackerSnapshotPlatform(FirecrackerPlatform):
    """Firecracker with its VM-level snapshot feature (no post-JIT).

    ``stage`` selects what the install-phase snapshot captures:

    * ``STAGE_OS`` — Fig 11's "+VM-level OS snapshot": guest OS booted and
      runtime agent up, function not loaded; invocation pays app load and
      run-time JIT.
    * ``STAGE_POST_LOAD`` — function loaded but never executed: invocation
      pays only run-time JIT.
    """

    name = "firecracker-snapshot"

    def __init__(self, *args, stage: str = STAGE_OS, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if stage not in (STAGE_OS, STAGE_POST_LOAD):
            raise PlatformError(
                f"{self.name}: stage must be os/post-load, got {stage!r} — "
                "post-JIT snapshots are what Fireworks adds")
        self.stage = stage
        self.snapshotter = Snapshotter(self.sim, self.params.snapshot)
        self.restorer = Restorer(self.sim, self.params, self.host_memory)
        self.store = SnapshotStore(
            BlockDevice(self.params.host.disk_gb * 1024.0),
            capacity_images=self.params.snapshot.store_capacity_images)
        self._images: Dict[str, SnapshotImage] = {}

    # -- installation ---------------------------------------------------------------
    def _install_backend(self, spec: FunctionSpec):
        microvm = MicroVM(self.sim, self.params, self.host_memory,
                          spec.language, name=f"install-{spec.name}")
        guest_ip, guest_mac = self.bridge.allocate_guest_addresses()
        microvm.assign_guest_addresses(guest_ip, guest_mac)
        worker = Worker(self.sim, microvm,
                        make_runtime(self.sim, self.params, spec.language))
        yield from microvm.boot()
        yield from worker.runtime.launch()
        microvm.map_runtime_memory()
        if self.stage == STAGE_POST_LOAD:
            yield from worker.runtime.load_app(spec.app)
            microvm.map_app_memory()
            worker.app = spec.app
        image = yield from self.snapshotter.create(
            worker, spec.name, self.stage)
        self.store.put(spec.name, image)
        self._images[spec.name] = image
        yield from worker.stop()

    # -- invocation -------------------------------------------------------------------
    def _acquire_worker(self, spec: FunctionSpec, mode: str):
        if mode == MODE_WARM:
            # Warm and snapshot starts coincide: there is nothing warmer
            # than the always-available snapshot.
            mode = MODE_AUTO
        image = self._images.get(spec.name)
        if image is None:
            raise PlatformError(
                f"{self.name}: {spec.name!r} has no snapshot; install first")
        self.store.get(spec.name)  # refresh LRU recency
        worker = yield from self.restorer.restore(image, POLICY_DEMAND)
        worker.endpoint = self.bridge.connect_guest(
            image.guest_ip, image.guest_mac)
        if self.stage == STAGE_OS:
            yield from worker.load_app_only(spec.app)
        return worker, MODE_SNAPSHOT, 0.0
