"""gVisor sandbox-manager baseline (Table 1, row 3).

Cold start pays container creation plus gVisor's Sentry/Gofer bring-up;
every I/O pays syscall interception (the slowest I/O path in Fig 6(c)).
Warm methodology matches §5.1: install, pause, resume on invocation — the
function was never executed, so the first run still JITs.  Paused sandboxes
are host-local: they only help when placement sends the request back to
the host that has one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.platforms.base import (MODE_AUTO, MODE_COLD, MODE_WARM,
                                  ServerlessPlatform)
from repro.platforms.pooling import WarmEntry, WarmPool, require_warm
from repro.runtime import make_runtime
from repro.sandbox.gvisor import GVisorSandbox
from repro.sandbox.worker import Worker
from repro.workloads.base import FunctionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.host import Host


class GVisorPlatform(ServerlessPlatform):
    """gVisor (runsc) with Docker, as the paper evaluates it."""

    name = "gvisor"
    isolation_label = "Medium (container)"
    performance_label = "Medium (snapshot)"
    memory_label = "High (snapshot)"
    supports_chains = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cold_starts = 0
        self.warm_starts = 0

    @property
    def pool(self) -> WarmPool:
        """Host 0's warm pool (the only pool on a single-host cluster)."""
        return self.cluster.hosts[0].pool

    def _boot_worker(self, spec: FunctionSpec, host: Host):
        worker = Worker(self.sim,
                        GVisorSandbox(self.sim, self.params,
                                      host.memory, spec.language),
                        make_runtime(self.sim, self.params, spec.language))
        yield from worker.cold_start(spec.app)
        return worker

    def provision_warm(self, name: str, host: Host = None):
        """§5.1 warm methodology: launch, install, pause.

        Defaults to the function's home host, where the hash policy (and
        a single-host cluster trivially) will look for it.
        """
        spec = self.spec(name)
        if host is None:
            host = self.cluster.home_host(name)
        worker = yield from self._boot_worker(spec, host)
        yield from worker.pause()
        host.pool.add(name, WarmEntry(worker, float("inf"), paused=True))
        return worker

    def provision_warm_on(self, spec: FunctionSpec, host: Host):
        """Autoscaler hook: launch + pause one gVisor sandbox on *host*."""
        worker = yield from self._boot_worker(spec, host)
        yield from worker.pause()
        return WarmEntry(worker, float("inf"), paused=True)

    def _acquire_worker(self, spec: FunctionSpec, mode: str, host: Host):
        if mode in (MODE_AUTO, MODE_WARM):
            entry = host.pool.take(spec.name, self.sim.now)
            if mode == MODE_WARM:
                entry = require_warm(entry, spec.name, self.name)
            if entry is not None:
                yield from entry.worker.resume()
                self.warm_starts += 1
                return entry.worker, MODE_WARM, 0.0
        worker = yield from self._boot_worker(spec, host)
        self.cold_starts += 1
        return worker, MODE_COLD, 0.0

    def _release_worker(self, spec: FunctionSpec, worker: Worker,
                        host: Host):
        del spec, host
        if not self.retain_workers:
            self.sim.process(worker.stop(),
                             name=f"teardown:{worker.sandbox.name}")
        return
        yield  # pragma: no cover
