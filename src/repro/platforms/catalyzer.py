"""Catalyzer-style baseline (extension — the paper could not measure it).

§2.3/§5.1: Catalyzer [19] is a gVisor-based platform the paper compares
against *qualitatively only* ("we do not include Catalyzer because its
source code is not publicly available").  Its design, as the paper
describes it:

* **cold start**: restore the function from a *checkpoint image* — a
  process-level (criu-style) checkpoint of the loaded sandbox, much faster
  than booting but slower than Firecracker's mmap'd VM snapshot restore
  because the process tree, file descriptors and Sentry state must be
  rebuilt;
* **warm start**: ``sfork`` — fork a clean-state sandbox template that is
  already resident, giving sub-millisecond starts;
* **isolation**: exactly gVisor's (Table 1: "Med (container)").

Modeling it lets the Table 1 row be *measured* rather than asserted, and
gives Fig 6-style numbers for the one platform the paper had to omit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.errors import PlatformError
from repro.platforms.base import (MODE_AUTO, MODE_COLD, MODE_WARM,
                                  ServerlessPlatform)
from repro.runtime import make_runtime
from repro.runtime.interpreter import LanguageRuntime
from repro.sandbox.base import STATE_RUNNING
from repro.sandbox.gvisor import GVisorSandbox
from repro.sandbox.worker import Worker
from repro.workloads.base import FunctionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.host import Host

#: Restoring a criu-style checkpoint: rebuild the process tree, fds, and
#: Sentry state.  Far below a cold boot, well above an sfork.
CHECKPOINT_RESTORE_MS = 95.0
#: sfork of the resident clean-state template (Catalyzer's headline number
#: is sub-millisecond warm boots).
SFORK_MS = 0.9


class _Template:
    """The resident clean-state sandbox template sfork clones from."""

    def __init__(self, worker: Worker, jit_state) -> None:
        self.worker = worker          # kept resident (memory cost is real)
        self.jit_state = jit_state    # state captured at checkpoint time


class CatalyzerPlatform(ServerlessPlatform):
    """Catalyzer: checkpoint/restore + sfork on gVisor."""

    name = "catalyzer"
    isolation_label = "Med (container)"
    performance_label = "High (pre-launching)"
    memory_label = "High (process sharing)"
    supports_chains = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._templates: Dict[Tuple[int, str], _Template] = {}
        self.checkpoint_restores = 0
        self.sforks = 0

    # -- installation: build the checkpoint + resident template ----------------
    def _install_backend(self, spec: FunctionSpec, host: Host):
        # Checkpoint images are distributed at install time: every host
        # gets a resident template (sfork needs one locally), starting
        # with the home host.
        del host
        for target in self.cluster.hosts:
            worker = Worker(self.sim,
                            GVisorSandbox(self.sim, self.params,
                                          target.memory, spec.language,
                                          name=f"cat-template-{spec.name}"),
                            make_runtime(self.sim, self.params,
                                         spec.language))
            yield from worker.cold_start(spec.app)
            yield from worker.pause()
            # The template stays resident; its pages are shared by sforked
            # children (process sharing — Table 1's memory column).
            self._templates[(target.host_id, spec.name)] = _Template(
                worker, worker.runtime.export_jit_state())

    def on_host_crash(self, host: "Host") -> None:
        """Drop the crashed host's resident templates (they died with the
        machine) and reclaim their sandboxes so nothing sforks a ghost."""
        dead = [key for key in self._templates if key[0] == host.host_id]
        for key in dead:
            template = self._templates.pop(key)
            self.sim.process(
                template.worker.stop(),
                name=f"chaos-teardown:{template.worker.sandbox.name}")

    # -- autoscaler hook ---------------------------------------------------------
    def provision_warm_on(self, spec, host):
        """Nothing to pre-provision: Catalyzer's resident templates make
        every auto invocation an sfork (<1 ms) already — there is no cold
        start for a warm pool to hide.  Explicit no-op."""
        del spec, host
        return None
        yield  # pragma: no cover - makes this function a generator

    # -- invocation ---------------------------------------------------------------
    def _host_affinity(self, host: Host, function: str) -> bool:
        return (host.host_id, function) in self._templates

    def _acquire_worker(self, spec: FunctionSpec, mode: str, host: Host):
        template = self._templates.get((host.host_id, spec.name))
        if template is None:
            raise PlatformError(
                f"{self.name}: {spec.name!r} has no checkpoint; install "
                "first")
        if mode in (MODE_AUTO, MODE_WARM):
            # sfork: clone the resident template.
            with self.sim.tracer.span("sfork", function=spec.name):
                yield self.sim.timeout(SFORK_MS)
            worker = self._clone_from_template(spec, template, host)
            self.sforks += 1
            return worker, MODE_WARM, 0.0
        # Forced cold: restore the checkpoint image from disk.
        with self.sim.tracer.span("checkpoint-restore", function=spec.name):
            yield self.sim.timeout(CHECKPOINT_RESTORE_MS)
        worker = self._clone_from_template(spec, template, host)
        self.checkpoint_restores += 1
        return worker, MODE_COLD, 0.0

    def _clone_from_template(self, spec: FunctionSpec,
                             template: _Template, host: Host) -> Worker:
        sandbox = GVisorSandbox(self.sim, self.params, host.memory,
                                spec.language)
        # A forked child shares the template's pages; only its private
        # copy-on-write state is new.  Model: map the boot/runtime/app
        # memory fresh-but-small via the normal path, which keeps the
        # accounting conservative for Catalyzer.
        sandbox.space.map_private("vmm", sandbox.layout.vmm_overhead_mb,
                                  "shim")
        sandbox.map_runtime_memory()
        sandbox.map_app_memory()
        sandbox.state = STATE_RUNNING
        sandbox.boot_completed_at = self.sim.now
        runtime = LanguageRuntime.from_snapshot(
            self.sim, self.params.runtime(spec.language),
            self.params.memory_layout(spec.language), spec.app,
            template.jit_state)
        return Worker(self.sim, sandbox, runtime, app=spec.app)

    def _release_worker(self, spec: FunctionSpec, worker: Worker,
                        host: Host):
        del spec, host
        if not self.retain_workers:
            self.sim.process(worker.stop(),
                             name=f"teardown:{worker.sandbox.name}")
        return
        yield  # pragma: no cover
