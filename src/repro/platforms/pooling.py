"""Warm-pool management shared by the baseline platforms.

The "current practice" of §2.2: after an invocation, keep the sandbox around
for a keep-alive window hoping another request arrives (a *warm start*); tear
it down afterwards because idle sandboxes waste memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import PlatformError
from repro.sandbox.worker import Worker


@dataclass
class WarmEntry:
    """One idle sandbox waiting in the warm pool."""

    worker: Worker
    expires_at_ms: float
    paused: bool      # FC/gVisor pause their sandboxes; OW keeps them live


class WarmPool:
    """Per-function pools of idle sandboxes with lazy expiry."""

    def __init__(self) -> None:
        self._pools: Dict[str, List[WarmEntry]] = {}
        self.expired_entries: List[WarmEntry] = []

    def add(self, function: str, entry: WarmEntry) -> None:
        """Park an idle sandbox in the function's pool."""
        self._pools.setdefault(function, []).append(entry)

    def take(self, function: str, now_ms: float) -> Optional[WarmEntry]:
        """Pop the freshest live entry, expiring stale ones as we go."""
        pool = self._pools.get(function, [])
        self._expire(pool, now_ms)
        if not pool:
            return None
        return pool.pop()

    def size(self, function: str, now_ms: float) -> int:
        """Live entries for *function* (expiring stale ones)."""
        pool = self._pools.get(function, [])
        self._expire(pool, now_ms)
        return len(pool)

    def drain_expired(self) -> List[WarmEntry]:
        """Entries that timed out since the last drain (caller tears down)."""
        expired, self.expired_entries = self.expired_entries, []
        return expired

    def expire_all(self, now_ms: float) -> None:
        """Sweep every pool for timed-out entries (periodic reaper)."""
        for pool in self._pools.values():
            self._expire(pool, now_ms)

    def drain_all(self) -> List[WarmEntry]:
        """Pop *every* entry — live, expired, all functions — and return
        them (host crash: the caller tears the sandboxes down).  Also
        flushes the pending-expired list so nothing is torn down twice."""
        drained = [entry for pool in self._pools.values() for entry in pool]
        drained.extend(self.expired_entries)
        self._pools.clear()
        self.expired_entries = []
        return drained

    def live_entries(self, now_ms: float) -> List[WarmEntry]:
        """Every still-live entry across all pools."""
        self.expire_all(now_ms)
        return [entry for pool in self._pools.values() for entry in pool]

    def total_pss_mb(self, now_ms: float) -> float:
        """Σ PSS of every live entry — the pool's memory footprint, the
        cost side of the warm-start trade the autoscaler navigates.

        Aggregated at the page level through :mod:`repro.mem.vector`
        (numpy-backed when available): load replays sample this on every
        tick across every host.
        """
        from repro.mem.vector import fleet_pss_mb
        return fleet_pss_mb(entry.worker.sandbox.space
                            for entry in self.live_entries(now_ms))

    def _expire(self, pool: List[WarmEntry], now_ms: float) -> None:
        live = [entry for entry in pool if entry.expires_at_ms > now_ms]
        self.expired_entries.extend(
            entry for entry in pool if entry.expires_at_ms <= now_ms)
        pool[:] = live


def require_warm(entry: Optional[WarmEntry], function: str,
                 platform: str) -> WarmEntry:
    """Raise a clear error when a warm start was forced but none exists."""
    if entry is None:
        raise PlatformError(
            f"{platform}: warm start of {function!r} requested but the warm "
            "pool is empty — call provision_warm() first")
    return entry
