"""The frontend: API gateway and activation records (Figure 1).

The paper's Figure 1 frontend relays user requests through an API gateway
to the controller.  This module supplies the production trimmings a real
deployment needs around :meth:`ServerlessPlatform.invoke`:

* **authentication** — per-namespace API keys (OpenWhisk's wsk auth);
* **request validation** — routed function must exist, payloads are
  size-capped (AWS caps synchronous payloads at 6 MB);
* **activation records** — every accepted request gets an activation id
  and a queryable record with status and timing, like OpenWhisk's
  ``wsk activation get``.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import (FunctionNotFoundError, PlatformError,
                          ReproError)
from repro.platforms.base import InvocationRecord, ServerlessPlatform

MAX_PAYLOAD_KB = 6 * 1024  # synchronous invocation payload cap

STATUS_SUCCESS = "success"
STATUS_ERROR = "application error"


class AuthenticationError(PlatformError):
    """The request's API key is missing or wrong."""


class PayloadTooLargeError(PlatformError):
    """The request payload exceeds the synchronous-invocation cap."""


@dataclass(frozen=True)
class Activation:
    """One accepted request's queryable record."""

    activation_id: str
    namespace: str
    function: str
    status: str
    start_ms: float
    end_ms: float
    record: Optional[InvocationRecord]
    error: str = ""

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class _Namespace:
    name: str
    api_key: str
    activations: List[Activation] = field(default_factory=list)


class ApiGateway:
    """Authenticated entry point in front of one platform."""

    def __init__(self, platform: ServerlessPlatform) -> None:
        self.platform = platform
        self._namespaces: Dict[str, _Namespace] = {}
        self._keys: Dict[str, _Namespace] = {}  # api_key -> namespace
        self._activation_counter = 0
        self.rejected_requests = 0

    # -- namespace management -----------------------------------------------------
    def create_namespace(self, name: str) -> str:
        """Provision a namespace; returns its API key."""
        if name in self._namespaces:
            raise PlatformError(f"namespace {name!r} already exists")
        digest = hashlib.sha256(f"key:{name}".encode("utf-8")).hexdigest()
        api_key = f"{name}:{digest[:24]}"
        namespace = _Namespace(name=name, api_key=api_key)
        self._namespaces[name] = namespace
        self._keys[api_key] = namespace
        return api_key

    def _authenticate(self, api_key: str) -> _Namespace:
        namespace = self._keys.get(api_key)
        # The dict lookup keys off the (public) key string; the digest
        # comparison itself must still be constant-time so response timing
        # cannot be used to probe key bytes.
        if namespace is not None and hmac.compare_digest(
                namespace.api_key.encode("utf-8"),
                api_key.encode("utf-8")):
            return namespace
        self.rejected_requests += 1
        raise AuthenticationError("invalid API key")

    # -- request path -----------------------------------------------------------------
    def handle_request(self, api_key: str, function: str,
                       payload: Optional[Dict[str, Any]] = None,
                       payload_kb: float = 1.0):
        """Authenticate, validate, invoke (a simulation generator).

        Returns the :class:`Activation`.  Application errors (the function
        itself failing) are recorded, not raised — like a real gateway.
        """
        namespace = self._authenticate(api_key)
        if payload_kb > MAX_PAYLOAD_KB:
            self.rejected_requests += 1
            raise PayloadTooLargeError(
                f"payload {payload_kb:.0f} KiB exceeds the "
                f"{MAX_PAYLOAD_KB} KiB synchronous cap")
        try:
            self.platform.spec(function)  # 404 before billing anything
        except FunctionNotFoundError:
            self.rejected_requests += 1
            raise

        self._activation_counter += 1
        activation_id = (f"act-{namespace.name}-"
                         f"{self._activation_counter:08d}")
        start_ms = self.platform.sim.now
        gateway_span = self.platform.sim.tracer.span(
            "gateway", kind="gateway", trace_id=activation_id,
            namespace=namespace.name, function=function)
        with gateway_span:
            try:
                record = yield from self.platform.invoke(function,
                                                         payload=payload)
                activation = Activation(
                    activation_id=activation_id, namespace=namespace.name,
                    function=function, status=STATUS_SUCCESS,
                    start_ms=start_ms, end_ms=self.platform.sim.now,
                    record=record)
            except FunctionNotFoundError:
                raise
            except ReproError as exc:
                # Application/infrastructure failure inside the invocation
                # — surfaced to the user as a failed activation, like a
                # real gateway's 502.
                activation = Activation(
                    activation_id=activation_id, namespace=namespace.name,
                    function=function, status=STATUS_ERROR,
                    start_ms=start_ms, end_ms=self.platform.sim.now,
                    record=None, error=str(exc))
            gateway_span.attrs["status"] = activation.status
        namespace.activations.append(activation)
        return activation

    # -- activation queries (wsk activation ...) -------------------------------------
    def activation(self, namespace: str, activation_id: str) -> Activation:
        """Look up one activation record (wsk activation get)."""
        for entry in self._namespace(namespace).activations:
            if entry.activation_id == activation_id:
                return entry
        raise PlatformError(f"no activation {activation_id!r}")

    def list_activations(self, namespace: str,
                         function: Optional[str] = None
                         ) -> List[Activation]:
        """Activations of a namespace, optionally per function."""
        entries = self._namespace(namespace).activations
        if function is None:
            return list(entries)
        return [entry for entry in entries if entry.function == function]

    def _namespace(self, name: str) -> _Namespace:
        if name not in self._namespaces:
            raise PlatformError(f"no namespace {name!r}")
        return self._namespaces[name]
