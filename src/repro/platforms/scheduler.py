"""Invoker pool and load-balancing policies (the backend of Figure 1).

Figure 1's controller relays requests "to one of the backend servers" —
the invokers.  Which invoker a request lands on matters because warm
containers live *on a specific invoker*: a scheduler that sprays requests
(round-robin) keeps missing its own warm pools, while OpenWhisk's actual
scheme — hashing each function to a *home invoker* — concentrates warmth.

Three policies:

* ``round-robin``  — spread blindly;
* ``least-loaded`` — spread by instantaneous load;
* ``hash``         — home-invoker per function (OpenWhisk's default),
                     falling over to the next node when the home is full.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import PlatformError

POLICY_ROUND_ROBIN = "round-robin"
POLICY_LEAST_LOADED = "least-loaded"
POLICY_HASH = "hash"

_POLICIES = (POLICY_ROUND_ROBIN, POLICY_LEAST_LOADED, POLICY_HASH)


@dataclass
class InvokerNode:
    """One backend server running sandboxes."""

    node_id: int
    capacity: int = 16            # concurrent sandboxes it can host
    active: int = 0
    assigned_total: int = 0
    per_function: Dict[str, int] = field(default_factory=dict)

    @property
    def has_room(self) -> bool:
        return self.active < self.capacity

    def assign(self, function: str) -> None:
        """Count one request onto this node; errors when full."""
        if not self.has_room:
            raise PlatformError(
                f"invoker{self.node_id} over capacity "
                f"({self.active}/{self.capacity})")
        self.active += 1
        self.assigned_total += 1
        self.per_function[function] = \
            self.per_function.get(function, 0) + 1

    def release(self) -> None:
        """Return a slot after the invocation finished."""
        if self.active <= 0:
            raise PlatformError(
                f"invoker{self.node_id} released below zero")
        self.active -= 1


class InvokerPool:
    """The controller's view of the invokers, with a pick policy."""

    def __init__(self, nodes: int = 4, capacity_per_node: int = 16,
                 policy: str = POLICY_HASH) -> None:
        if nodes < 1:
            raise PlatformError(f"need >= 1 invoker, got {nodes}")
        if policy not in _POLICIES:
            raise PlatformError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self.nodes: List[InvokerNode] = [
            InvokerNode(node_id=index, capacity=capacity_per_node)
            for index in range(nodes)]
        self._rr_next = 0

    # -- policy ---------------------------------------------------------------
    def pick(self, function: str) -> InvokerNode:
        """Choose (and assign to) an invoker for one request."""
        node = self._select(function)
        node.assign(function)
        return node

    def _select(self, function: str) -> InvokerNode:
        if self.policy == POLICY_ROUND_ROBIN:
            for _ in range(len(self.nodes)):
                node = self.nodes[self._rr_next]
                self._rr_next = (self._rr_next + 1) % len(self.nodes)
                if node.has_room:
                    return node
            raise PlatformError("all invokers at capacity")
        if self.policy == POLICY_LEAST_LOADED:
            candidates = [node for node in self.nodes if node.has_room]
            if not candidates:
                raise PlatformError("all invokers at capacity")
            return min(candidates, key=lambda node: (node.active,
                                                     node.node_id))
        # hash: home invoker, then linear probe on overflow.
        home = self._home_index(function)
        for offset in range(len(self.nodes)):
            node = self.nodes[(home + offset) % len(self.nodes)]
            if node.has_room:
                return node
        raise PlatformError("all invokers at capacity")

    def _home_index(self, function: str) -> int:
        digest = hashlib.sha256(function.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % len(self.nodes)

    # -- stats -----------------------------------------------------------------
    def total_active(self) -> int:
        """Requests currently running across all nodes."""
        return sum(node.active for node in self.nodes)

    def load_spread(self) -> float:
        """Max-min assigned_total across nodes (fairness measure)."""
        totals = [node.assigned_total for node in self.nodes]
        return max(totals) - min(totals)
