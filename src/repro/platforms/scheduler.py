"""Placement policies and the invoker pool (the backend of Figure 1).

Figure 1's controller relays requests "to one of the backend servers" —
the invokers.  Which server a request lands on matters because per-node
state lives *on a specific node*: warm containers, snapshot images, page
cache.  A scheduler that sprays requests (round-robin) keeps missing its
own warm pools and snapshot stores, while OpenWhisk's actual scheme —
hashing each function to a *home invoker* — concentrates state.

Four policies, shared by :class:`InvokerPool` (the lightweight counting
view) and :class:`repro.cluster.Cluster` (real hosts on the invoke path):

* ``round-robin``       — spread blindly;
* ``least-loaded``      — spread by instantaneous load;
* ``hash``              — home invoker per function (OpenWhisk's default),
                          falling over to the next node when the home is
                          full;
* ``snapshot-locality`` — prefer nodes where the function's state (snapshot
                          image or warm sandbox) is already resident,
                          falling back to the hash home so the first
                          request seeds locality deterministically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import NoHostAvailableError, PlatformError

POLICY_ROUND_ROBIN = "round-robin"
POLICY_LEAST_LOADED = "least-loaded"
POLICY_HASH = "hash"
POLICY_SNAPSHOT_LOCALITY = "snapshot-locality"

POLICIES = (POLICY_ROUND_ROBIN, POLICY_LEAST_LOADED, POLICY_HASH,
            POLICY_SNAPSHOT_LOCALITY)
_POLICIES = POLICIES  # backward-compatible alias


def home_index(function: str, n_nodes: int) -> int:
    """The function's home node: a stable hash of its name (OpenWhisk)."""
    digest = hashlib.sha256(function.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % n_nodes


def select_node(nodes: Sequence, policy: str, function: str,
                rr_cursor: int = 0,
                locality: Optional[Callable[[object], bool]] = None
                ) -> Tuple[object, int]:
    """Pick a node for one request; returns ``(node, new_rr_cursor)``.

    *nodes* is any sequence of objects exposing ``node_id``, ``active``
    and ``has_room`` (both :class:`InvokerNode` and
    :class:`repro.cluster.Host` qualify).  *locality* is an optional
    predicate marking nodes where the function's state is already
    resident; only the ``snapshot-locality`` policy consults it.  Raises
    :class:`NoHostAvailableError` (a :class:`PlatformError`) when every
    node is at capacity or down.
    """
    if policy not in POLICIES:
        raise PlatformError(f"unknown scheduling policy {policy!r}")
    if not nodes:
        raise PlatformError("cannot place a request on zero nodes")

    if policy == POLICY_ROUND_ROBIN:
        for _ in range(len(nodes)):
            node = nodes[rr_cursor]
            rr_cursor = (rr_cursor + 1) % len(nodes)
            if node.has_room:
                return node, rr_cursor
        raise NoHostAvailableError("all invokers at capacity")

    if policy == POLICY_LEAST_LOADED:
        candidates = [node for node in nodes if node.has_room]
        if not candidates:
            raise NoHostAvailableError("all invokers at capacity")
        return min(candidates,
                   key=lambda node: (node.active, node.node_id)), rr_cursor

    if policy == POLICY_SNAPSHOT_LOCALITY and locality is not None:
        preferred = [node for node in nodes
                     if node.has_room and locality(node)]
        if preferred:
            # Deterministic: least-loaded among the state-resident nodes.
            return min(preferred,
                       key=lambda node: (node.active, node.node_id)), \
                rr_cursor
        # No resident node has room: fall through to the hash home so the
        # first request (and capacity overflow) seeds locality
        # deterministically.

    # hash (and snapshot-locality fallback): home node, then linear probe.
    home = home_index(function, len(nodes))
    for offset in range(len(nodes)):
        node = nodes[(home + offset) % len(nodes)]
        if node.has_room:
            return node, rr_cursor
    raise NoHostAvailableError("all invokers at capacity")


@dataclass
class InvokerNode:
    """One backend server running sandboxes."""

    node_id: int
    capacity: int = 16            # concurrent sandboxes it can host
    active: int = 0
    assigned_total: int = 0
    per_function: Dict[str, int] = field(default_factory=dict)

    @property
    def has_room(self) -> bool:
        return self.active < self.capacity

    def assign(self, function: str) -> None:
        """Count one request onto this node; errors when full."""
        if not self.has_room:
            raise PlatformError(
                f"invoker{self.node_id} over capacity "
                f"({self.active}/{self.capacity})")
        self.active += 1
        self.assigned_total += 1
        self.per_function[function] = \
            self.per_function.get(function, 0) + 1

    def release(self) -> None:
        """Return a slot after the invocation finished."""
        if self.active <= 0:
            raise PlatformError(
                f"invoker{self.node_id} released below zero")
        self.active -= 1


class InvokerPool:
    """The controller's view of the invokers, with a pick policy."""

    def __init__(self, nodes: int = 4, capacity_per_node: int = 16,
                 policy: str = POLICY_HASH) -> None:
        if nodes < 1:
            raise PlatformError(f"need >= 1 invoker, got {nodes}")
        if policy not in POLICIES:
            raise PlatformError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self.nodes: List[InvokerNode] = [
            InvokerNode(node_id=index, capacity=capacity_per_node)
            for index in range(nodes)]
        self._rr_next = 0
        self.rejected_assigns = 0   # select/assign capacity races absorbed

    # -- policy ---------------------------------------------------------------
    def pick(self, function: str,
             locality: Optional[Callable[[InvokerNode], bool]] = None
             ) -> InvokerNode:
        """Choose (and assign to) an invoker for one request.

        ``select_node`` and ``assign`` are two steps, and the *locality*
        callback (or any re-entrant controller logic) can admit work in
        between — so a selected node may be full by the time we assign.
        That race is a queueable "no room" event, not a gateway crash:
        re-select among the remaining nodes and raise
        :class:`NoHostAvailableError` only when every node is full.
        """
        for _ in range(len(self.nodes)):
            node, self._rr_next = select_node(
                self.nodes, self.policy, function, self._rr_next, locality)
            try:
                node.assign(function)
                return node
            except PlatformError:
                self.rejected_assigns += 1
        raise NoHostAvailableError(
            "all invokers at capacity (assign raced with select)")

    def _home_index(self, function: str) -> int:
        return home_index(function, len(self.nodes))

    # -- stats -----------------------------------------------------------------
    def total_active(self) -> int:
        """Requests currently running across all nodes."""
        return sum(node.active for node in self.nodes)

    def load_spread(self) -> float:
        """Max-min assigned_total across nodes (fairness measure)."""
        totals = [node.assigned_total for node in self.nodes]
        return max(totals) - min(totals)
