"""Adaptive keep-alive policies for the warm pool.

The paper leans on Shahrad et al. [48] ("Serverless in the Wild") for its
workload characterization; that same paper proposes the *hybrid
histogram policy*: track each function's inter-arrival times and pick the
keep-alive window per function — long enough to cover most next arrivals,
instead of one fixed fleet-wide window.

Two policies:

* :class:`FixedKeepAlive` — the deployed default (e.g. 10 minutes for
  everyone), §2.2's "defer termination for a certain period";
* :class:`HybridHistogramKeepAlive` — per-function inter-arrival histogram;
  the window is the given percentile of observed gaps (bounded), so rare
  functions stop holding memory they will not use.

Used by the keep-alive ablation to show where snapshots still win: the
*best* keep-alive policy can only trade memory against cold starts, while
Fireworks avoids the trade entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import PlatformError


class KeepAlivePolicy:
    """Interface: observe arrivals, prescribe a keep-alive window."""

    def observe_arrival(self, function: str, now_ms: float) -> None:
        """Record one invocation arrival for *function*."""
        raise NotImplementedError

    def window_ms(self, function: str) -> float:
        """How long an idle sandbox of *function* should be kept."""
        raise NotImplementedError


@dataclass
class FixedKeepAlive(KeepAlivePolicy):
    """One fleet-wide window (the §2.2 status quo)."""

    fixed_window_ms: float = 600000.0

    def observe_arrival(self, function: str, now_ms: float) -> None:
        """Fixed policy learns nothing."""
        del function, now_ms

    def window_ms(self, function: str) -> float:
        """The same window for every function."""
        del function
        return self.fixed_window_ms


@dataclass
class HybridHistogramKeepAlive(KeepAlivePolicy):
    """Per-function inter-arrival histogram policy, after [48].

    The window is the ``coverage`` percentile of the observed inter-arrival
    gaps (clamped to [min, max]); until enough gaps are observed the policy
    falls back to the fleet default.
    """

    default_window_ms: float = 600000.0
    coverage: float = 0.90
    min_window_ms: float = 60000.0      # 1 minute floor
    max_window_ms: float = 1800000.0    # 30 minute cap
    warmup_samples: int = 3
    _last_arrival: Dict[str, float] = field(default_factory=dict)
    _gaps: Dict[str, List[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage <= 1.0:
            raise PlatformError(
                f"coverage must be in (0, 1], got {self.coverage}")

    def observe_arrival(self, function: str, now_ms: float) -> None:
        """Record the gap since this function's previous arrival."""
        last = self._last_arrival.get(function)
        if last is not None and now_ms > last:
            self._gaps.setdefault(function, []).append(now_ms - last)
        self._last_arrival[function] = now_ms

    def window_ms(self, function: str) -> float:
        """The coverage percentile of observed gaps, clamped."""
        gaps = self._gaps.get(function, [])
        if len(gaps) < self.warmup_samples:
            return self.default_window_ms
        ordered = sorted(gaps)
        index = min(len(ordered) - 1,
                    int(self.coverage * len(ordered)))
        return min(self.max_window_ms,
                   max(self.min_window_ms, ordered[index]))

    def observed_gap_count(self, function: str) -> int:
        """How many inter-arrival gaps the policy has seen."""
        return len(self._gaps.get(function, []))

    def gap_percentile_ms(self, function: str, quantile: float):
        """The *quantile* of observed inter-arrival gaps, or ``None``
        until ``warmup_samples`` gaps are available.

        The predictive autoscaler uses this as its next-arrival estimate:
        ``last_arrival + gap_percentile(q)`` is when the next request is
        expected (q=0.5, the median) or nearly certain (q→coverage).
        """
        gaps = self._gaps.get(function, [])
        if len(gaps) < self.warmup_samples:
            return None
        ordered = sorted(gaps)
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[index]

    def last_arrival_ms(self, function: str):
        """When *function* last arrived, or ``None`` if never seen."""
        return self._last_arrival.get(function)
