"""OpenWhisk: the container-based baseline platform (Table 1, row 2).

Cold start pays container creation plus OpenWhisk's heavy initialization
(authentication, message-queue setup — §5.2.1).  After an invocation the
container stays alive for a keep-alive window; a warm start only pays
routing.  Because the *same runtime process* serves warm invocations, V8 JIT
state survives between them (§5.1: OpenWhisk warm = previously invoked).

OpenWhisk is the only baseline that can execute chains of functions (§5.3).

Warm containers live on a *specific host* of the cluster (Figure 1's
backend servers), so the placement policy decides how often requests
actually find them: hashing each function to a home host concentrates
warm state, round-robin sprays requests past it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.platforms.base import (MODE_AUTO, MODE_COLD, MODE_WARM,
                                  ServerlessPlatform)
from repro.platforms.keepalive import FixedKeepAlive, KeepAlivePolicy
from repro.platforms.pooling import WarmEntry, WarmPool, require_warm
from repro.runtime import make_runtime
from repro.sandbox.container import Container
from repro.sandbox.worker import Worker
from repro.workloads.base import FunctionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.host import Host


class OpenWhiskPlatform(ServerlessPlatform):
    """Apache OpenWhisk on Kubernetes (v20.11 in the paper)."""

    name = "openwhisk"
    isolation_label = "Medium (container)"
    performance_label = "Low (no optimization)"
    memory_label = "Low (pre-launching)"
    supports_chains = True

    def __init__(self, *args,
                 keepalive_policy: Optional[KeepAlivePolicy] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.keepalive = keepalive_policy or FixedKeepAlive(
            self.params.control_plane.warm_keepalive_ms)
        self.cold_starts = 0
        self.warm_starts = 0

    @property
    def pool(self) -> WarmPool:
        """Host 0's warm pool (the only pool on a single-host cluster)."""
        return self.cluster.hosts[0].pool

    # -- backend hooks -----------------------------------------------------------
    def _acquire_worker(self, spec: FunctionSpec, mode: str, host: Host):
        self.keepalive.observe_arrival(spec.name, self.sim.now)
        if mode in (MODE_AUTO, MODE_WARM):
            entry = host.pool.take(spec.name, self.sim.now)
            if mode == MODE_WARM:
                entry = require_warm(entry, spec.name, self.name)
            if entry is not None:
                # Warm path: the container and its runtime are still alive;
                # only OpenWhisk bookkeeping stands between us and the code.
                with self.sim.tracer.span("warm-route"):
                    yield self.sim.timeout(
                        self.params.control_plane.openwhisk_warm_route_ms)
                self.warm_starts += 1
                return entry.worker, MODE_WARM, 0.0
        self._reap_expired(host)
        worker = Worker(self.sim,
                        Container(self.sim, self.params, host.memory,
                                  spec.language),
                        make_runtime(self.sim, self.params, spec.language))
        yield from worker.cold_start(spec.app)
        self.cold_starts += 1
        return worker, MODE_COLD, 0.0

    def _release_worker(self, spec: FunctionSpec, worker: Worker,
                        host: Host):
        # Keep the container alive for the (possibly per-function,
        # policy-decided) keep-alive window, on the host that ran it.
        window = self.keepalive.window_ms(spec.name)
        host.pool.add(spec.name, WarmEntry(
            worker, self.sim.now + window, paused=False))
        return
        yield  # pragma: no cover

    # -- autoscaler hook ---------------------------------------------------------
    def provision_warm_on(self, spec: FunctionSpec, host: Host):
        """Pre-boot one container on *host*, off the critical path: the
        next request finds it warm and pays only the warm route."""
        worker = Worker(self.sim,
                        Container(self.sim, self.params, host.memory,
                                  spec.language),
                        make_runtime(self.sim, self.params, spec.language))
        yield from worker.cold_start(spec.app)
        return WarmEntry(worker, float("inf"), paused=False)

    # -- housekeeping ----------------------------------------------------------------
    def _reap_expired(self, host: Host) -> None:
        """Tear down keep-alive-expired containers in the background."""
        for entry in host.pool.drain_expired():
            self.sim.process(entry.worker.stop(),
                             name=f"reap:{entry.worker.sandbox.name}")

    def reap_idle(self) -> int:
        """Periodic reaper: sweep every host's pools and tear down expired
        containers now (a real OpenWhisk runs this on a timer).  Returns
        how many containers were reclaimed."""
        reclaimed = 0
        for host in self.cluster.hosts:
            host.pool.expire_all(self.sim.now)
            expired = host.pool.drain_expired()
            for entry in expired:
                self.sim.process(entry.worker.stop(),
                                 name=f"reap:{entry.worker.sandbox.name}")
            reclaimed += len(expired)
        return reclaimed
