"""OpenWhisk: the container-based baseline platform (Table 1, row 2).

Cold start pays container creation plus OpenWhisk's heavy initialization
(authentication, message-queue setup — §5.2.1).  After an invocation the
container stays alive for a keep-alive window; a warm start only pays
routing.  Because the *same runtime process* serves warm invocations, V8 JIT
state survives between them (§5.1: OpenWhisk warm = previously invoked).

OpenWhisk is the only baseline that can execute chains of functions (§5.3).

Optionally the platform schedules across an :class:`InvokerPool` (Figure 1's
backend servers): warm containers then live on a *specific* invoker, so the
scheduling policy decides how often requests actually find them.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.platforms.base import (MODE_AUTO, MODE_COLD, MODE_WARM,
                                  ServerlessPlatform)
from repro.platforms.keepalive import FixedKeepAlive, KeepAlivePolicy
from repro.platforms.pooling import WarmEntry, WarmPool, require_warm
from repro.platforms.scheduler import InvokerNode, InvokerPool
from repro.runtime import make_runtime
from repro.sandbox.container import Container
from repro.sandbox.worker import Worker
from repro.workloads.base import FunctionSpec


class OpenWhiskPlatform(ServerlessPlatform):
    """Apache OpenWhisk on Kubernetes (v20.11 in the paper)."""

    name = "openwhisk"
    isolation_label = "Medium (container)"
    performance_label = "Low (no optimization)"
    memory_label = "Low (pre-launching)"
    supports_chains = True

    def __init__(self, *args, invokers: Optional[InvokerPool] = None,
                 keepalive_policy: Optional[KeepAlivePolicy] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.pool = WarmPool()
        self.invokers = invokers
        self.keepalive = keepalive_policy or FixedKeepAlive(
            self.params.control_plane.warm_keepalive_ms)
        self.cold_starts = 0
        self.warm_starts = 0
        self._worker_nodes: Dict[int, InvokerNode] = {}

    # -- invoker-aware pooling ----------------------------------------------------
    def _pool_key(self, spec: FunctionSpec,
                  node: Optional[InvokerNode]) -> str:
        # Warm containers are node-local when a pool of invokers exists.
        if node is None:
            return spec.name
        return f"invoker{node.node_id}:{spec.name}"

    # -- backend hooks -----------------------------------------------------------
    def _acquire_worker(self, spec: FunctionSpec, mode: str):
        self.keepalive.observe_arrival(spec.name, self.sim.now)
        node = self.invokers.pick(spec.name) if self.invokers else None
        key = self._pool_key(spec, node)
        if mode in (MODE_AUTO, MODE_WARM):
            entry = self.pool.take(key, self.sim.now)
            if mode == MODE_WARM:
                entry = require_warm(entry, spec.name, self.name)
            if entry is not None:
                # Warm path: the container and its runtime are still alive;
                # only OpenWhisk bookkeeping stands between us and the code.
                with self.sim.tracer.span("warm-route"):
                    yield self.sim.timeout(
                        self.params.control_plane.openwhisk_warm_route_ms)
                self.warm_starts += 1
                self._note_node(entry.worker, node)
                return entry.worker, MODE_WARM, 0.0
        self._reap_expired()
        worker = Worker(self.sim,
                        Container(self.sim, self.params, self.host_memory,
                                  spec.language),
                        make_runtime(self.sim, self.params, spec.language))
        yield from worker.cold_start(spec.app)
        self.cold_starts += 1
        self._note_node(worker, node)
        return worker, MODE_COLD, 0.0

    def _release_worker(self, spec: FunctionSpec, worker: Worker):
        node = self._worker_nodes.pop(id(worker), None)
        if node is not None:
            node.release()
        # Keep the container alive for the (possibly per-function,
        # policy-decided) keep-alive window, on the node that hosts it.
        window = self.keepalive.window_ms(spec.name)
        self.pool.add(self._pool_key(spec, node), WarmEntry(
            worker, self.sim.now + window, paused=False))
        return
        yield  # pragma: no cover

    # -- housekeeping ----------------------------------------------------------------
    def _note_node(self, worker: Worker,
                   node: Optional[InvokerNode]) -> None:
        if node is not None:
            self._worker_nodes[id(worker)] = node

    def _reap_expired(self) -> None:
        """Tear down keep-alive-expired containers in the background."""
        for entry in self.pool.drain_expired():
            self.sim.process(entry.worker.stop(),
                             name=f"reap:{entry.worker.sandbox.name}")

    def reap_idle(self) -> int:
        """Periodic reaper: sweep all pools and tear down expired
        containers now (a real OpenWhisk runs this on a timer).  Returns
        how many containers were reclaimed."""
        self.pool.expire_all(self.sim.now)
        expired = self.pool.drain_expired()
        for entry in expired:
            self.sim.process(entry.worker.stop(),
                             name=f"reap:{entry.worker.sandbox.name}")
        return len(expired)
