"""Serverless platforms: the control plane and the baseline backends."""

from repro.platforms.base import (MODE_AUTO, MODE_COLD, MODE_SNAPSHOT,
                                  MODE_WARM, InvocationRecord,
                                  ServerlessPlatform)
from repro.platforms.bus import MessageBus, Record, Topic
from repro.platforms.catalyzer import CatalyzerPlatform
from repro.platforms.gateway import (Activation, ApiGateway,
                                     AuthenticationError,
                                     PayloadTooLargeError)
from repro.platforms.firecracker import (FirecrackerPlatform,
                                         FirecrackerSnapshotPlatform)
from repro.platforms.gvisor_platform import GVisorPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.platforms.pooling import WarmEntry, WarmPool

__all__ = [
    "Activation",
    "ApiGateway",
    "AuthenticationError",
    "CatalyzerPlatform",
    "FirecrackerPlatform",
    "FirecrackerSnapshotPlatform",
    "GVisorPlatform",
    "InvocationRecord",
    "MODE_AUTO",
    "MODE_COLD",
    "MODE_SNAPSHOT",
    "MODE_WARM",
    "MessageBus",
    "OpenWhiskPlatform",
    "PayloadTooLargeError",
    "Record",
    "ServerlessPlatform",
    "Topic",
    "WarmEntry",
    "WarmPool",
]
