"""Fireworks reproduction: a fast, efficient, and safe serverless framework
using VM-level post-JIT snapshots (Shin, Kim, Min — EuroSys 2022).

The public API, by layer:

* :mod:`repro.core`      — the Fireworks platform (annotator, installer,
  snapshotter, parameter passer, microVM manager).
* :mod:`repro.platforms` — the baselines: OpenWhisk, Firecracker (plain and
  snapshot), gVisor, plus the shared control plane.
* :mod:`repro.workloads` — FaaSdom and ServerlessBench workloads.
* :mod:`repro.bench`     — one driver per paper figure/table.
* Substrates: :mod:`repro.sim` (event simulation), :mod:`repro.mem`
  (CoW pages/PSS), :mod:`repro.net` (namespaces/NAT), :mod:`repro.snapshot`,
  :mod:`repro.runtime` (V8/CPython JIT models), :mod:`repro.storage`,
  :mod:`repro.db` (CouchDB substrate).

Quickstart::

    from repro import FireworksPlatform, Simulation, default_parameters
    from repro.workloads import faasdom_spec

    sim = Simulation()
    fireworks = FireworksPlatform(sim, default_parameters())
    spec = faasdom_spec("faas-fact", "python")
    sim.run(sim.process(fireworks.install(spec)))
    record = sim.run(sim.process(fireworks.invoke(spec.name)))
    print(record.startup_ms, record.exec_ms)
"""

from repro.config import CalibratedParameters, default_parameters
from repro.core.fireworks import FireworksPlatform
from repro.errors import ReproError
from repro.platforms import (FirecrackerPlatform,
                             FirecrackerSnapshotPlatform, GVisorPlatform,
                             InvocationRecord, OpenWhiskPlatform)
from repro.sim import Simulation

__version__ = "1.0.0"

__all__ = [
    "CalibratedParameters",
    "FirecrackerPlatform",
    "FirecrackerSnapshotPlatform",
    "FireworksPlatform",
    "GVisorPlatform",
    "InvocationRecord",
    "OpenWhiskPlatform",
    "ReproError",
    "Simulation",
    "default_parameters",
    "__version__",
]
