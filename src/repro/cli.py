"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures``                 — list every regenerable table/figure;
* ``run <figure|scenario>``   — regenerate one figure (e.g. ``run fig6``)
                                or run a named scenario from the library
                                (e.g. ``run paper-repro``);
* ``scenarios``               — list the named scenarios under
                                ``scenarios/``;
* ``serve [--host H] [--port P]`` — the experiment REST service: submit
                                scenarios over HTTP, stream progress,
                                fetch results/figures/traces
                                (see ``docs/service.md``);
* ``figure <id...> [--jobs N]`` — regenerate many (or ``all``) through the
                                parallel engine and the result cache;
* ``annotate <file>``         — run the §3.2 code annotator on a handler;
* ``burst [-n N] [-c CORES]`` — the burst-storm extension experiment;
* ``cluster [--hosts N] [--policy P]`` — placement policies across a
                                multi-host cluster (extension);
* ``chaos [--crash-at-ms T] [--crash-host H]`` — replay the cluster trace
                                under a host-failure fault plan and report
                                availability / p99 / recovery (extension);
* ``load [--platform P] [--mode M]`` — open-loop Azure-like traffic through
                                the admission controller + warm-pool
                                autoscaler; p50/p99, queue wait, shed rate,
                                cold-start share, warm memory (extension);
* ``search [--smoke] [--json]`` — offline Pareto policy search: sweep DSL
                                policy documents across placement /
                                keep-alive / autoscale on the open-loop
                                trace; seeded, byte-deterministic
                                frontier over (p99, warm memory, shed
                                rate) (extension);
* ``trace <target>``          — re-run one figure's invocations and export
                                one invocation's span tree (Chrome
                                ``trace_event`` JSON or a text tree);
* ``profile <experiment>``    — cProfile one experiment shard and print
                                the top-N hot frames (the workflow behind
                                ``docs/performance.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.concurrency import run_burst_comparison
from repro.bench.render import render_experiment_text, render_run_text

FIGURES = ("table1", "table2", "snapshot-creation", "fig6", "fig7", "fig9",
           "fig10", "fig11", "fig12", "scorecard")

#: Extension experiments only the ``figure`` command exposes.
EXTENSIONS = ("burst", "load-sweep", "sensitivity", "ablations", "policies",
              "keepalive", "cluster", "chaos", "load", "chains", "restore",
              "search", "search-smoke")


def _run_figure(name: str, chart: bool = False) -> None:
    """``run``: regenerate one figure in-process (engine, no cache)."""
    from repro.bench.engine import run_experiments
    outcome = run_experiments([name], use_cache=False)
    print(render_experiment_text(name, outcome.results[name], chart),
          end="")


def _run_scenario(scenario, jobs: Optional[int], no_cache: bool,
                  cache_dir: Optional[str], chart: bool) -> None:
    """``run <scenario>``: a named scenario through the engine + cache.

    The rendered output is byte-identical to what the experiment service
    returns from ``GET /experiments/{id}/figures`` for the same scenario —
    CLI and API are two fronts over one engine path.
    """
    from repro.bench.engine import run_experiments
    outcome = run_experiments(
        list(scenario.experiments), seed=scenario.seed,
        jobs=jobs if jobs is not None else scenario.jobs,
        use_cache=not no_cache, cache_dir=cache_dir)
    print(render_run_text(outcome.results, chart), end="")
    print(outcome.stats.summary(), file=sys.stderr)


def _cmd_run(target: str, jobs: Optional[int], no_cache: bool,
             cache_dir: Optional[str], chart: bool) -> int:
    """``run``: one figure id or one named scenario from the library."""
    from repro.errors import ValidationError
    from repro.serve.scenarios import load_scenario_library
    if target in FIGURES:
        _run_figure(target, chart=chart)
        return 0
    try:
        library = load_scenario_library()
    except ValidationError as exc:
        # A missing/broken library must not turn 'run <typo>' into a
        # traceback: report the library problem itself, exit 2.
        print(f"error: scenario library is broken: {exc}", file=sys.stderr)
        return 2
    if target in library:
        _run_scenario(library[target], jobs, no_cache, cache_dir, chart)
        return 0
    print(f"error: unknown figure or scenario {target!r}\n"
          f"figures: {', '.join(FIGURES)}\n"
          f"scenarios: {', '.join(library)}", file=sys.stderr)
    return 2


def _cmd_figure(figures: List[str], jobs: int, no_cache: bool,
                cache_dir: str, chart: bool) -> None:
    """``figure``: many experiments through the parallel engine + cache."""
    from repro.bench.engine import run_experiments
    outcome = run_experiments(figures, jobs=jobs, use_cache=not no_cache,
                              cache_dir=cache_dir)
    print(render_run_text(outcome.results, chart), end="")
    print(outcome.stats.summary(), file=sys.stderr)


def _cmd_annotate(path: str) -> None:
    from repro.core import annotate
    source_path = Path(path)
    language = "nodejs" if source_path.suffix == ".js" else "python"
    result = annotate(source_path.read_text(), language,
                      service_name=source_path.stem)
    print(result.annotated)


def _cmd_burst(requests: int, cores: int) -> None:
    results = run_burst_comparison(requests=requests, cores=cores)
    for result in results.values():
        print(result.as_line())


def _cmd_cluster(hosts: int, functions: int, duration_ms: float,
                 seed: int, policy: str) -> None:
    """``cluster``: placement policies across a multi-host cluster."""
    from repro.bench.cluster import run_cluster_scheduling
    from repro.policy import default_registry
    placements = default_registry().names("placement")
    selected = placements if policy == "all" else (policy,)
    outcomes = run_cluster_scheduling(
        n_hosts=hosts, n_functions=functions, duration_ms=duration_ms,
        seed=seed, policies=selected)
    for outcome in outcomes.values():
        print(outcome.as_line())


def _cmd_chaos(hosts: int, functions: int, duration_ms: float, seed: int,
               crash_at_ms: float, crash_host: Optional[int],
               policy: str) -> None:
    """``chaos``: the cluster trace under a host-failure fault plan."""
    from repro.bench.chaos import DEFAULT_ROWS, run_chaos_experiment
    rows = (DEFAULT_ROWS if policy == "all"
            else tuple(row for row in DEFAULT_ROWS if row[0] == policy))
    outcomes = run_chaos_experiment(
        n_hosts=hosts, n_functions=functions, duration_ms=duration_ms,
        seed=seed, crash_at_ms=crash_at_ms, crash_host=crash_host,
        rows=rows)
    for outcome in outcomes.values():
        print(outcome.as_line())


def _cmd_restore(seed: int) -> None:
    """``restore``: lazy restore + streaming transfer figure, serially."""
    from repro.bench.restore import render_restore_figure, run_restore_figure
    results = run_restore_figure(seed=seed)
    for line in render_restore_figure(results):
        print(line)


#: ``trace`` targets: which invocation set to re-run.
TRACE_TARGETS = ("fig6", "fig7", "chain")
_TRACE_LANGUAGE = {"fig6": "nodejs", "fig7": "python"}


def _trace_records(target: str, benchmark: str) -> list:
    """Re-run one target's invocations; returns their records in order.

    For ``fig6``/``fig7`` the order is: fireworks, then cold+warm for
    openwhisk, gvisor and firecracker — index it with ``--invocation``.
    ``chain`` runs the Alexa-skills chain, one record per skill.
    """
    from repro.bench.harness import (cold_and_warm, fireworks_invocation,
                                     fresh_platform, install_chain,
                                     invoke_once)
    if target == "chain":
        from repro.core import FireworksPlatform
        from repro.workloads import ALEXA_SKILLS, alexa_skills_chain
        platform = fresh_platform(FireworksPlatform)
        chain = alexa_skills_chain()
        install_chain(platform, chain)
        return [invoke_once(platform, chain.entry, payload={"skill": skill})
                for skill in ALEXA_SKILLS]

    from repro.platforms.firecracker import FirecrackerPlatform
    from repro.platforms.gvisor_platform import GVisorPlatform
    from repro.platforms.openwhisk import OpenWhiskPlatform
    from repro.workloads.faasdom import faasdom_spec
    spec = faasdom_spec(benchmark, _TRACE_LANGUAGE[target])
    records = [fireworks_invocation(spec)]
    for platform_cls in (OpenWhiskPlatform, GVisorPlatform,
                         FirecrackerPlatform):
        records.extend(cold_and_warm(platform_cls, spec))
    return records


def _cmd_load(platform: str, mode: str, hosts: int, functions: int,
              duration_ms: float, seed: int,
              popular_interarrival_ms: float, as_json: bool) -> None:
    """``load``: the open-loop serving-layer experiment (extension)."""
    import json as json_module

    from repro.bench.load import (LOAD_MODES, LOAD_PLATFORMS,
                                  run_load_experiment)
    from repro.bench.serialization import encode_result
    platforms = tuple(LOAD_PLATFORMS) if platform == "all" else (platform,)
    modes = LOAD_MODES if mode == "all" else (mode,)
    outcomes = run_load_experiment(
        platforms=platforms, modes=modes, n_hosts=hosts,
        n_functions=functions, duration_ms=duration_ms, seed=seed,
        popular_interarrival_ms=popular_interarrival_ms)
    if as_json:
        payload = {f"{p}@{m}": encode_result(outcome)
                   for (p, m), outcome in outcomes.items()}
        print(json_module.dumps(payload, sort_keys=True,
                                separators=(",", ":")))
        return
    for outcome in outcomes.values():
        print(outcome.as_line())


def _cmd_search(seed: int, count: Optional[int], jobs: int, no_cache: bool,
                cache_dir: Optional[str], smoke: bool, as_json: bool,
                out: Optional[str]) -> None:
    """``search``: the offline Pareto policy search (extension).

    The default full search runs through the parallel engine (one shard
    per candidate, result-cached); ``--smoke`` and non-default
    ``--count`` run serially, since the engine's shard list is fixed at
    the default candidate count.
    """
    import json as json_module

    from repro.bench.search import (DEFAULT_CANDIDATES,
                                    render_search_figure, run_search)
    from repro.bench.serialization import encode_result
    if smoke or (count is not None and count != DEFAULT_CANDIDATES):
        result = run_search(seed=seed, count=count, smoke=smoke)
    else:
        from repro.bench.engine import DEFAULT_CACHE_DIR, run_experiments
        outcome = run_experiments(
            ["search"], seed=seed, jobs=jobs, use_cache=not no_cache,
            cache_dir=cache_dir or DEFAULT_CACHE_DIR)
        result = outcome.results["search"]
    payload = json_module.dumps(encode_result(result), sort_keys=True,
                                separators=(",", ":"))
    if out is not None:
        Path(out).write_text(payload + "\n", encoding="utf-8")
        print(f"wrote {out}", file=sys.stderr)
    if as_json:
        print(payload)
        return
    for line in render_search_figure(result):
        print(line)


def _cmd_trace(target: str, benchmark: str, invocation: int,
               output_format: str, out_path: Optional[str]) -> int:
    from repro.trace import render_tree, verify_invocation, write_trace_json

    records = _trace_records(target, benchmark)
    if not 0 <= invocation < len(records):
        print(f"error: --invocation must be in 0..{len(records) - 1} "
              f"for {target}", file=sys.stderr)
        return 1
    record = records[invocation]
    verify_invocation(record)
    root = record.span
    while root.parent is not None:  # export the whole trace, gateway-down
        root = root.parent

    if output_format == "tree":
        rendered = render_tree(root)
        if out_path:
            Path(out_path).write_text(rendered + "\n", encoding="utf-8")
            print(f"wrote {out_path}")
        else:
            print(rendered)
        return 0

    destination = out_path or f"{target}-inv{invocation}.trace.json"
    events = write_trace_json(root, destination)
    print(f"wrote {events} span events for {record.platform}/"
          f"{record.function} ({record.mode}) to {destination} "
          "(open in chrome://tracing)")
    return 0


def _cmd_profile(experiment: str, shard_key: Optional[str], top: int,
                 sort: str) -> int:
    """``profile``: cProfile one shard, print the hot frames.

    Shards are the natural profiling unit: each one builds its own
    simulation from a fixed seed, so the profile is deterministic work —
    no cache, no pool, no other shards mixed into the numbers.
    """
    import cProfile
    import pstats
    from repro.bench.engine import (_SHARD_FNS, DEFAULT_SEED,
                                    experiment_registry)
    from repro.config import default_parameters
    registry = experiment_registry()
    if experiment not in registry:
        print(f"error: unknown experiment {experiment!r}; known: "
              f"{', '.join(registry)}", file=sys.stderr)
        return 1
    definition = registry[experiment]
    if shard_key is None:
        shard = definition.shards[0]
    else:
        matching = [one for one in definition.shards if one.key == shard_key]
        if not matching:
            keys = ", ".join(one.key for one in definition.shards)
            print(f"error: {experiment} has no shard {shard_key!r}; "
                  f"shards: {keys}", file=sys.stderr)
            return 1
        shard = matching[0]

    params = default_parameters()
    profiler = cProfile.Profile()
    profiler.runcall(_SHARD_FNS[shard.fn], params, DEFAULT_SEED,
                     **shard.kwargs_dict())
    print(f"== profile: {experiment}/{shard.key} "
          f"(top {top} by {sort}) ==")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return 0


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: an integer >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for `python -m repro`."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fireworks (EuroSys '22) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list regenerable tables/figures")

    run_parser = sub.add_parser(
        "run", help="regenerate one table/figure, or run a named scenario")
    run_parser.add_argument(
        "figure", metavar="figure|scenario",
        help="a figure id ('repro figures') or a scenario name "
             "('repro scenarios')")
    run_parser.add_argument("--chart", action="store_true",
                            help="render stacked ASCII bars (fig6/7/9)")
    run_parser.add_argument(
        "-j", "--jobs", type=_positive_int, default=None,
        help="worker processes (scenario runs; default: the scenario's)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="skip the result cache (scenario runs)")
    run_parser.add_argument("--cache-dir", default=None,
                            help="result cache directory (scenario runs)")

    sub.add_parser("scenarios",
                   help="list the named scenarios under scenarios/")

    serve_parser = sub.add_parser(
        "serve",
        help="serve the experiment REST API (scenarios, runs, artifacts)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8177)
    serve_parser.add_argument(
        "-j", "--jobs", type=_positive_int, default=None,
        help="worker processes per run (default: each scenario's own)")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="run without the result cache")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="result cache directory "
                                   "(default .repro-cache)")

    figure_parser = sub.add_parser(
        "figure",
        help="regenerate figures through the parallel engine + cache")
    figure_parser.add_argument(
        "figures", nargs="+", metavar="figure",
        choices=FIGURES + EXTENSIONS + ("all",),
        help="experiment ids, or 'all' for the full suite")
    figure_parser.add_argument(
        "-j", "--jobs", type=_positive_int, default=1,
        help="worker processes for uncached shards (default 1)")
    figure_parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the result cache (neither read nor write)")
    figure_parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default .repro-cache)")
    figure_parser.add_argument("--chart", action="store_true",
                               help="render stacked ASCII bars (fig6/7/9)")

    annotate_parser = sub.add_parser(
        "annotate", help="annotate a handler file (Figure 3)")
    annotate_parser.add_argument("file")

    burst_parser = sub.add_parser(
        "burst", help="burst-storm extension experiment")
    burst_parser.add_argument("-n", "--requests", type=int, default=256)
    burst_parser.add_argument("-c", "--cores", type=int, default=64)

    from repro.policy import default_registry
    cluster_parser = sub.add_parser(
        "cluster",
        help="placement policies on a multi-host cluster (extension)")
    cluster_parser.add_argument("--hosts", type=_positive_int, default=4)
    cluster_parser.add_argument("--functions", type=_positive_int,
                                default=12)
    cluster_parser.add_argument("--duration-ms", type=float,
                                default=600_000.0)
    cluster_parser.add_argument("--seed", type=int, default=11)
    cluster_parser.add_argument(
        "--policy", default="all",
        choices=default_registry().names("placement") + ("all",))

    from repro.bench.chaos import DEFAULT_CRASH_AT_MS
    from repro.platforms.scheduler import (POLICY_ROUND_ROBIN,
                                           POLICY_SNAPSHOT_LOCALITY)
    chaos_parser = sub.add_parser(
        "chaos",
        help="cluster trace under a host-failure fault plan (extension)")
    chaos_parser.add_argument("--hosts", type=_positive_int, default=4)
    chaos_parser.add_argument("--functions", type=_positive_int, default=12)
    chaos_parser.add_argument("--duration-ms", type=float,
                              default=600_000.0)
    chaos_parser.add_argument("--seed", type=int, default=11)
    chaos_parser.add_argument("--crash-at-ms", type=float,
                              default=DEFAULT_CRASH_AT_MS)
    chaos_parser.add_argument(
        "--crash-host", type=int, default=None,
        help="host to crash (default: the busiest home host)")
    chaos_parser.add_argument(
        "--policy", default="all",
        choices=(POLICY_ROUND_ROBIN, POLICY_SNAPSHOT_LOCALITY, "all"))

    from repro.bench.load import (DEFAULT_DURATION_MS, DEFAULT_N_FUNCTIONS,
                                  DEFAULT_N_HOSTS,
                                  DEFAULT_POPULAR_INTERARRIVAL_MS,
                                  DEFAULT_SEED, LOAD_MODES, LOAD_PLATFORMS)
    load_parser = sub.add_parser(
        "load",
        help="open-loop serving-layer load experiment (extension)")
    load_parser.add_argument("--platform", default="all",
                             choices=tuple(LOAD_PLATFORMS) + ("all",))
    load_parser.add_argument("--mode", default="all",
                             choices=LOAD_MODES + ("all",),
                             help="warm-pool scaling policy")
    load_parser.add_argument("--hosts", type=_positive_int,
                             default=DEFAULT_N_HOSTS)
    load_parser.add_argument("--functions", type=_positive_int,
                             default=DEFAULT_N_FUNCTIONS)
    load_parser.add_argument("--duration-ms", type=float,
                             default=DEFAULT_DURATION_MS)
    load_parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    load_parser.add_argument(
        "--popular-interarrival-ms", type=float,
        default=DEFAULT_POPULAR_INTERARRIVAL_MS,
        help="mean arrival gap of a popular function at modulation "
             "midline (smaller = heavier load)")
    load_parser.add_argument(
        "--json", action="store_true",
        help="emit canonical JSON (byte-identical across equal seeds)")

    restore_parser = sub.add_parser(
        "restore",
        help="lazy restore + streaming transfer figure (extension)")
    restore_parser.add_argument("--seed", type=int, default=2022)

    from repro.bench.search import DEFAULT_SEED as SEARCH_SEED
    search_parser = sub.add_parser(
        "search",
        help="offline Pareto policy search over DSL documents (extension)")
    search_parser.add_argument("--seed", type=int, default=SEARCH_SEED)
    search_parser.add_argument(
        "--count", type=_positive_int, default=None,
        help="candidate count (default 24; non-default runs serially)")
    search_parser.add_argument("-j", "--jobs", type=_positive_int, default=1,
                               help="worker processes (engine path only)")
    search_parser.add_argument("--no-cache", action="store_true",
                               help="skip the result cache")
    search_parser.add_argument("--cache-dir", default=None,
                               help="result cache directory")
    search_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny serial search for CI (seconds; byte-deterministic)")
    search_parser.add_argument(
        "--json", action="store_true",
        help="emit canonical JSON (byte-identical across equal seeds)")
    search_parser.add_argument(
        "-o", "--out", default=None,
        help="also write the canonical JSON artifact to this path")

    trace_parser = sub.add_parser(
        "trace", help="export one invocation's span tree")
    trace_parser.add_argument("target", choices=TRACE_TARGETS,
                              help="which invocation set to re-run")
    from repro.workloads.faasdom import BENCHMARK_NAMES
    trace_parser.add_argument(
        "--benchmark", default="faas-fact", choices=BENCHMARK_NAMES,
        help="FaaSdom benchmark for fig6/fig7 (default faas-fact)")
    trace_parser.add_argument(
        "--invocation", type=int, default=0, metavar="N",
        help="which record to export (0 = fireworks for fig6/fig7)")
    trace_parser.add_argument("--format", dest="output_format",
                              choices=("chrome", "tree"), default="chrome")
    trace_parser.add_argument("-o", "--output", default=None,
                              help="output path (default "
                                   "<target>-inv<N>.trace.json)")

    profile_parser = sub.add_parser(
        "profile", help="cProfile one experiment shard (hot-frame report)")
    profile_parser.add_argument(
        "experiment", help="experiment id (same ids as 'figure')")
    profile_parser.add_argument(
        "--shard", default=None,
        help="shard key within the experiment (default: its first shard)")
    profile_parser.add_argument("--top", type=_positive_int, default=25,
                                help="how many frames to print (default 25)")
    profile_parser.add_argument(
        "--sort", choices=("tottime", "cumtime", "calls"),
        default="tottime", help="pstats sort key (default tottime)")

    export_parser = sub.add_parser(
        "export", help="regenerate figures and write CSVs")
    export_parser.add_argument("directory")
    export_parser.add_argument("--only", nargs="*", default=None,
                               choices=["fig6", "fig7", "fig9", "fig10",
                                        "fig11", "fig12"])

    report_parser = sub.add_parser(
        "report", help="the full evaluation as one document (~30 s)")
    report_parser.add_argument("--no-extensions", action="store_true")

    sub.add_parser("validate",
                   help="validate the calibrated default parameters")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        for name in FIGURES:
            print(name)
    elif args.command == "run":
        return _cmd_run(args.figure, jobs=args.jobs, no_cache=args.no_cache,
                        cache_dir=args.cache_dir, chart=args.chart)
    elif args.command == "scenarios":
        from repro.errors import ValidationError
        from repro.serve.scenarios import load_scenario_library
        try:
            library = load_scenario_library()
        except ValidationError as exc:
            print(f"error: scenario library is broken: {exc}",
                  file=sys.stderr)
            return 2
        for scenario in library.values():
            print(f"{scenario.name:<22} {scenario.title}")
    elif args.command == "serve":
        from repro.serve import serve_forever
        return serve_forever(host=args.host, port=args.port, jobs=args.jobs,
                             use_cache=not args.no_cache,
                             cache_dir=args.cache_dir)
    elif args.command == "figure":
        from repro.bench.engine import DEFAULT_CACHE_DIR
        _cmd_figure(args.figures, jobs=args.jobs, no_cache=args.no_cache,
                    cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
                    chart=args.chart)
    elif args.command == "annotate":
        _cmd_annotate(args.file)
    elif args.command == "burst":
        _cmd_burst(args.requests, args.cores)
    elif args.command == "cluster":
        _cmd_cluster(args.hosts, args.functions, args.duration_ms,
                     args.seed, args.policy)
    elif args.command == "chaos":
        _cmd_chaos(args.hosts, args.functions, args.duration_ms, args.seed,
                   args.crash_at_ms, args.crash_host, args.policy)
    elif args.command == "load":
        _cmd_load(args.platform, args.mode, args.hosts, args.functions,
                  args.duration_ms, args.seed,
                  args.popular_interarrival_ms, args.json)
    elif args.command == "restore":
        _cmd_restore(args.seed)
    elif args.command == "search":
        _cmd_search(args.seed, args.count, args.jobs, args.no_cache,
                    args.cache_dir, args.smoke, args.json, args.out)
    elif args.command == "trace":
        return _cmd_trace(args.target, args.benchmark, args.invocation,
                          args.output_format, args.output)
    elif args.command == "profile":
        return _cmd_profile(args.experiment, args.shard, args.top,
                            args.sort)
    elif args.command == "export":
        from repro.bench.export import export_all
        written = export_all(args.directory, figures=args.only)
        for name in written:
            print(f"wrote {args.directory}/{name}")
    elif args.command == "report":
        from repro.bench.report import full_report
        print(full_report(
            include_extensions=not args.no_extensions))
    elif args.command == "validate":
        from repro.config import default_parameters
        from repro.validation import validate
        problems = validate(default_parameters())
        if problems:
            for problem in problems:
                print(f"PROBLEM: {problem}")
            return 1
        print("calibrated parameters: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
