"""Deterministic fault injection for robustness testing.

A :class:`FaultInjector` is armed with a budget of failures per (kind, key)
and consulted by the components that can fail in a real deployment:

* ``restore``     — the snapshot image fails integrity checks on load
                    (torn write, bit rot);
* ``param-fetch`` — the guest's kafkacat consume fails (broker hiccup);
* ``db``          — a CouchDB request times out.

Components raise the mapped exception when the injector says so; the
Fireworks control plane's recovery paths (regenerate the snapshot, retry the
fetch) are exercised by the fault-injection tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ReproError


class InjectedFault(ReproError):
    """An injected failure, carrying its kind and key."""

    def __init__(self, kind: str, key: str) -> None:
        super().__init__(f"injected {kind} fault for {key!r}")
        self.kind = kind
        self.key = key


class SnapshotCorruptedError(InjectedFault):
    """The snapshot image failed its integrity check on restore."""

    def __init__(self, key: str) -> None:
        super().__init__("restore", key)


class FaultInjector:
    """Arms and fires deterministic failures."""

    def __init__(self) -> None:
        self._budgets: Dict[Tuple[str, str], int] = {}
        self.fired: Dict[Tuple[str, str], int] = {}

    def arm(self, kind: str, key: str, count: int = 1) -> None:
        """Make the next *count* operations of (kind, key) fail."""
        if count < 1:
            raise ReproError(f"fault count must be >= 1, got {count}")
        self._budgets[(kind, key)] = \
            self._budgets.get((kind, key), 0) + count

    def should_fail(self, kind: str, key: str) -> bool:
        """Consume one failure budget if armed; returns whether to fail."""
        slot = (kind, key)
        remaining = self._budgets.get(slot, 0)
        if remaining <= 0:
            return False
        self._budgets[slot] = remaining - 1
        self.fired[slot] = self.fired.get(slot, 0) + 1
        return True

    def check(self, kind: str, key: str) -> None:
        """Raise the mapped exception if a failure is armed."""
        if not self.should_fail(kind, key):
            return
        if kind == "restore":
            raise SnapshotCorruptedError(key)
        raise InjectedFault(kind, key)

    def armed(self, kind: str, key: str) -> int:
        """How many failures remain armed for (kind, key)."""
        return self._budgets.get((kind, key), 0)

    def reset(self) -> None:
        """Drop all armed budgets and fired counts.

        Experiments that repeat a run in-process (the parallel engine's
        uncached path, a bench replaying per policy) must reset — or build
        a fresh injector — per run, otherwise leftover budgets from run N
        fire during run N+1 and cached/uncached results disagree.
        """
        self._budgets.clear()
        self.fired.clear()
