"""The C#/.NET Ahead-Of-Time runtime model (extension).

§3.1: *"Fireworks's use of JIT is conceptually similar to Ahead-Of-Time
compilation (AOT) provided by some language runtimes (e.g., C#)"*, and §7:
AWS supports JIT only for pre-provisioned C#/.NET instances — whose JIT
"does not allow sharing of code or resources".

The model: AOT code is machine code from the first instruction (top-tier
throughput, no tier-up, no deopt), but the CLR launch and AOT binary load
are heavier than node/python, and — the key contrast with Fireworks —
nothing is shareable across instances without a VM-level snapshot.  The
AOT-vs-post-JIT ablation quantifies exactly that trade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import CalibratedParameters
from repro.errors import RuntimeModelError
from repro.runtime.interpreter import LanguageRuntime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class DotnetRuntime(LanguageRuntime):
    """A CLR process running an AOT-compiled function."""

    language = "dotnet"

    def __init__(self, sim: "Simulation",
                 params: CalibratedParameters) -> None:
        super().__init__(sim, params.runtime(self.language),
                         params.memory_layout(self.language))

    def force_jit_all(self):
        """AOT code cannot be (and need not be) JIT-annotated."""
        raise RuntimeModelError(
            ".NET AOT functions are compiled at build time; there is "
            "nothing for __fireworks_jit() to do — and no JIT state for a "
            "post-JIT snapshot to share (§7)")
        yield  # pragma: no cover
