"""Language runtime models: op streams, tiered JIT, Node.js and Python."""

from repro.runtime.interpreter import (AppCode, ExecBreakdown,
                                       ExternalHandlers, GuestFunction,
                                       LanguageRuntime)
from repro.runtime.jit import (INTERPRETED, OPTIMIZED, ComputeCost,
                               FunctionJitState, JitEngine)
from repro.runtime.dotnet import DotnetRuntime
from repro.runtime.nodejs import NodeJsRuntime
from repro.runtime.ops import (Compute, DbGet, DbPut, DiskRead, DiskWrite,
                               InvokeNext, NetRecv, NetSend, Op, Program,
                               Respond, program)
from repro.runtime.python_rt import PythonRuntime

__all__ = [
    "AppCode",
    "Compute",
    "ComputeCost",
    "DbGet",
    "DbPut",
    "DiskRead",
    "DiskWrite",
    "DotnetRuntime",
    "ExecBreakdown",
    "ExternalHandlers",
    "FunctionJitState",
    "GuestFunction",
    "INTERPRETED",
    "InvokeNext",
    "JitEngine",
    "LanguageRuntime",
    "NetRecv",
    "NetSend",
    "NodeJsRuntime",
    "OPTIMIZED",
    "Op",
    "Program",
    "PythonRuntime",
    "Respond",
    "program",
]


def make_runtime(sim, params, language):
    """Factory: the right runtime class for *language*."""
    if language == "nodejs":
        return NodeJsRuntime(sim, params)
    if language == "python":
        return PythonRuntime(sim, params)
    if language == "dotnet":
        return DotnetRuntime(sim, params)
    raise KeyError(f"unknown language {language!r}")
