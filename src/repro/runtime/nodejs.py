"""The Node.js (V8/TurboFan) runtime model.

V8 specifics the paper relies on:

* Ignition interprets bytecode; TurboFan tiers hot functions up *during*
  execution (``has_runtime_jit=True``), competing with the function for the
  single vCPU (§2.3).
* ``%OptimizeFunctionOnNextCall``-style hooks let Fireworks force compilation
  at install time (``annotation_jit=True``), observable via
  ``GetOptimizationStatus()`` (§5.5.1).
* V8 allocates JIT memory lazily and compactly ("a lighter V8" [55]), which
  is why Node post-JIT snapshots also *save* memory (Fig 12).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import CalibratedParameters
from repro.runtime.interpreter import LanguageRuntime
from repro.runtime.jit import OPTIMIZED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class NodeJsRuntime(LanguageRuntime):
    """A `node` process with the V8 tiering model."""

    language = "nodejs"

    def __init__(self, sim: "Simulation",
                 params: CalibratedParameters) -> None:
        super().__init__(sim, params.runtime(self.language),
                         params.memory_layout(self.language))

    def get_optimization_status(self, function: str) -> str:
        """Mimics V8's ``GetOptimizationStatus()`` (§5.5.1 methodology)."""
        state = self.jit.state(function)
        return "optimized" if state.tier == OPTIMIZED else "interpreted"
