"""The abstract operation stream executed by a serverless function.

A workload *program* is a sequence of ops.  Compute ops flow through the
language runtime's interpreter/JIT machinery; I/O ops flow through the
sandbox's I/O path; chain ops (`InvokeNext`) and database ops are handled by
the platform executing the program.

Each op names the guest *function* performing it so the JIT model can keep
per-function hotness and tier state (V8 optimizes per function).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

from repro.errors import RuntimeModelError


@dataclass(frozen=True)
class Compute:
    """Execute *units* of abstract bytecode work in *function*.

    ``arg_shape`` is the type-feedback signature of the arguments flowing
    into this code (e.g. ``("str", "int")``); a shape unseen by the JITted
    code triggers de-optimization (§6).
    """

    units: float
    function: str = "main"
    arg_shape: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.units < 0:
            raise RuntimeModelError(f"negative compute units {self.units}")


@dataclass(frozen=True)
class DiskRead:
    """Read *kb* KiB from the sandbox filesystem, *times* times."""

    kb: float
    times: int = 1

    def __post_init__(self) -> None:
        if self.kb < 0 or self.times < 0:
            raise RuntimeModelError("negative disk read size/count")


@dataclass(frozen=True)
class DiskWrite:
    """Write *kb* KiB to the sandbox filesystem, *times* times."""

    kb: float
    times: int = 1

    def __post_init__(self) -> None:
        if self.kb < 0 or self.times < 0:
            raise RuntimeModelError("negative disk write size/count")


@dataclass(frozen=True)
class NetSend:
    """Send a message of *kb* KiB from the guest."""

    kb: float

    def __post_init__(self) -> None:
        if self.kb < 0:
            raise RuntimeModelError("negative message size")


@dataclass(frozen=True)
class NetRecv:
    """Receive a message of *kb* KiB in the guest."""

    kb: float

    def __post_init__(self) -> None:
        if self.kb < 0:
            raise RuntimeModelError("negative message size")


@dataclass(frozen=True)
class Respond:
    """Send the HTTP response terminating the invocation.

    faas-netlatency responds with a 79-byte body and ~500-byte header
    (paper §5.2.1), i.e. ``kb ~= 0.57``.
    """

    kb: float = 0.57


@dataclass(frozen=True)
class DbGet:
    """Read a document of *doc_kb* KiB from the named database."""

    database: str
    doc_kb: float = 1.0


@dataclass(frozen=True)
class DbPut:
    """Insert/update a document of *doc_kb* KiB in the named database."""

    database: str
    doc_kb: float = 1.0


@dataclass(frozen=True)
class InvokeNext:
    """Invoke the next function in a chain (ServerlessBench apps, Fig 8)."""

    function: str
    payload_kb: float = 1.0
    wait: bool = True  # synchronous chain step (pipe-style, §5.3)


Op = Union[Compute, DiskRead, DiskWrite, NetSend, NetRecv, Respond,
           DbGet, DbPut, InvokeNext]


@dataclass(frozen=True)
class Program:
    """An immutable op sequence with helpers used by the calibration."""

    ops: Tuple[Op, ...] = field(default_factory=tuple)

    def __iter__(self):
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def total_compute_units(self) -> float:
        """Sum of all Compute units in the program."""
        return sum(op.units for op in self.ops if isinstance(op, Compute))

    def io_op_count(self) -> int:
        """Number of I/O-ish operations (disk, net, db)."""
        count = 0
        for op in self.ops:
            if isinstance(op, (DiskRead, DiskWrite)):
                count += op.times
            elif isinstance(op, (NetSend, NetRecv, Respond, DbGet, DbPut)):
                count += 1
        return count

    def functions(self) -> Tuple[str, ...]:
        """Distinct guest function names, in first-appearance order."""
        seen = []
        for op in self.ops:
            if isinstance(op, Compute) and op.function not in seen:
                seen.append(op.function)
        return tuple(seen) or ("main",)


def program(*ops: Op) -> Program:
    """Convenience constructor: ``program(Compute(1000), Respond())``."""
    return Program(tuple(ops))
