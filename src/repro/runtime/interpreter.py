"""The language runtime running inside a sandbox.

A :class:`LanguageRuntime` models one runtime *process* (node / python):
launch, app load, and op-stream execution through the tiered JIT machinery.
Its JIT state is exportable/importable, which is how post-JIT snapshots carry
"already compiled" across restore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.config import GuestMemoryLayout, RuntimeConfig
from repro.errors import RuntimeModelError
from repro.runtime.jit import FunctionJitState, JitEngine
from repro.runtime.ops import (Compute, DbGet, DbPut, DiskRead, DiskWrite,
                               InvokeNext, NetRecv, NetSend, Program, Respond)
from repro.storage.filesystem import IoPathModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


@dataclass(frozen=True)
class GuestFunction:
    """One guest-visible function of an app, as the JIT model sees it."""

    name: str
    code_units: float = 500.0
    jit_speedup: float = 3.0


@dataclass(frozen=True)
class AppCode:
    """The loadable unit: what `require()`/`import` brings into the runtime."""

    name: str
    language: str
    guest_functions: Tuple[GuestFunction, ...] = (GuestFunction("main"),)
    extra_load_ms: float = 0.0   # dependency-heavy apps load slower


@dataclass
class ExecBreakdown:
    """Where the time of one invocation went, inside the guest."""

    compute_ms: float = 0.0
    jit_compile_ms: float = 0.0
    deopt_ms: float = 0.0
    disk_ms: float = 0.0
    net_ms: float = 0.0
    db_ms: float = 0.0
    chain_ms: float = 0.0
    deopt_count: int = 0
    response_kb: float = 0.0

    @property
    def exec_ms(self) -> float:
        """In-guest execution time (paper Fig 6's "exec" bar)."""
        return (self.compute_ms + self.jit_compile_ms + self.deopt_ms
                + self.disk_ms + self.net_ms + self.db_ms)

    @property
    def total_ms(self) -> float:
        return self.exec_ms + self.chain_ms

    def merge(self, other: "ExecBreakdown") -> None:
        """Accumulate *other* into this breakdown (for chains)."""
        self.compute_ms += other.compute_ms
        self.jit_compile_ms += other.jit_compile_ms
        self.deopt_ms += other.deopt_ms
        self.disk_ms += other.disk_ms
        self.net_ms += other.net_ms
        self.db_ms += other.db_ms
        self.chain_ms += other.chain_ms
        self.deopt_count += other.deopt_count
        self.response_kb += other.response_kb


class ExternalHandlers:
    """Callbacks a platform provides for ops the runtime cannot resolve.

    Each handler is a *generator* (run on the simulation) returning the
    milliseconds the op took outside the guest; the default implementation
    models a standalone runtime with no platform attached.
    """

    def db_get(self, op: DbGet):
        """Handle a DbGet op; platform overrides this."""
        raise RuntimeModelError(
            f"no database handler attached (op: {op!r})")
        yield  # pragma: no cover - makes this a generator

    def db_put(self, op: DbPut):
        """Handle a DbPut op; platform overrides this."""
        raise RuntimeModelError(
            f"no database handler attached (op: {op!r})")
        yield  # pragma: no cover

    def invoke_next(self, op: InvokeNext):
        """Handle a chain InvokeNext op; platform overrides this."""
        raise RuntimeModelError(
            f"no chain handler attached (op: {op!r})")
        yield  # pragma: no cover

    def respond(self, op: Respond):
        """Handle the Respond op (response routing hook)."""
        # Default: the response just leaves through the sandbox NIC; the
        # platform may override to add gateway costs.
        return
        yield  # pragma: no cover


class LanguageRuntime:
    """One runtime process: launch -> load app -> execute programs."""

    STATE_INIT = "init"
    STATE_LAUNCHED = "launched"
    STATE_LOADED = "loaded"

    def __init__(self, sim: "Simulation", config: RuntimeConfig,
                 layout: GuestMemoryLayout) -> None:
        self.sim = sim
        self.config = config
        self.layout = layout
        self.jit = JitEngine(config)
        self.state = self.STATE_INIT
        self.app: Optional[AppCode] = None
        self.invocations = 0

    # -- lifecycle -----------------------------------------------------------
    def launch(self):
        """Start the runtime process (a simulation generator)."""
        if self.state != self.STATE_INIT:
            raise RuntimeModelError(
                f"launch() in state {self.state!r}")
        yield self.sim.timeout(self.config.launch_ms)
        self.state = self.STATE_LAUNCHED

    def load_app(self, app: AppCode):
        """`require()`/`import` the function code (a simulation generator)."""
        if self.state != self.STATE_LAUNCHED:
            raise RuntimeModelError(f"load_app() in state {self.state!r}")
        if app.language != self.config.name:
            raise RuntimeModelError(
                f"{self.config.name} runtime cannot load {app.language} app")
        yield self.sim.timeout(self.config.app_load_base_ms
                               + app.extra_load_ms)
        for function in app.guest_functions:
            self.jit.register(function.name, code_units=function.code_units,
                              jit_speedup=function.jit_speedup)
        self.app = app
        self.state = self.STATE_LOADED

    def force_jit_all(self):
        """Annotation-driven JIT of every guest function (install phase).

        This is ``__fireworks_jit()`` from Figure 3: invoke each annotated
        function once so Numba/V8 compiles it, paying the compile cost now.
        """
        if self.state != self.STATE_LOADED:
            raise RuntimeModelError(f"force_jit_all() in state {self.state!r}")
        total_ms = 0.0
        for name in self.jit.functions():
            total_ms += self.jit.force_compile(name)
        yield self.sim.timeout(total_ms)
        return total_ms

    # -- execution ------------------------------------------------------------
    def run_program(self, prog: Program, io: IoPathModel,
                    handlers: Optional[ExternalHandlers] = None):
        """Execute an op stream; returns an :class:`ExecBreakdown`.

        A simulation generator: compute flows through the JIT engine, I/O
        through the sandbox's I/O path model, and db/chain ops through the
        platform-provided *handlers*.
        """
        if self.state != self.STATE_LOADED:
            raise RuntimeModelError(f"run_program() in state {self.state!r}")
        handlers = handlers or ExternalHandlers()
        breakdown = ExecBreakdown()
        for op in prog:
            if isinstance(op, Compute):
                cost = self.jit.execute(op.function, op.units, op.arg_shape)
                if cost.deopt_ms > 0:
                    breakdown.deopt_count += 1
                breakdown.compute_ms += cost.exec_ms
                breakdown.jit_compile_ms += cost.jit_compile_ms
                breakdown.deopt_ms += cost.deopt_ms
                op_started = self.sim.now
                yield self.sim.timeout(cost.total_ms)
                self._record_jit_spans(op.function, op_started, cost)
            elif isinstance(op, DiskRead):
                duration = op.times * io.disk_read_ms(op.kb)
                breakdown.disk_ms += duration
                yield self.sim.timeout(duration)
            elif isinstance(op, DiskWrite):
                duration = op.times * io.disk_write_ms(op.kb)
                breakdown.disk_ms += duration
                yield self.sim.timeout(duration)
            elif isinstance(op, NetSend):
                duration = io.net_send_ms(op.kb)
                breakdown.net_ms += duration
                yield self.sim.timeout(duration)
            elif isinstance(op, NetRecv):
                duration = io.net_recv_ms(op.kb)
                breakdown.net_ms += duration
                yield self.sim.timeout(duration)
            elif isinstance(op, Respond):
                duration = io.net_send_ms(op.kb)
                breakdown.net_ms += duration
                breakdown.response_kb += op.kb
                yield self.sim.timeout(duration)
                yield from handlers.respond(op)
            elif isinstance(op, DbGet):
                started = self.sim.now
                yield from handlers.db_get(op)
                breakdown.db_ms += self.sim.now - started
            elif isinstance(op, DbPut):
                started = self.sim.now
                yield from handlers.db_put(op)
                breakdown.db_ms += self.sim.now - started
            elif isinstance(op, InvokeNext):
                started = self.sim.now
                yield from handlers.invoke_next(op)
                breakdown.chain_ms += self.sim.now - started
            else:
                raise RuntimeModelError(f"unknown op {op!r}")
        self.invocations += 1
        return breakdown

    def _record_jit_spans(self, function: str, op_started: float,
                          cost) -> None:
        # Retrospective spans: the JIT's compile/deopt share of a compute
        # op happens inside the op's (already elapsed) timeout window; a
        # deopt precedes the recompile (jit.py's cost model order).
        # Splitting the timeout itself would perturb event ordering, so
        # the spans are recorded after the fact on the known sub-windows.
        tracer = self.sim.tracer
        cursor = op_started
        if cost.deopt_ms > 0:
            end = min(cursor + cost.deopt_ms, self.sim.now)
            tracer.add_span("deopt", cursor, end, function=function)
            cursor = end
        if cost.jit_compile_ms > 0:
            end = min(cursor + cost.jit_compile_ms, self.sim.now)
            tracer.add_span("jit-compile", cursor, end, function=function,
                            tier=self.jit.state(function).tier)

    # -- snapshot support -----------------------------------------------------
    def export_jit_state(self) -> Dict[str, FunctionJitState]:
        """Deep copy of JIT tier state, for the snapshot image."""
        return self.jit.export_state()

    @classmethod
    def from_snapshot(cls, sim: "Simulation", config: RuntimeConfig,
                      layout: GuestMemoryLayout, app: AppCode,
                      jit_state: Dict[str, FunctionJitState]
                      ) -> "LanguageRuntime":
        """Reconstruct the runtime as it was at snapshot time.

        Restoring guest memory restores the runtime process mid-flight:
        launched, app loaded, JIT state exactly as snapshotted.
        """
        runtime = cls(sim, config, layout)
        runtime.state = cls.STATE_LOADED
        runtime.app = app
        runtime.jit.import_state(jit_state)
        return runtime
