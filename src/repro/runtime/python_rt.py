"""The Python (CPython + Numba) runtime model.

CPython specifics the paper relies on:

* Stock CPython never JITs (``has_runtime_jit=False``): §5.5.1 — "the Python
  interpreter in our experiments did not perform JIT compilation".  Without
  Fireworks, Python functions run interpreted forever.
* Numba's ``@jit(cache=True)`` compiles annotated functions via LLVM MCJIT
  when they are first called (``annotation_jit=True``) — exactly what
  ``__fireworks_jit()`` triggers at install time (Figure 3).
* Numba duplicates JITted functions across modules (an MCJIT restriction
  [35]), so the Python JIT region is large and its pages get relocated
  (dirtied) at run time — the Fig 12 "no memory win for Python" effect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import CalibratedParameters
from repro.errors import RuntimeModelError
from repro.runtime.interpreter import LanguageRuntime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulation


class PythonRuntime(LanguageRuntime):
    """A CPython process, optionally with Numba available."""

    language = "python"

    def __init__(self, sim: "Simulation", params: CalibratedParameters,
                 numba_available: bool = True) -> None:
        super().__init__(sim, params.runtime(self.language),
                         params.memory_layout(self.language))
        self.numba_available = numba_available

    def force_jit_all(self):
        """Numba compilation of all ``@jit``-annotated functions.

        Raises when Numba is not installed in the function's environment —
        Fireworks' installer checks for this and reports it to the user.
        """
        if not self.numba_available:
            raise RuntimeModelError(
                "Numba is not available: cannot JIT-compile Python functions")
        return super().force_jit_all()
