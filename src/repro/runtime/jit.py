"""The tiered-execution (interpreter -> JIT) model.

This captures everything §2, §5.5.1 and §6 of the paper rely on:

* functions start in the interpreter tier;
* runtimes with a *runtime JIT* (V8/TurboFan) tier a function up after it has
  executed ``hotness_threshold_units`` of work — so I/O-heavy functions reach
  the threshold "near the end of function execution" and mostly run
  interpreted (§5.5.1);
* tier-up pays a compile cost **on the same single vCPU** as the function
  (§2.3: JIT compilation competes with execution for CPU time);
* annotation-driven JIT (`@jit(cache=True)` / V8 hooks) compiles eagerly —
  this is what Fireworks does at install time;
* JITted code specializes on argument *shapes*; executing with an unseen
  shape de-optimizes back to the interpreter and re-tiers (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.config import RuntimeConfig
from repro.errors import RuntimeModelError

INTERPRETED = "interpreted"
OPTIMIZED = "optimized"

_GENERIC_SHAPE: Tuple[str, ...] = ()


@dataclass
class FunctionJitState:
    """Per-guest-function tier state; snapshotted along with guest memory."""

    name: str
    tier: str = INTERPRETED
    hotness_units: float = 0.0
    code_units: float = 500.0          # size of the function's code, units
    jit_speedup: float = 3.0           # optimized-tier speedup factor
    trained_shapes: Set[Tuple[str, ...]] = field(default_factory=set)
    deopt_count: int = 0
    compile_count: int = 0

    def clone(self) -> "FunctionJitState":
        """Deep copy for inclusion in a snapshot image."""
        return FunctionJitState(
            name=self.name,
            tier=self.tier,
            hotness_units=self.hotness_units,
            code_units=self.code_units,
            jit_speedup=self.jit_speedup,
            trained_shapes=set(self.trained_shapes),
            deopt_count=self.deopt_count,
            compile_count=self.compile_count,
        )


@dataclass(frozen=True)
class ComputeCost:
    """Timing breakdown of one compute op through the tier machinery."""

    exec_ms: float
    jit_compile_ms: float
    deopt_ms: float

    @property
    def total_ms(self) -> float:
        return self.exec_ms + self.jit_compile_ms + self.deopt_ms


class JitEngine:
    """Tier state machine for all guest functions inside one runtime."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config
        self._functions: Dict[str, FunctionJitState] = {}

    # -- function registry ----------------------------------------------------
    def register(self, name: str, code_units: float = 500.0,
                 jit_speedup: float = 3.0) -> FunctionJitState:
        """Declare a guest function (done at app-load time)."""
        if name in self._functions:
            raise RuntimeModelError(f"function {name!r} already registered")
        if jit_speedup < 1.0:
            raise RuntimeModelError(
                f"jit_speedup must be >= 1, got {jit_speedup}")
        state = FunctionJitState(
            name=name, code_units=code_units, jit_speedup=jit_speedup)
        self._functions[name] = state
        return state

    def state(self, name: str) -> FunctionJitState:
        """Tier state of a guest function; errors if unknown."""
        if name not in self._functions:
            raise RuntimeModelError(f"unknown guest function {name!r}")
        return self._functions[name]

    def functions(self) -> Tuple[str, ...]:
        """Names of all registered guest functions."""
        return tuple(self._functions)

    # -- annotation-driven (install-time) compilation ---------------------------
    def force_compile(self, name: str,
                      shape: Tuple[str, ...] = _GENERIC_SHAPE) -> float:
        """Eagerly JIT *name* (Fireworks `__fireworks_jit`); returns cost ms.

        Only runtimes that support annotation JIT (Numba, V8 hooks) allow
        this; stock CPython without Numba would raise.
        """
        if not self.config.annotation_jit:
            raise RuntimeModelError(
                f"{self.config.name} does not support annotation-driven JIT")
        state = self.state(name)
        compile_ms = self._compile_ms(state)
        state.tier = OPTIMIZED
        state.trained_shapes.add(shape)
        state.compile_count += 1
        return compile_ms

    # -- execution ------------------------------------------------------------
    def execute(self, name: str, units: float,
                arg_shape: Tuple[str, ...] = _GENERIC_SHAPE) -> ComputeCost:
        """Run *units* of work in *name*, advancing tier state.

        Returns the timing breakdown.  The returned ``jit_compile_ms`` is
        charged inline because the sandbox has a single vCPU (§2.3).
        """
        state = self.state(name)
        deopt_ms = 0.0
        recompile_ms = 0.0
        if state.tier == OPTIMIZED and not self._shape_ok(state, arg_shape):
            # De-optimization (§6): the specialized code bails out to the
            # already-generated bytecode — cheap — and, because the function
            # is known-hot, the runtime immediately re-specializes for the
            # new argument shape (V8's speculative re-optimization [2]).
            state.deopt_count += 1
            deopt_ms = self.config.deopt_penalty_ms
            recompile_ms = self._compile_ms(state)
            state.trained_shapes.add(arg_shape)
            state.compile_count += 1

        if state.tier == OPTIMIZED:
            exec_ms = units / (self.config.interp_units_per_ms
                               * state.jit_speedup)
            return ComputeCost(exec_ms, recompile_ms, deopt_ms)

        return self._execute_interpreted(state, units, arg_shape, deopt_ms)

    # -- internal ---------------------------------------------------------------
    def _execute_interpreted(self, state: FunctionJitState, units: float,
                             arg_shape: Tuple[str, ...],
                             deopt_ms: float) -> ComputeCost:
        interp_rate = self.config.interp_units_per_ms
        threshold = self.config.hotness_threshold_units
        compile_ms = 0.0
        exec_ms = 0.0
        remaining = units

        if self.config.has_runtime_jit:
            until_hot = max(0.0, threshold - state.hotness_units)
            interpreted_units = min(remaining, until_hot)
        else:
            # Stock CPython: never tiers up on its own (§5.5.1).
            interpreted_units = remaining

        exec_ms += interpreted_units / interp_rate
        state.hotness_units += interpreted_units
        remaining -= interpreted_units

        if remaining > 0:
            # Tier-up fires mid-execution: compile (blocking the single
            # vCPU), then finish in optimized code.
            compile_ms = self._compile_ms(state)
            state.tier = OPTIMIZED
            state.trained_shapes.add(arg_shape)
            state.compile_count += 1
            exec_ms += remaining / (interp_rate * state.jit_speedup)

        return ComputeCost(exec_ms, compile_ms, deopt_ms)

    def _compile_ms(self, state: FunctionJitState) -> float:
        return (state.code_units / 1000.0) * self.config.jit_compile_ms_per_kunit

    @staticmethod
    def _shape_ok(state: FunctionJitState, shape: Tuple[str, ...]) -> bool:
        # The generic shape never deopts (monomorphic benchmark code);
        # a concrete shape must have been trained.
        if shape == _GENERIC_SHAPE:
            return True
        return shape in state.trained_shapes

    # -- snapshotting -------------------------------------------------------------
    def export_state(self) -> Dict[str, FunctionJitState]:
        """Deep-copy all tier state for inclusion in a snapshot image."""
        return {name: state.clone() for name, state in self._functions.items()}

    def import_state(self, snapshot: Dict[str, FunctionJitState]) -> None:
        """Replace tier state with a snapshot's (restore path)."""
        self._functions = {name: state.clone()
                           for name, state in snapshot.items()}

    def total_deopts(self) -> int:
        """De-optimizations across all functions."""
        return sum(s.deopt_count for s in self._functions.values())

    def optimized_functions(self) -> Tuple[str, ...]:
        """Names currently in the optimized tier."""
        return tuple(name for name, s in self._functions.items()
                     if s.tier == OPTIMIZED)
