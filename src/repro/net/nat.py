"""Per-namespace NAT tables (the iptables rules of Figure 5).

Each microVM restored from a snapshot keeps its snapshotted guest address
``A.A.A.A``; the namespace's NAT table maps the externally visible address
(``B.B.B.B``, ``C.C.C.C``, ...) to the guest address on ingress (DNAT) and
back on egress (SNAT).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import NetworkError
from repro.net.address import IpAddress


@dataclass(frozen=True)
class Packet:
    """A minimal IP packet for NAT traversal tests and routing."""

    src: IpAddress
    dst: IpAddress
    payload_kb: float = 0.5
    note: str = ""

    def with_addresses(self, src: Optional[IpAddress] = None,
                       dst: Optional[IpAddress] = None) -> "Packet":
        """A copy with the src/dst rewritten (NAT helper)."""
        return replace(self, src=src or self.src, dst=dst or self.dst)


class NatTable:
    """DNAT/SNAT rule pair for one network namespace."""

    def __init__(self, namespace_name: str) -> None:
        self.namespace_name = namespace_name
        self._dnat: Dict[IpAddress, IpAddress] = {}  # external -> internal
        self._snat: Dict[IpAddress, IpAddress] = {}  # internal -> external

    def add_rule(self, external: IpAddress, internal: IpAddress) -> None:
        """Install the DNAT+SNAT pair external<->internal."""
        if external in self._dnat:
            raise NetworkError(
                f"duplicate DNAT rule for {external} in {self.namespace_name}")
        if internal in self._snat:
            raise NetworkError(
                f"duplicate SNAT rule for {internal} in {self.namespace_name}")
        self._dnat[external] = internal
        self._snat[internal] = external

    def remove_rule(self, external: IpAddress) -> None:
        """Uninstall the DNAT+SNAT pair for *external*."""
        if external not in self._dnat:
            raise NetworkError(f"no DNAT rule for {external}")
        internal = self._dnat.pop(external)
        del self._snat[internal]

    def translate_ingress(self, packet: Packet) -> Packet:
        """Rewrite the destination of an inbound packet (DNAT)."""
        if packet.dst not in self._dnat:
            raise NetworkError(
                f"no DNAT rule for {packet.dst} in {self.namespace_name}")
        return packet.with_addresses(dst=self._dnat[packet.dst])

    def translate_egress(self, packet: Packet) -> Packet:
        """Rewrite the source of an outbound packet (SNAT)."""
        if packet.src not in self._snat:
            raise NetworkError(
                f"no SNAT rule for {packet.src} in {self.namespace_name}")
        return packet.with_addresses(src=self._snat[packet.src])

    def external_for(self, internal: IpAddress) -> IpAddress:
        """The external address SNAT maps *internal* to."""
        if internal not in self._snat:
            raise NetworkError(f"no SNAT rule for {internal}")
        return self._snat[internal]

    def rule_count(self) -> int:
        """Number of installed rule pairs."""
        return len(self._dnat)
