"""IP and MAC addresses plus deterministic allocators.

Snapshot clones all wake up with the *same* guest IP and MAC (§3.5) — the
address types here are value objects so equality means "will conflict".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import NetworkError


@dataclass(frozen=True, order=True)
class IpAddress:
    """An IPv4 address as a 32-bit value."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise NetworkError(f"IPv4 value out of range: {self.value:#x}")

    @classmethod
    def parse(cls, dotted: str) -> "IpAddress":
        parts = dotted.split(".")
        if len(parts) != 4:
            raise NetworkError(f"malformed IPv4 address {dotted!r}")
        value = 0
        for part in parts:
            try:
                octet = int(part)
            except ValueError as exc:
                raise NetworkError(f"malformed IPv4 octet {part!r}") from exc
            if not 0 <= octet <= 255:
                raise NetworkError(f"IPv4 octet out of range: {part}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF)
                        for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFFFFFF:
            raise NetworkError(f"MAC value out of range: {self.value:#x}")

    def __str__(self) -> str:
        return ":".join(f"{(self.value >> shift) & 0xFF:02x}"
                        for shift in (40, 32, 24, 16, 8, 0))


class IpAllocator:
    """Allocates host-side external IPs from a /16-style pool."""

    def __init__(self, base: str = "10.128.0.2", count: int = 65000) -> None:
        self._base = IpAddress.parse(base)
        self._count = count
        self._next = 0

    def allocate(self) -> IpAddress:
        """Hand out the next unused address."""
        if self._next >= self._count:
            raise NetworkError("external IP pool exhausted")
        address = IpAddress(self._base.value + self._next)
        self._next += 1
        return address

    def allocated(self) -> int:
        """How many addresses have been handed out."""
        return self._next


class MacAllocator:
    """Allocates locally administered MACs (02:fw:...)."""

    def __init__(self, prefix: int = 0x02F17E000000) -> None:
        self._prefix = prefix
        self._next = 0

    def allocate(self) -> MacAddress:
        """Hand out the next unused address."""
        if self._next > 0xFFFFFF:
            raise NetworkError("MAC pool exhausted")
        mac = MacAddress(self._prefix | self._next)
        self._next += 1
        return mac


def ip_range(start: str, count: int) -> Iterator[IpAddress]:
    """Yield *count* consecutive addresses from *start*."""
    base = IpAddress.parse(start)
    for offset in range(count):
        yield IpAddress(base.value + offset)
