"""Network substrate: addresses, namespaces, NAT, taps, host bridge."""

from repro.net.address import (IpAddress, IpAllocator, MacAddress,
                               MacAllocator, ip_range)
from repro.net.bridge import Endpoint, HostBridge
from repro.net.namespace import (NamespaceManager, NetworkNamespace,
                                 TapDevice)
from repro.net.nat import NatTable, Packet

__all__ = [
    "Endpoint",
    "HostBridge",
    "IpAddress",
    "IpAllocator",
    "MacAddress",
    "MacAllocator",
    "NamespaceManager",
    "NatTable",
    "NetworkNamespace",
    "Packet",
    "TapDevice",
    "ip_range",
]
