"""Network namespaces and tap devices.

§3.5: snapshot clones share the same guest IP/MAC and even the same tap
device *name* (``tap0``); putting each microVM in its own namespace makes the
duplicate names and addresses non-conflicting.  This module enforces exactly
that invariant: registering a duplicate address or device name *within one
namespace* raises :class:`AddressConflictError`, while duplicates across
namespaces are fine.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import AddressConflictError, NetworkError
from repro.net.address import IpAddress, MacAddress
from repro.net.nat import NatTable


class TapDevice:
    """A tap device endpoint inside a namespace."""

    def __init__(self, name: str, namespace: "NetworkNamespace") -> None:
        self.name = name
        self.namespace = namespace
        self.rx_packets = 0
        self.tx_packets = 0

    def __repr__(self) -> str:
        return f"<tap {self.namespace.name}/{self.name}>"


class NetworkNamespace:
    """One network namespace: devices, bound addresses, and a NAT table."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nat = NatTable(name)
        self._devices: Dict[str, TapDevice] = {}
        self._bound_ips: Dict[IpAddress, str] = {}
        self._bound_macs: Dict[MacAddress, str] = {}

    # -- devices ---------------------------------------------------------------
    def create_tap(self, name: str) -> TapDevice:
        """Create tap device *name*; duplicate names conflict per-namespace."""
        if name in self._devices:
            raise AddressConflictError(
                f"device {name!r} already exists in namespace {self.name!r}")
        device = TapDevice(name, self)
        self._devices[name] = device
        return device

    def device(self, name: str) -> TapDevice:
        """Look up a device by name; NetworkError if absent."""
        if name not in self._devices:
            raise NetworkError(
                f"no device {name!r} in namespace {self.name!r}")
        return self._devices[name]

    def device_names(self):
        """Names of all devices in this namespace."""
        return tuple(self._devices)

    # -- addresses ---------------------------------------------------------------
    def bind(self, device_name: str, ip: IpAddress, mac: MacAddress) -> None:
        """Assign *ip*/*mac* to a device; duplicates conflict per-namespace."""
        self.device(device_name)  # existence check
        if ip in self._bound_ips:
            raise AddressConflictError(
                f"IP {ip} already bound to {self._bound_ips[ip]!r} "
                f"in namespace {self.name!r}")
        if mac in self._bound_macs:
            raise AddressConflictError(
                f"MAC {mac} already bound to {self._bound_macs[mac]!r} "
                f"in namespace {self.name!r}")
        self._bound_ips[ip] = device_name
        self._bound_macs[mac] = device_name

    def is_bound(self, ip: IpAddress) -> bool:
        """Whether *ip* is bound to a device here."""
        return ip in self._bound_ips


class NamespaceManager:
    """Creates uniquely named namespaces on the host."""

    def __init__(self) -> None:
        self._namespaces: Dict[str, NetworkNamespace] = {}
        self._counter = 0

    def create(self, name: str = "") -> NetworkNamespace:
        """Create a (uniquely named) namespace."""
        if not name:
            self._counter += 1
            name = f"fc-ns-{self._counter}"
        if name in self._namespaces:
            raise NetworkError(f"namespace {name!r} already exists")
        namespace = NetworkNamespace(name)
        self._namespaces[name] = namespace
        return namespace

    def destroy(self, name: str) -> None:
        """Remove a namespace; NetworkError if absent."""
        if name not in self._namespaces:
            raise NetworkError(f"no namespace {name!r}")
        del self._namespaces[name]

    def get(self, name: str) -> NetworkNamespace:
        """Look up a namespace by name."""
        if name not in self._namespaces:
            raise NetworkError(f"no namespace {name!r}")
        return self._namespaces[name]

    def __len__(self) -> int:
        return len(self._namespaces)
