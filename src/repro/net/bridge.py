"""The host bridge: routes packets to namespaces by external IP (Figure 5).

The bridge owns the pool of externally visible addresses.  Connecting a
microVM allocates an external IP, installs the NAT pair in the microVM's
namespace, and registers the route.  Delivery walks exactly the paper's path:
bridge -> namespace NAT (DNAT) -> tap -> guest, and the reply retraces it
with SNAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import NetworkError
from repro.net.address import IpAddress, IpAllocator, MacAddress, MacAllocator
from repro.net.namespace import NamespaceManager, NetworkNamespace, TapDevice
from repro.net.nat import Packet


@dataclass(frozen=True)
class Endpoint:
    """A connected guest endpoint as seen from the host."""

    external_ip: IpAddress
    guest_ip: IpAddress
    guest_mac: MacAddress
    namespace: NetworkNamespace
    tap: TapDevice


class HostBridge:
    """Routes external traffic into per-microVM namespaces."""

    def __init__(self, gateway_ip: str = "172.17.0.1") -> None:
        self.gateway_ip = IpAddress.parse(gateway_ip)
        self.namespaces = NamespaceManager()
        self._ip_allocator = IpAllocator()
        self._mac_allocator = MacAllocator()
        self._routes: Dict[IpAddress, Endpoint] = {}

    # -- wiring -----------------------------------------------------------------
    def connect_guest(self, guest_ip: IpAddress, guest_mac: MacAddress,
                      tap_name: str = "tap0") -> Endpoint:
        """Give a guest (possibly a snapshot clone) external connectivity.

        Creates a fresh namespace, the tap device (same name across clones is
        fine — different namespaces), binds the guest addresses, installs the
        NAT pair, and returns the endpoint with its external IP.
        """
        namespace = self.namespaces.create()
        tap = namespace.create_tap(tap_name)
        namespace.bind(tap_name, guest_ip, guest_mac)
        external_ip = self._ip_allocator.allocate()
        namespace.nat.add_rule(external_ip, guest_ip)
        endpoint = Endpoint(external_ip, guest_ip, guest_mac, namespace, tap)
        self._routes[external_ip] = endpoint
        return endpoint

    def disconnect(self, endpoint: Endpoint) -> None:
        """Tear down the endpoint's route, NAT rule, and namespace."""
        if endpoint.external_ip not in self._routes:
            raise NetworkError(f"endpoint {endpoint.external_ip} not routed")
        del self._routes[endpoint.external_ip]
        endpoint.namespace.nat.remove_rule(endpoint.external_ip)
        self.namespaces.destroy(endpoint.namespace.name)

    def allocate_guest_addresses(self) -> Tuple[IpAddress, MacAddress]:
        """Fresh guest addresses for a VM booted from scratch (no snapshot)."""
        return self._ip_allocator.allocate(), self._mac_allocator.allocate()

    # -- data path -----------------------------------------------------------------
    def deliver(self, packet: Packet) -> Packet:
        """Route an inbound packet to its guest; returns the DNATed packet."""
        endpoint = self._endpoint_for(packet.dst)
        translated = endpoint.namespace.nat.translate_ingress(packet)
        endpoint.tap.rx_packets += 1
        return translated

    def emit(self, external_ip: IpAddress, packet: Packet) -> Packet:
        """Send a guest's reply out; returns the SNATed packet."""
        endpoint = self._endpoint_for(external_ip)
        if packet.src != endpoint.guest_ip:
            raise NetworkError(
                f"guest reply from {packet.src}, expected {endpoint.guest_ip}")
        endpoint.tap.tx_packets += 1
        return endpoint.namespace.nat.translate_egress(packet)

    def endpoint_count(self) -> int:
        """Number of currently routed endpoints."""
        return len(self._routes)

    def _endpoint_for(self, external_ip: IpAddress) -> Endpoint:
        if external_ip not in self._routes:
            raise NetworkError(f"no route for {external_ip}")
        return self._routes[external_ip]
