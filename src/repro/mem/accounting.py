"""smem-style memory reports over a set of address spaces.

The paper measures Proportional Set Size with ``smem`` (§5.4); this module
produces equivalent per-sandbox and aggregate reports from the page model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.mem.address_space import AddressSpace
from repro.mem.host_memory import HostMemory


@dataclass(frozen=True)
class MemoryReportRow:
    """One sandbox's memory stats, smem-style."""

    name: str
    rss_mb: float
    pss_mb: float
    uss_mb: float


@dataclass(frozen=True)
class MemoryReport:
    """Aggregate memory report across sandboxes."""

    rows: List[MemoryReportRow]
    host_used_mb: float
    host_swapping: bool

    @property
    def total_pss_mb(self) -> float:
        return sum(row.pss_mb for row in self.rows)

    @property
    def mean_pss_mb(self) -> float:
        if not self.rows:
            return 0.0
        return self.total_pss_mb / len(self.rows)

    def as_table(self) -> str:
        """Render the report like ``smem`` output."""
        lines = [f"{'name':<28} {'RSS':>10} {'PSS':>10} {'USS':>10}"]
        for row in self.rows:
            lines.append(
                f"{row.name:<28} {row.rss_mb:>9.1f}M {row.pss_mb:>9.1f}M "
                f"{row.uss_mb:>9.1f}M")
        lines.append(
            f"{'host used':<28} {self.host_used_mb:>9.1f}M "
            f"swapping={self.host_swapping}")
        return "\n".join(lines)


def smem_report(host: HostMemory,
                spaces: Iterable[AddressSpace]) -> MemoryReport:
    """Produce a :class:`MemoryReport` for *spaces* on *host*."""
    rows = [
        MemoryReportRow(
            name=space.name,
            rss_mb=space.rss_mb(),
            pss_mb=space.pss_mb(),
            uss_mb=space.uss_mb(),
        )
        for space in spaces
    ]
    return MemoryReport(
        rows=rows, host_used_mb=host.used_mb, host_swapping=host.is_swapping)


def region_breakdown(spaces: Iterable[AddressSpace]) -> Dict[str, float]:
    """Total PSS MiB per region name across *spaces* (Fig 4-style view)."""
    totals: Dict[str, float] = {}
    for space in spaces:
        for region in space.region_names():
            totals[region] = totals.get(region, 0.0) + \
                space.region_pss_mb(region)
    return totals
