"""Guest address spaces: named regions backed by private or shared memory.

A sandbox's guest-physical memory is a set of named regions (``kernel``,
``runtime``, ``app``, ``heap``, ``jit_code``, ...).  Each region is backed
either by a :class:`~repro.mem.segments.PrivateBlock` (fresh boot — nothing
shared) or by a MAP_PRIVATE mapping of a :class:`SharedSegment` (snapshot
restore — everything shared until written).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import MemoryError_
from repro.mem.host_memory import HostMemory, mb_to_pages, pages_to_mb
from repro.mem.segments import PrivateBlock, SharedSegment


class _PrivateMapping:
    """Region backing: exclusively owned pages."""

    def __init__(self, block: PrivateBlock) -> None:
        self.block = block

    @property
    def pages(self) -> int:
        return self.block.pages

    def dirty(self, pages: int) -> None:
        # Writing to private memory changes nothing in the accounting.
        del pages

    def grow(self, pages: int) -> None:
        self.block.grow(pages)

    def rss_pages(self) -> int:
        return self.block.pages

    def uss_pages(self) -> int:
        return self.block.pages

    def pss_pages(self) -> float:
        return float(self.block.pages)

    def unmap(self) -> None:
        self.block.free()


class _SharedMapping:
    """Region backing: MAP_PRIVATE view of a shared segment + CoW overflow.

    Writes first CoW-break segment pages; once every segment page is private,
    further growth lands in a private overflow block (fresh anonymous
    memory, e.g. heap expansion past the snapshotted heap).
    """

    def __init__(self, host: HostMemory, segment: SharedSegment,
                 kind: str) -> None:
        self.host = host
        self.segment = segment
        self.kind = kind
        self.mapper_id = segment.attach()
        self.overflow: Optional[PrivateBlock] = None

    @property
    def pages(self) -> int:
        extra = self.overflow.pages if self.overflow else 0
        return self.segment.pages + extra

    def dirty(self, pages: int) -> None:
        before = self.segment.dirty_pages(self.mapper_id)
        after = self.segment.dirty(self.mapper_id, pages)
        spill = pages - (after - before)
        if spill > 0:
            self.grow(spill)

    def grow(self, pages: int) -> None:
        if self.overflow is None:
            self.overflow = PrivateBlock(self.host, pages, self.kind)
        else:
            self.overflow.grow(pages)

    def rss_pages(self) -> int:
        extra = self.overflow.pages if self.overflow else 0
        return self.segment.pages + extra

    def uss_pages(self) -> int:
        extra = self.overflow.pages if self.overflow else 0
        return self.segment.uss_pages(self.mapper_id) + extra

    def pss_pages(self) -> float:
        extra = self.overflow.pages if self.overflow else 0
        return self.segment.pss_pages(self.mapper_id) + extra

    def unmap(self) -> None:
        self.segment.detach(self.mapper_id)
        if self.overflow is not None:
            self.overflow.free()
            self.overflow = None


class AddressSpace:
    """The guest-physical memory of one sandbox, split into named regions."""

    def __init__(self, host: HostMemory, name: str = "guest") -> None:
        self.host = host
        self.name = name
        self._regions: Dict[str, object] = {}
        self._closed = False

    # -- mapping ------------------------------------------------------------
    def map_private(self, region: str, mb: float, kind: str = "") -> None:
        """Back *region* with freshly allocated private memory."""
        self._check_new_region(region)
        block = self.host.allocate_block(mb, kind or region)
        self._regions[region] = _PrivateMapping(block)

    def map_segment(self, region: str, segment: SharedSegment) -> None:
        """Back *region* with a MAP_PRIVATE view of *segment*."""
        self._check_new_region(region)
        self._regions[region] = _SharedMapping(
            self.host, segment, segment.kind)

    def has_region(self, region: str) -> bool:
        """Whether *region* is mapped."""
        return region in self._regions

    def region_names(self) -> Iterable[str]:
        """Names of all mapped regions."""
        return tuple(self._regions)

    # -- writes -------------------------------------------------------------
    def dirty_mb(self, region: str, mb: float) -> None:
        """Write *mb* MiB in *region* (CoW-breaking shared pages first)."""
        self._mapping(region).dirty(mb_to_pages(mb))

    def dirty_fraction(self, region: str, fraction: float) -> None:
        """Write a fraction of *region*'s current pages."""
        if not 0.0 <= fraction <= 1.0:
            raise MemoryError_(f"dirty fraction {fraction} out of [0, 1]")
        mapping = self._mapping(region)
        mapping.dirty(int(round(mapping.pages * fraction)))

    def grow_mb(self, region: str, mb: float) -> None:
        """Allocate *mb* MiB of fresh anonymous memory in *region*."""
        self._mapping(region).grow(mb_to_pages(mb))

    # -- accounting ---------------------------------------------------------
    def rss_mb(self) -> float:
        """Resident set size: every mapped page, shared or not."""
        return pages_to_mb(sum(m.rss_pages() for m in self._regions.values()))

    def uss_mb(self) -> float:
        """Unique set size: pages no other address space maps."""
        return pages_to_mb(sum(m.uss_pages() for m in self._regions.values()))

    def pss_pages(self) -> float:
        """Proportional set size in pages.

        O(regions): each backing answers in constant time thanks to the
        per-segment dirty aggregate (see :mod:`repro.mem.segments`), so
        summing PSS over a whole microVM fleet is linear in fleet size.
        """
        return sum(m.pss_pages() for m in self._regions.values())

    def pss_mb(self) -> float:
        """Proportional set size, as ``smem`` reports (paper §5.4)."""
        return pages_to_mb(self.pss_pages())

    def region_pss_mb(self, region: str) -> float:
        """PSS of one region in MiB."""
        return pages_to_mb(self._mapping(region).pss_pages())

    def region_rss_mb(self, region: str) -> float:
        """RSS of one region in MiB."""
        return pages_to_mb(self._mapping(region).rss_pages())

    # -- teardown -----------------------------------------------------------
    def unmap_all(self) -> None:
        """Release every region.  Idempotent."""
        if self._closed:
            return
        for mapping in self._regions.values():
            mapping.unmap()
        self._regions.clear()
        self._closed = True

    # -- internal -----------------------------------------------------------
    def _check_new_region(self, region: str) -> None:
        if self._closed:
            raise MemoryError_(f"address space {self.name!r} is closed")
        if region in self._regions:
            raise MemoryError_(
                f"region {region!r} already mapped in {self.name!r}")

    def _mapping(self, region: str):
        if region not in self._regions:
            raise MemoryError_(
                f"region {region!r} not mapped in {self.name!r}")
        return self._regions[region]

    def __repr__(self) -> str:
        return (f"<AddressSpace {self.name} regions={list(self._regions)} "
                f"pss={self.pss_mb():.1f}MiB>")
