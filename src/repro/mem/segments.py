"""Memory backing objects: private blocks and shared CoW segments.

The unit of accounting is the 4 KiB page, but pages are tracked in aggregate
— a :class:`PrivateBlock` is ``n`` pages owned by exactly one address space,
and a :class:`SharedSegment` is ``n`` pages of immutable content (e.g. a
snapshot image in the host page cache) mapped MAP_PRIVATE by any number of
address spaces, each of which may have CoW-broken some of its pages.

PSS (proportional set size) is computed in expectation: each mapper dirties
its pages independently at uniform positions, so for a page that is clean in
mapper *j*, the expected number of other mappers still sharing it is
``sum_{i != j} (1 - dirty_i / n)``.  This matches how ``smem`` would account
the paper's Fig 10/12 measurements while staying deterministic.

Because that sum depends on the other mappers only through their *total*
dirty count, each segment maintains a running aggregate
(:attr:`SharedSegment.total_dirty_pages`) updated on attach/dirty/detach,
making ``pss_pages`` O(1) per mapper instead of O(mappers).  Fig 10 sums
PSS over hundreds of microVMs per sample; without the aggregate that scan
is quadratic in the fleet size.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.errors import MemoryError_

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.host_memory import HostMemory


class PrivateBlock:
    """``pages`` pages of host memory owned by a single address space."""

    def __init__(self, host: "HostMemory", pages: int, kind: str) -> None:
        if pages < 0:
            raise MemoryError_(f"negative block size {pages}")
        self.host = host
        self.pages = pages
        self.kind = kind
        self._freed = False
        host._account_alloc(pages)

    def grow(self, pages: int) -> None:
        """Extend the block by *pages* pages."""
        if self._freed:
            raise MemoryError_("grow() on freed block")
        if pages < 0:
            raise MemoryError_(f"cannot grow by {pages}")
        self.pages += pages
        self.host._account_alloc(pages)

    def free(self) -> None:
        """Release the block back to the host.  Double free is an error."""
        if self._freed:
            raise MemoryError_("double free of private block")
        self._freed = True
        self.host._account_free(self.pages)

    @property
    def freed(self) -> bool:
        return self._freed

    def __repr__(self) -> str:
        return f"<PrivateBlock {self.kind} {self.pages}p>"


class SharedSegment:
    """Immutable shared content mapped MAP_PRIVATE by many address spaces.

    The segment itself (the page-cache copy of a snapshot image, or the
    template memory of a forked sandbox) is resident **once** on the host;
    each mapper additionally owns its CoW-broken private copies.

    A segment may be *pinned* (e.g. by the snapshot store while the image
    file exists): a pinned segment stays resident even with no mappers.
    """

    def __init__(self, host: "HostMemory", pages: int, kind: str,
                 name: str = "") -> None:
        if pages <= 0:
            raise MemoryError_(f"segment must have > 0 pages, got {pages}")
        self.host = host
        self.pages = pages
        self.kind = kind
        self.name = name or kind
        self._dirty_by_mapper: Dict[int, int] = {}
        self._total_dirty = 0
        self._next_mapper_id = 1
        self._pins = 0
        self._resident = True
        host._account_alloc(pages)

    # -- pinning -------------------------------------------------------------
    def pin(self) -> None:
        """Keep the segment resident independent of mappers."""
        self._ensure_resident()
        self._pins += 1

    def unpin(self) -> None:
        """Drop one pin; the segment may be released."""
        if self._pins <= 0:
            raise MemoryError_(f"unpin of unpinned segment {self.name!r}")
        self._pins -= 1
        self._maybe_release()

    # -- mapping -------------------------------------------------------------
    def attach(self) -> int:
        """Register a new mapper; returns its mapper id."""
        self._ensure_resident()
        mapper_id = self._next_mapper_id
        self._next_mapper_id += 1
        self._dirty_by_mapper[mapper_id] = 0
        return mapper_id

    def detach(self, mapper_id: int) -> None:
        """Unregister a mapper, freeing its private CoW copies."""
        dirty = self._pop_mapper(mapper_id)
        self.host._account_free(dirty)
        self._maybe_release()

    def dirty(self, mapper_id: int, pages: int) -> int:
        """CoW-break *pages* pages for this mapper; returns pages now dirty.

        Dirtying is idempotent past the segment size: the dirty count
        saturates at ``self.pages``.
        """
        if pages < 0:
            raise MemoryError_(f"cannot dirty {pages} pages")
        current = self._get_dirty(mapper_id)
        new_total = min(self.pages, current + pages)
        delta = new_total - current
        self._dirty_by_mapper[mapper_id] = new_total
        self._total_dirty += delta
        self.host._account_alloc(delta)
        return new_total

    # -- accounting ----------------------------------------------------------
    @property
    def mapper_count(self) -> int:
        return len(self._dirty_by_mapper)

    @property
    def total_dirty_pages(self) -> int:
        """Sum of every mapper's CoW-broken pages (running aggregate)."""
        return self._total_dirty

    def dirty_pages(self, mapper_id: int) -> int:
        """Pages this mapper has CoW-broken."""
        return self._get_dirty(mapper_id)

    def clean_pages(self, mapper_id: int) -> int:
        """Pages this mapper still shares."""
        return self.pages - self._get_dirty(mapper_id)

    def resident_pages(self) -> int:
        """Host-resident pages attributable to this segment and its copies."""
        base = self.pages if self._resident else 0
        return base + self._total_dirty

    def pss_pages(self, mapper_id: int) -> float:
        """Expected PSS contribution (pages) of this mapping for one mapper.

        ``sum_{i != j} (1 - dirty_i / n)`` only needs the aggregate dirty
        count, so this is O(1) — Fig 10 calls it for every worker of an
        800-VM fleet at every sample.
        """
        dirty = self._get_dirty(mapper_id)
        clean = self.pages - dirty
        if clean == 0:
            return float(dirty)
        expected_other_sharers = (
            (len(self._dirty_by_mapper) - 1)
            - (self._total_dirty - dirty) / self.pages)
        return dirty + clean / (1.0 + expected_other_sharers)

    def uss_pages(self, mapper_id: int) -> int:
        """Pages unique to this mapper (its private CoW copies)."""
        return self._get_dirty(mapper_id)

    # -- internal ------------------------------------------------------------
    def _get_dirty(self, mapper_id: int) -> int:
        if mapper_id not in self._dirty_by_mapper:
            raise MemoryError_(
                f"mapper {mapper_id} is not attached to segment {self.name!r}")
        return self._dirty_by_mapper[mapper_id]

    def _pop_mapper(self, mapper_id: int) -> int:
        dirty = self._get_dirty(mapper_id)
        del self._dirty_by_mapper[mapper_id]
        self._total_dirty -= dirty
        return dirty

    def _ensure_resident(self) -> None:
        if not self._resident:
            # Fault the segment back in (e.g. snapshot image re-read).
            self.host._account_alloc(self.pages)
            self._resident = True

    def _maybe_release(self) -> None:
        if self._resident and self._pins == 0 and not self._dirty_by_mapper:
            self.host._account_free(self.pages)
            self._resident = False

    def __repr__(self) -> str:
        return (f"<SharedSegment {self.name} {self.pages}p "
                f"mappers={self.mapper_count} pins={self._pins}>")
