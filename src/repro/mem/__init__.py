"""Guest/host memory model: pages, CoW segments, PSS accounting."""

from repro.mem.accounting import (MemoryReport, MemoryReportRow,
                                  region_breakdown, smem_report)
from repro.mem.address_space import AddressSpace
from repro.mem.host_memory import HostMemory, mb_to_pages, pages_to_mb
from repro.mem.segments import PrivateBlock, SharedSegment

__all__ = [
    "AddressSpace",
    "HostMemory",
    "MemoryReport",
    "MemoryReportRow",
    "PrivateBlock",
    "SharedSegment",
    "mb_to_pages",
    "pages_to_mb",
    "region_breakdown",
    "smem_report",
]
