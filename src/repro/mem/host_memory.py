"""Host physical memory accounting with a swap threshold.

Fig 10 of the paper launches microVMs until *swapping happens* (with
``vm.swappiness=60`` on a 128 GB host, swapping is observed once roughly 60%
of DRAM is consumed).  :class:`HostMemory` tracks total resident pages across
all blocks and segments and exposes that threshold.
"""

from __future__ import annotations

from repro.config import PAGE_KB, HostConfig
from repro.errors import MemoryError_, OutOfMemoryError
from repro.mem.segments import PrivateBlock, SharedSegment


def mb_to_pages(mb: float) -> int:
    """Convert MiB to 4 KiB pages (rounded to nearest page)."""
    return int(round(mb * 1024 / PAGE_KB))


def pages_to_mb(pages: float) -> float:
    """Convert 4 KiB pages to MiB."""
    return pages * PAGE_KB / 1024


class HostMemory:
    """Physical memory of the evaluation host.

    Allocation beyond the swap threshold is allowed (the kernel swaps), but
    :attr:`is_swapping` flips true — the stop condition of Fig 10.
    Allocation beyond physical DRAM + a bounded swap budget raises
    :class:`OutOfMemoryError`.
    """

    #: Swap space available beyond DRAM before the host OOMs, as a fraction
    #: of DRAM.  Generous; Fig 10 stops at first swapping anyway.
    SWAP_BUDGET_FRACTION = 0.5

    def __init__(self, config: HostConfig) -> None:
        self.config = config
        self.total_pages = mb_to_pages(config.dram_mb)
        self.swap_threshold_pages = int(
            self.total_pages * config.swappiness_threshold)
        self._used_pages = 0
        self.peak_pages = 0

    # -- queries ------------------------------------------------------------
    @property
    def used_pages(self) -> int:
        return self._used_pages

    @property
    def used_mb(self) -> float:
        return pages_to_mb(self._used_pages)

    @property
    def free_pages_before_swap(self) -> int:
        return max(0, self.swap_threshold_pages - self._used_pages)

    @property
    def is_swapping(self) -> bool:
        """True once resident memory crossed the swappiness threshold."""
        return self._used_pages > self.swap_threshold_pages

    def utilization(self) -> float:
        """Fraction of DRAM resident."""
        return self._used_pages / self.total_pages

    # -- factories ----------------------------------------------------------
    def allocate_block(self, mb: float, kind: str) -> PrivateBlock:
        """Allocate a private block of *mb* MiB."""
        return PrivateBlock(self, mb_to_pages(mb), kind)

    def create_segment(self, mb: float, kind: str,
                       name: str = "") -> SharedSegment:
        """Create a shared CoW segment of *mb* MiB."""
        return SharedSegment(self, mb_to_pages(mb), kind, name=name)

    # -- internal accounting (called by blocks/segments) ---------------------
    def _account_alloc(self, pages: int) -> None:
        if pages < 0:
            raise MemoryError_(f"negative allocation of {pages} pages")
        ceiling = int(self.total_pages * (1 + self.SWAP_BUDGET_FRACTION))
        if self._used_pages + pages > ceiling:
            raise OutOfMemoryError(
                f"host OOM: {pages_to_mb(self._used_pages + pages):.0f} MiB "
                f"requested against {pages_to_mb(ceiling):.0f} MiB ceiling")
        self._used_pages += pages
        self.peak_pages = max(self.peak_pages, self._used_pages)

    def _account_free(self, pages: int) -> None:
        if pages < 0:
            raise MemoryError_(f"negative free of {pages} pages")
        if pages > self._used_pages:
            raise MemoryError_(
                f"freeing {pages} pages but only {self._used_pages} in use")
        self._used_pages -= pages
