"""Vectorized fleet-level memory accounting (optional numpy).

Replay-scale experiments sample the warm-pool footprint thousands of
times, and each sample walks every parked sandbox's address space.  This
module batches the per-space page counts into one contiguous ``array('d')``
and reduces it with numpy when numpy is importable, falling back to a pure
Python sum otherwise — the package itself stays dependency-free.

Scope note: the reduction order (numpy vs. sequential Python sum) can
differ in the last float ulp, so the **golden figure paths keep their
plain sequential sums** (`AddressSpace.pss_mb`, `MemoryReport`); this
module is only wired into the non-golden serving-layer paths (warm-pool
sampling), where the guarantees are *determinism across identically
seeded runs* — which both reductions satisfy — not a frozen byte hash.
"""

from __future__ import annotations

from array import array
from typing import Iterable

from repro.mem.host_memory import pages_to_mb

try:  # pragma: no cover - exercised via both branches in tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in the dev image
    _np = None

__all__ = ["HAVE_NUMPY", "fleet_pss_pages", "fleet_pss_mb",
           "fleet_pss_mb_python"]

HAVE_NUMPY = _np is not None

#: Below this many spaces the numpy round-trip costs more than it saves.
_VECTOR_MIN = 8


def fleet_pss_pages(spaces: Iterable) -> array:
    """Per-space PSS page counts as one contiguous double array.

    Each element is one address space's ``pss_pages()`` — constant time
    per space thanks to the per-segment dirty aggregates — so building
    the array is linear in fleet size with no per-element boxing beyond
    the collection itself.
    """
    return array("d", (space.pss_pages() for space in spaces))


def fleet_pss_mb_python(spaces: Iterable) -> float:
    """Pure-Python reference reduction (also the no-numpy fallback)."""
    return pages_to_mb(sum(fleet_pss_pages(spaces)))


def fleet_pss_mb(spaces: Iterable) -> float:
    """Total PSS in MiB across *spaces*, vectorized when numpy exists."""
    pages = fleet_pss_pages(spaces)
    if _np is not None and len(pages) >= _VECTOR_MIN:
        return pages_to_mb(float(_np.frombuffer(pages, dtype=_np.float64)
                                 .sum()))
    return pages_to_mb(sum(pages))
