"""Pay-as-you-go billing and provider economics (§1).

The paper's economic motivation: *"the start-up time is not charged to
users"*, so every millisecond a sandbox spends booting is resource-time the
Cloud provider pays for but cannot bill — *"reducing start-up time is
important to Cloud providers for higher profitability"*.

This module turns invocation records into that accounting:

* **billed time** — what the user pays for: execution, rounded up to the
  billing granularity (AWS Lambda bills per 1 ms today, per 100 ms
  historically);
* **resource time** — what the provider's hardware actually spent:
  start-up + execution + control-plane overhead;
* **billable efficiency** — billed / resource: the provider's margin lever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.errors import PlatformError
from repro.platforms.base import InvocationRecord

#: AWS Lambda's current billing granularity.
DEFAULT_GRANULARITY_MS = 1.0
#: A typical per-GB-second rate, scaled to the paper's 512 MB sandboxes.
DEFAULT_RATE_PER_GB_S = 0.0000166667
DEFAULT_MEMORY_GB = 0.5


@dataclass(frozen=True)
class BillingLine:
    """Billing view of one invocation."""

    function: str
    billed_ms: float
    resource_ms: float
    charge_usd: float

    @property
    def unbilled_ms(self) -> float:
        return max(0.0, self.resource_ms - self.billed_ms)


@dataclass(frozen=True)
class BillingReport:
    """Aggregate provider economics over a set of invocations."""

    platform: str
    lines: List[BillingLine]
    granularity_ms: float

    @property
    def billed_ms(self) -> float:
        return sum(line.billed_ms for line in self.lines)

    @property
    def resource_ms(self) -> float:
        return sum(line.resource_ms for line in self.lines)

    @property
    def unbilled_ms(self) -> float:
        return sum(line.unbilled_ms for line in self.lines)

    @property
    def revenue_usd(self) -> float:
        return sum(line.charge_usd for line in self.lines)

    @property
    def billable_efficiency(self) -> float:
        """Fraction of provider resource-time that is billed (§1)."""
        if self.resource_ms == 0:
            return 1.0
        return min(1.0, self.billed_ms / self.resource_ms)

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.platform:<14} billed={self.billed_ms:10.1f}ms "
                f"resource={self.resource_ms:10.1f}ms "
                f"efficiency={self.billable_efficiency:6.1%} "
                f"revenue=${self.revenue_usd:.6f}")


def bill_invocation(record: InvocationRecord,
                    granularity_ms: float = DEFAULT_GRANULARITY_MS,
                    rate_per_gb_s: float = DEFAULT_RATE_PER_GB_S,
                    memory_gb: float = DEFAULT_MEMORY_GB) -> BillingLine:
    """One record -> one billing line.

    The user is billed for execution only (cold-start time is free to
    them); the provider's resource time includes everything the sandbox
    occupied hardware for.
    """
    if granularity_ms <= 0:
        raise PlatformError(
            f"billing granularity must be > 0, got {granularity_ms}")
    billed_ms = math.ceil(record.exec_ms / granularity_ms) * granularity_ms
    resource_ms = record.startup_ms + record.exec_ms + record.other_ms
    charge = billed_ms / 1000.0 * memory_gb * rate_per_gb_s
    return BillingLine(function=record.function, billed_ms=billed_ms,
                       resource_ms=resource_ms, charge_usd=charge)


def bill_records(platform_name: str,
                 records: Iterable[InvocationRecord],
                 granularity_ms: float = DEFAULT_GRANULARITY_MS,
                 rate_per_gb_s: float = DEFAULT_RATE_PER_GB_S,
                 memory_gb: float = DEFAULT_MEMORY_GB,
                 include_chains: bool = True) -> BillingReport:
    """Bill a set of invocations (chains flattened by default)."""
    lines: List[BillingLine] = []
    for record in records:
        targets = record.chain_records() if include_chains else [record]
        for target in targets:
            lines.append(bill_invocation(
                target, granularity_ms=granularity_ms,
                rate_per_gb_s=rate_per_gb_s, memory_gb=memory_gb))
    return BillingReport(platform=platform_name, lines=lines,
                         granularity_ms=granularity_ms)


def run_billing_analysis(params=None,
                         benchmark: str = "faas-fact",
                         language: str = "nodejs",
                         invocations: int = 20,
                         cold_every: int = 5,
                         granularity_ms: float = DEFAULT_GRANULARITY_MS
                         ) -> "dict[str, BillingReport]":
    """Provider economics for a cold-sprinkled invocation stream.

    Every ``cold_every``-th request is a cold start (a fresh or expired
    function) — roughly the miss profile of a mixed fleet.  Fireworks has
    no cold starts at all, which is exactly why its billable efficiency
    approaches 1.
    """
    from repro.bench.harness import (fresh_platform, install_all,
                                     invoke_once)
    from repro.core.fireworks import FireworksPlatform
    from repro.platforms.base import MODE_AUTO, MODE_COLD
    from repro.platforms.openwhisk import OpenWhiskPlatform
    from repro.workloads.faasdom import faasdom_spec

    spec = faasdom_spec(benchmark, language)
    reports: "dict[str, BillingReport]" = {}
    for platform_cls in (OpenWhiskPlatform, FireworksPlatform):
        platform = fresh_platform(platform_cls, params)
        install_all(platform, [spec])
        for index in range(invocations):
            mode = (MODE_COLD if platform_cls is OpenWhiskPlatform
                    and index % cold_every == 0 else MODE_AUTO)
            invoke_once(platform, spec.name, mode=mode)
        reports[platform.name] = bill_records(
            platform.name, platform.records,
            granularity_ms=granularity_ms)
    return reports
