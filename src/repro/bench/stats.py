"""Latency statistics for the concurrency/burst benches."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


def percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) of an already-sorted sample set."""
    if not ordered:
        raise ValueError("percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q out of range: {q}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    value = ordered[low] * (1 - fraction) + ordered[high] * fraction
    # Clamp away 1-ULP interpolation wobble so percentiles stay monotone.
    return min(max(value, ordered[low]), ordered[high])


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation."""
    if not samples:
        raise ValueError("percentile of no samples")
    return percentile_sorted(sorted(samples), q)


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample set."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            raise ValueError("no latency samples")
        # One shared sort instead of one per percentile; the mean keeps
        # the original accumulation order so results are bit-identical
        # with the pre-batching implementation.
        ordered = sorted(samples)
        return cls(
            count=len(samples),
            mean_ms=sum(samples) / len(samples),
            p50_ms=percentile_sorted(ordered, 50),
            p95_ms=percentile_sorted(ordered, 95),
            p99_ms=percentile_sorted(ordered, 99),
            max_ms=ordered[-1],
        )

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"n={self.count} mean={self.mean_ms:.1f} "
                f"p50={self.p50_ms:.1f} p95={self.p95_ms:.1f} "
                f"p99={self.p99_ms:.1f} max={self.max_ms:.1f} (ms)")


def histogram(samples: Sequence[float], bucket_ms: float) -> List[tuple]:
    """(bucket_start_ms, count) pairs for non-empty buckets, sorted."""
    if bucket_ms <= 0:
        raise ValueError(f"bucket size must be positive, got {bucket_ms}")
    counts: dict = {}
    for sample in samples:
        bucket = math.floor(sample / bucket_ms) * bucket_ms
        counts[bucket] = counts.get(bucket, 0) + 1
    return sorted(counts.items())
