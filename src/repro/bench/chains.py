"""`figure chains` (extension): multi-tenant function-chain serving.

Replays a Zipf-popular, diurnally phase-shifted multi-tenant chain trace
(:func:`repro.workloads.generator.multi_tenant_chain_trace`) open loop
across a cluster: every submission is a whole **DAG** driven by the
:class:`~repro.platforms.chains.ChainExecutor` — fan-out/fan-in, a
conditional audit stage, and a CouchDB change-feed trigger edge per
tenant — through the real admission, autoscale, and placement stack.

Each tenant owns two workflows over its own function namespace:

* **diamond** — ``split`` fans out to ``left`` + ``right``, which fan in
  to ``join``; high-priority submissions additionally take a conditional
  edge to ``audit``;
* **pipeline** — ``ingest -> store``; ``store`` writes the tenant's
  events database, whose change feed triggers ``report`` (executor-run,
  so the trigger segment works on every backend).

Rows compare the five backends under two placement policies: the default
``hash`` scheduler and the shipped ``chain-affinity`` DSL document
(successive stages score predecessors' hosts via the ``fn_affinity``
signal).  Everything derives from *seed*; two identically-seeded runs
are byte-identical (the golden chains hash locks this).
"""

from __future__ import annotations

import dataclasses
import json
import os
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.autoscale import WarmPoolAutoscaler
from repro.bench.harness import fresh_cluster_platform
from repro.bench.load import (DEFAULT_CAPACITY_PER_HOST, DEFAULT_KEEPALIVE_MS,
                              DEFAULT_N_HOSTS, DEFAULT_SEED, LOAD_PLATFORMS,
                              _empty_latency, _tuned_params)
from repro.bench.stats import LatencyStats
from repro.config import CalibratedParameters
from repro.errors import ValidationError
from repro.platforms.base import MODE_WARM
from repro.platforms.chains import ChainExecutor, DagRun
from repro.platforms.scheduler import POLICY_HASH
from repro.policy import default_registry, shipped_policy_dir
from repro.runtime.interpreter import AppCode, GuestFunction
from repro.runtime.ops import Compute, DbPut, Program, Respond, program
from repro.sim.rng import RngStreams
from repro.workloads.base import FunctionSpec
from repro.workloads.dag import (EDGE_TRIGGER, DagEdge, DagSpec, DagStage,
                                 make_dag)
from repro.workloads.generator import multi_tenant_chain_trace

#: The two placement policies every backend is measured under.
CHAIN_POLICIES = (POLICY_HASH, "chain-affinity")

#: The per-tenant workflow names, in trace order.
CHAIN_DAGS = ("diamond", "pipeline")

DEFAULT_N_TENANTS = 6
DEFAULT_DURATION_MS = 120_000.0
DEFAULT_MEAN_INTERARRIVAL_MS = 18_000.0
DEFAULT_AUTOSCALE_MODE = "reactive"

_STAGE_JS = '''\
function main(params) {
    // synthetic tenant stage: fixed work, optional event-store write
    return { ok: true, tenant: params.tenant };
}
'''


@dataclasses.dataclass(frozen=True)
class ChainOutcome:
    """One (backend, placement policy) row of the chains experiment."""

    platform: str
    policy: str
    n_hosts: int
    tenants: int
    chains: int                   # DAG submissions
    completed: int                # runs with every dispatched stage ok
    failed: int                   # runs with a shed/failed stage
    stages: int                   # stage dispatches (ledger total)
    triggers: int                 # change-feed segments fired
    shed_stages: int
    failed_stages: int
    latency: LatencyStats         # chain end-to-end, completed runs only
    warm_stages: int              # stage records served by a warm worker
    locality_hits: int            # stages placed on a predecessor's host
    locality_chances: int         # stages that had a predecessor hint

    @property
    def goodput(self) -> float:
        """Completed / submitted chains."""
        return self.completed / self.chains if self.chains else 1.0

    @property
    def cold_stage_share(self) -> float:
        """Fraction of executed stages that missed the warm pool."""
        if self.stages == 0:
            return 0.0
        return 1.0 - self.warm_stages / self.stages

    @property
    def locality_fraction(self) -> float:
        """Hinted stages that landed on a predecessor's host."""
        if self.locality_chances == 0:
            return 0.0
        return self.locality_hits / self.locality_chances

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.platform:<12} {self.policy:<15} "
                f"chains={self.chains:4d} "
                f"p50={self.latency.p50_ms:8.1f}ms "
                f"p99={self.latency.p99_ms:9.1f}ms "
                f"goodput={self.goodput:7.3%} "
                f"stages={self.stages:5d} "
                f"triggers={self.triggers:3d} "
                f"cold={self.cold_stage_share:7.2%} "
                f"locality={self.locality_fraction:7.2%}")


# ---------------------------------------------------------------------------
# Per-tenant synthetic workflows
# ---------------------------------------------------------------------------
def _stage_spec(name: str, compute_ms: float,
                put_db: str = "", doc_kb: float = 1.1) -> FunctionSpec:
    def make_program(_payload: Dict[str, Any],
                     _compute=compute_ms, _db=put_db,
                     _kb=doc_kb) -> Program:
        ops: List[Any] = [Compute(_compute)]
        if _db:
            ops.append(DbPut(_db, doc_kb=_kb))
        ops.append(Respond(0.6))
        return program(*ops)

    return FunctionSpec(
        name=name, language="nodejs",
        app=AppCode(name=name, language="nodejs",
                    guest_functions=(GuestFunction("main", 500.0, 3.0),),
                    extra_load_ms=120.0),
        make_program=make_program,
        source=_STAGE_JS,
        description="Synthetic multi-tenant chain stage",
        benchmark_suite="chains")


def tenant_events_db(tenant: str) -> str:
    """The tenant's private events database (the trigger edge's feed)."""
    return f"{tenant}-events"


def tenant_diamond_dag(tenant: str) -> DagSpec:
    """Fan-out/fan-in with a conditional audit stage."""
    prefix = f"{tenant}-dia"
    functions = (
        _stage_spec(f"{prefix}-split", 1400.0),
        _stage_spec(f"{prefix}-left", 2600.0),
        _stage_spec(f"{prefix}-right", 2100.0),
        _stage_spec(f"{prefix}-join", 1100.0),
        _stage_spec(f"{prefix}-audit", 900.0),
    )
    stages = [DagStage(name=stage, function=f"{prefix}-{stage}")
              for stage in ("split", "left", "right", "join", "audit")]
    edges = [
        DagEdge(src="split", dst="left", payload_kb=1.2),
        DagEdge(src="split", dst="right", payload_kb=1.2),
        DagEdge(src="left", dst="join", payload_kb=0.8),
        DagEdge(src="right", dst="join", payload_kb=0.8),
        DagEdge(src="join", dst="audit", payload_kb=0.5,
                when_key="priority", when_value="high"),
    ]
    return make_dag(f"{tenant}-diamond", "split", stages, edges,
                    functions=functions,
                    description=f"tenant {tenant}: diamond fan-out/fan-in")


def tenant_pipeline_dag(tenant: str) -> DagSpec:
    """Linear ingest/store with a change-feed-triggered report stage."""
    prefix = f"{tenant}-pipe"
    database = tenant_events_db(tenant)
    functions = (
        _stage_spec(f"{prefix}-ingest", 1600.0),
        _stage_spec(f"{prefix}-store", 1200.0, put_db=database),
        _stage_spec(f"{prefix}-report", 2400.0),
    )
    stages = [DagStage(name=stage, function=f"{prefix}-{stage}")
              for stage in ("ingest", "store", "report")]
    edges = [
        DagEdge(src="ingest", dst="store", payload_kb=1.0),
        DagEdge(src="store", dst="report", kind=EDGE_TRIGGER,
                database=database),
    ]
    return make_dag(f"{tenant}-pipeline", "ingest", stages, edges,
                    functions=functions,
                    description=f"tenant {tenant}: triggered pipeline")


def tenant_dags(tenant: str) -> Dict[str, DagSpec]:
    """Both workflows of one tenant, keyed by trace dag name."""
    return {"diamond": tenant_diamond_dag(tenant),
            "pipeline": tenant_pipeline_dag(tenant)}


def shipped_placement_document(name: str) -> Dict[str, Any]:
    """The shipped ``scenarios/policies`` placement document called
    *name* (by its ``name`` field, not its filename)."""
    directory = shipped_policy_dir()
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        with open(os.path.join(directory, filename), "r",
                  encoding="utf-8") as handle:
            document = json.load(handle)
        if (document.get("domain") == "placement"
                and document.get("name") == name):
            return document
    raise ValidationError(
        f"no shipped placement document named {name!r} in {directory}")


def _resolve_chain_policy(policy: object) -> Tuple[object, str]:
    """Coerce *policy* into something ``Cluster`` accepts, plus its
    reporting name.  Registered names pass through; other strings load
    the shipped document of that name (``chain-affinity``)."""
    if isinstance(policy, str):
        if policy in default_registry().names("placement"):
            return policy, policy
        document = shipped_placement_document(policy)
        return document, policy
    if isinstance(policy, dict):
        return policy, str(policy.get("name", "document"))
    return policy, getattr(policy, "name", type(policy).__name__)


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------
def build_chain_trace(n_tenants: int, duration_ms: float, seed: int,
                      mean_interarrival_ms: float =
                      DEFAULT_MEAN_INTERARRIVAL_MS):
    """The (tenants, trace) pair every row of one run replays."""
    tenants = [f"tenant-{i:02d}" for i in range(n_tenants)]
    rng = RngStreams(seed)
    trace = multi_tenant_chain_trace(
        tenants, CHAIN_DAGS, duration_ms, rng,
        mean_interarrival_ms=mean_interarrival_ms)
    return tenants, trace


def run_chains_platform(
        platform_name: str,
        policy: object = POLICY_HASH,
        params: Optional[CalibratedParameters] = None,
        n_hosts: int = DEFAULT_N_HOSTS,
        n_tenants: int = DEFAULT_N_TENANTS,
        duration_ms: float = DEFAULT_DURATION_MS,
        seed: int = DEFAULT_SEED,
        capacity_per_host: int = DEFAULT_CAPACITY_PER_HOST,
        keepalive_ms: float = DEFAULT_KEEPALIVE_MS,
        mean_interarrival_ms: float = DEFAULT_MEAN_INTERARRIVAL_MS,
        autoscale_mode: str = DEFAULT_AUTOSCALE_MODE,
        chaos_plan=None, return_platform: bool = False):
    """One (backend, placement policy) row: fresh cluster, same seed,
    same multi-tenant trace.

    Every third submission is high-priority (takes the diamond's
    conditional audit edge) — deterministic in the trace index, so the
    row is a pure function of the seed.
    """
    if platform_name not in LOAD_PLATFORMS:
        raise KeyError(f"unknown chains platform {platform_name!r}; "
                       f"pick one of {tuple(LOAD_PLATFORMS)}")
    policy_spec, policy_name = _resolve_chain_policy(policy)
    tuned = _tuned_params(params, keepalive_ms)
    tenants, trace = build_chain_trace(
        n_tenants, duration_ms, seed,
        mean_interarrival_ms=mean_interarrival_ms)
    platform = fresh_cluster_platform(
        LOAD_PLATFORMS[platform_name], tuned, seed=seed, n_hosts=n_hosts,
        policy=policy_spec, capacity_per_host=capacity_per_host)
    executor = ChainExecutor(platform)
    dags: Dict[Tuple[str, str], Any] = {}
    for tenant in tenants:
        for dag_name, dag in tenant_dags(tenant).items():
            executor.install(dag)
            dags[(tenant, dag_name)] = dag
    sim = platform.sim
    start_ms = sim.now
    WarmPoolAutoscaler(platform, mode=autoscale_mode,
                       until_ms=start_ms + duration_ms)
    if chaos_plan is not None:
        from repro.chaos import HostFailureController
        from repro.chaos.plan import ChaosPlan
        shifted = ChaosPlan([
            dataclasses.replace(event, at_ms=start_ms + event.at_ms)
            for event in chaos_plan.events])
        HostFailureController(platform, shifted, failover=True)

    runs: List[DagRun] = []
    for index, event in enumerate(trace):
        at_ms = start_ms + event.at_ms
        if sim.now < at_ms:
            sim.run(until=at_ms)
        payload = {"tenant": event.tenant,
                   "priority": "high" if index % 3 == 0 else "normal"}
        runs.append(executor.submit(dags[(event.tenant, event.dag)],
                                    payload))
    sim.run()   # drain in-flight chains, trigger segments, the scaler

    all_runs = runs + executor.trigger_runs
    latencies = array("d", (run.end_to_end_ms for run in runs
                            if not run.failed))
    stages = sum(sum(run.ledger.values()) for run in all_runs)
    results = [result for run in all_runs for result in run.executed()]
    outcome = ChainOutcome(
        platform=platform_name,
        policy=policy_name,
        n_hosts=n_hosts,
        tenants=len(tenants),
        chains=len(runs),
        completed=sum(1 for run in runs if not run.failed),
        failed=sum(1 for run in runs if run.failed),
        stages=stages,
        triggers=len(executor.trigger_runs),
        shed_stages=sum(1 for r in results if r.status == "shed"),
        failed_stages=sum(1 for r in results if r.status == "failed"),
        latency=(LatencyStats.from_samples(latencies) if latencies
                 else _empty_latency()),
        warm_stages=sum(1 for r in results
                        if r.record is not None
                        and r.record.mode == MODE_WARM),
        locality_hits=sum(run.locality_hits for run in all_runs),
        locality_chances=sum(run.locality_chances for run in all_runs))
    if return_platform:
        return outcome, platform, all_runs
    return outcome


def run_chains_experiment(
        params: Optional[CalibratedParameters] = None,
        platforms: Sequence[str] = tuple(LOAD_PLATFORMS),
        policies: Sequence[object] = CHAIN_POLICIES,
        seed: int = DEFAULT_SEED,
        **kwargs) -> Dict[Tuple[str, str], ChainOutcome]:
    """Every (backend, policy) row, keyed ``(platform, policy name)``."""
    outcomes: Dict[Tuple[str, str], ChainOutcome] = {}
    for platform_name in platforms:
        for policy in policies:
            outcome = run_chains_platform(
                platform_name, policy, params=params, seed=seed, **kwargs)
            outcomes[(platform_name, outcome.policy)] = outcome
    return outcomes
