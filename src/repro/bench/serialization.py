"""Loss-free JSON codec for experiment results.

The parallel engine ships every shard result between processes — and in and
out of the on-disk result cache — as JSON.  For the engine's determinism
guarantee ("serial, parallel, and cached runs produce identical results")
the codec must be *exact*: floats round-trip bit-for-bit (``repr`` shortest
form, which ``json`` uses), tuples stay tuples, non-string dict keys keep
their type, and every result dataclass decodes back to an equal instance.

Encoded forms:

* dataclass  -> ``{"$dc": "<registered name>", "fields": {...}}``
* dict       -> ``{"$map": [[key, value], ...]}`` (insertion order kept)
* tuple      -> ``{"$tuple": [...]}``
* non-finite float -> ``{"$float": "inf" | "-inf" | "nan"}``
* list / str / int / float / bool / None -> themselves

Only dataclasses registered here can cross the boundary; an unknown type is
a hard error rather than a silently lossy repr.
"""

from __future__ import annotations

import math
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Type

from repro.errors import ReproError

#: Registered result types by codec name.
_TYPES: Dict[str, Type] = {}


def register_result_type(cls: Type) -> Type:
    """Register a dataclass so encode/decode can round-trip it."""
    if not is_dataclass(cls):
        raise ReproError(f"{cls!r} is not a dataclass")
    _TYPES[cls.__name__] = cls
    return cls


def _register_builtin_result_types() -> None:
    """Register every result dataclass the experiment registry produces."""
    from repro.bench.chaos import ChaosOutcome
    from repro.bench.cluster import ClusterPolicyOutcome
    from repro.bench.concurrency import BurstResult, LoadPoint
    from repro.bench.ablations import (DeoptResult, KeepAliveOutcome,
                                       PolicyComparison)
    from repro.bench.factors import FactorRow
    from repro.bench.load import LoadOutcome
    from repro.bench.results import (FigureResult, LatencyRow, MemoryPoint,
                                     MemorySeries, PaperComparison)
    from repro.bench.sensitivity import SensitivityPoint, SensitivityResult
    from repro.bench.stats import LatencyStats

    for cls in (BurstResult, ChaosOutcome, ClusterPolicyOutcome, DeoptResult,
                FactorRow, FigureResult,
                KeepAliveOutcome, LatencyRow, LatencyStats, LoadOutcome,
                LoadPoint, MemoryPoint, MemorySeries, PaperComparison,
                PolicyComparison, SensitivityPoint, SensitivityResult):
        register_result_type(cls)


def encode_result(obj: Any) -> Any:
    """Encode *obj* into JSON-serializable primitives, losslessly."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isfinite(obj):
            return obj
        return {"$float": repr(obj)}  # 'inf' / '-inf' / 'nan'
    if is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _TYPES:
            raise ReproError(
                f"result type {name!r} is not registered with "
                "repro.bench.serialization; register it so cached results "
                "decode back to the same type")
        return {"$dc": name,
                "fields": {f.name: encode_result(getattr(obj, f.name))
                           for f in fields(obj)}}
    if isinstance(obj, dict):
        return {"$map": [[encode_result(key), encode_result(value)]
                         for key, value in obj.items()]}
    if isinstance(obj, tuple):
        return {"$tuple": [encode_result(item) for item in obj]}
    if isinstance(obj, list):
        return [encode_result(item) for item in obj]
    raise ReproError(
        f"cannot encode {type(obj).__name__} for the result cache: {obj!r}")


def decode_result(payload: Any) -> Any:
    """Invert :func:`encode_result`."""
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, list):
        return [decode_result(item) for item in payload]
    if isinstance(payload, dict):
        if "$float" in payload:
            return float(payload["$float"])
        if "$dc" in payload:
            name = payload["$dc"]
            if name not in _TYPES:
                raise ReproError(
                    f"cached payload names unknown result type {name!r}; "
                    "the cache entry predates this build — delete it")
            kwargs = {key: decode_result(value)
                      for key, value in payload["fields"].items()}
            return _TYPES[name](**kwargs)
        if "$map" in payload:
            return {decode_result(key): decode_result(value)
                    for key, value in payload["$map"]}
        if "$tuple" in payload:
            return tuple(decode_result(item) for item in payload["$tuple"])
        raise ReproError(f"malformed encoded payload: {payload!r}")
    raise ReproError(f"cannot decode {type(payload).__name__}: {payload!r}")


_register_builtin_result_types()
