"""Loss-free codecs for experiment results: compact binary + legacy JSON.

The parallel engine ships every shard result between processes — and in and
out of the on-disk result cache.  For the engine's determinism guarantee
("serial, parallel, and cached runs produce identical results") both codecs
must be *exact*: floats round-trip bit-for-bit, tuples stay tuples,
non-string dict keys keep their type, and every result dataclass decodes
back to an equal instance.

**Binary codec** (:func:`dumps_result` / :func:`loads_result`) — the cache's
native format since the DES-kernel performance rewrite.  A 4-byte magic +
version header, then a tagged recursive encoding built on :mod:`struct`:

* floats are the raw IEEE-754 little-endian doubles (``<d``) — bit-exact
  by construction, including infinities and NaN, with none of JSON's
  repr/parse round-trip cost;
* homogeneous float lists/tuples (latency samples, memory series — the
  bulk of a million-invocation replay's result bytes) collapse into one
  ``pack("<Nd", ...)`` block instead of N tagged items;
* dataclasses are encoded positionally against the registered field order,
  so a record costs its payload bytes, not its field names.

**JSON codec** (:func:`encode_result` / :func:`decode_result`) — retained
both as the legacy on-disk format (pre-rewrite cache entries still load)
and as the process-pool wire form.  Encoded forms:

* dataclass  -> ``{"$dc": "<registered name>", "fields": {...}}``
* dict       -> ``{"$map": [[key, value], ...]}`` (insertion order kept)
* tuple      -> ``{"$tuple": [...]}``
* non-finite float -> ``{"$float": "inf" | "-inf" | "nan"}``
* list / str / int / float / bool / None -> themselves

Only dataclasses registered here can cross either boundary; an unknown
type is a hard error rather than a silently lossy repr.
"""

from __future__ import annotations

import math
import struct
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Tuple, Type

from repro.errors import ReproError

#: Registered result types by codec name.
_TYPES: Dict[str, Type] = {}


def register_result_type(cls: Type) -> Type:
    """Register a dataclass so encode/decode can round-trip it."""
    if not is_dataclass(cls):
        raise ReproError(f"{cls!r} is not a dataclass")
    _TYPES[cls.__name__] = cls
    return cls


def _register_builtin_result_types() -> None:
    """Register every result dataclass the experiment registry produces."""
    from repro.bench.chains import ChainOutcome
    from repro.bench.chaos import ChaosOutcome
    from repro.bench.cluster import ClusterPolicyOutcome
    from repro.bench.concurrency import BurstResult, LoadPoint
    from repro.bench.ablations import (DeoptResult, KeepAliveOutcome,
                                       PolicyComparison)
    from repro.bench.factors import FactorRow
    from repro.bench.load import LoadOutcome
    from repro.bench.restore import RestorePolicyOutcome, StreamingOutcome
    from repro.bench.results import (FigureResult, LatencyRow, MemoryPoint,
                                     MemorySeries, PaperComparison)
    from repro.bench.search import SearchCandidateOutcome, SearchResult
    from repro.bench.sensitivity import SensitivityPoint, SensitivityResult
    from repro.bench.stats import LatencyStats

    for cls in (BurstResult, ChainOutcome, ChaosOutcome,
                ClusterPolicyOutcome, DeoptResult,
                FactorRow, FigureResult,
                KeepAliveOutcome, LatencyRow, LatencyStats, LoadOutcome,
                LoadPoint, MemoryPoint, MemorySeries, PaperComparison,
                PolicyComparison, RestorePolicyOutcome,
                SearchCandidateOutcome, SearchResult, SensitivityPoint,
                SensitivityResult, StreamingOutcome):
        register_result_type(cls)


def encode_result(obj: Any) -> Any:
    """Encode *obj* into JSON-serializable primitives, losslessly."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isfinite(obj):
            return obj
        return {"$float": repr(obj)}  # 'inf' / '-inf' / 'nan'
    if is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _TYPES:
            raise ReproError(
                f"result type {name!r} is not registered with "
                "repro.bench.serialization; register it so cached results "
                "decode back to the same type")
        return {"$dc": name,
                "fields": {f.name: encode_result(getattr(obj, f.name))
                           for f in fields(obj)}}
    if isinstance(obj, dict):
        return {"$map": [[encode_result(key), encode_result(value)]
                         for key, value in obj.items()]}
    if isinstance(obj, tuple):
        return {"$tuple": [encode_result(item) for item in obj]}
    if isinstance(obj, list):
        return [encode_result(item) for item in obj]
    raise ReproError(
        f"cannot encode {type(obj).__name__} for the result cache: {obj!r}")


def decode_result(payload: Any) -> Any:
    """Invert :func:`encode_result`."""
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, list):
        return [decode_result(item) for item in payload]
    if isinstance(payload, dict):
        if "$float" in payload:
            return float(payload["$float"])
        if "$dc" in payload:
            name = payload["$dc"]
            if name not in _TYPES:
                raise ReproError(
                    f"cached payload names unknown result type {name!r}; "
                    "the cache entry predates this build — delete it")
            kwargs = {key: decode_result(value)
                      for key, value in payload["fields"].items()}
            return _TYPES[name](**kwargs)
        if "$map" in payload:
            return {decode_result(key): decode_result(value)
                    for key, value in payload["$map"]}
        if "$tuple" in payload:
            return tuple(decode_result(item) for item in payload["$tuple"])
        raise ReproError(f"malformed encoded payload: {payload!r}")
    raise ReproError(f"cannot decode {type(payload).__name__}: {payload!r}")


# ---------------------------------------------------------------------------
# Binary codec
# ---------------------------------------------------------------------------
#: 3-byte magic + 1-byte format version.  Bump the version byte when the
#: tag table or an encoding changes shape; old blobs then fail loudly in
#: :func:`loads_result` and the cache treats them as misses.
BINARY_MAGIC = b"RBC\x01"

# One-byte type tags.  Kept printable for easier hexdump debugging.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT64 = b"i"      # <q
_TAG_BIGINT = b"I"     # <I byte count + little-endian signed bytes
_TAG_FLOAT = b"d"      # <d (bit-exact, covers inf/-inf/nan)
_TAG_STR = b"s"        # <I byte count + utf-8
_TAG_LIST = b"l"       # <I item count + tagged items
_TAG_TUPLE = b"t"      # <I item count + tagged items
_TAG_DICT = b"m"       # <I pair count + tagged key/value pairs
_TAG_DATACLASS = b"D"  # tagged name str + <I field count + positional values
_TAG_FLOAT_LIST = b"f"   # <I count + packed <Nd block
_TAG_FLOAT_TUPLE = b"g"  # <I count + packed <Nd block

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _enc(obj: Any, out: bytearray) -> None:
    """Append the tagged binary encoding of *obj* to *out*."""
    kind = type(obj)
    if kind is float:
        out += _TAG_FLOAT
        out += _F64.pack(obj)
        return
    if kind is str:
        raw = obj.encode("utf-8")
        out += _TAG_STR
        out += _U32.pack(len(raw))
        out += raw
        return
    if kind is bool:  # before int: bool is an int subclass
        out += _TAG_TRUE if obj else _TAG_FALSE
        return
    if kind is int:
        if _I64_MIN <= obj <= _I64_MAX:
            out += _TAG_INT64
            out += _I64.pack(obj)
        else:
            raw = obj.to_bytes((obj.bit_length() + 8) // 8, "little",
                               signed=True)
            out += _TAG_BIGINT
            out += _U32.pack(len(raw))
            out += raw
        return
    if obj is None:
        out += _TAG_NONE
        return
    if kind is list or kind is tuple:
        n = len(obj)
        if n and all(type(item) is float for item in obj):
            # The hot shape: latency samples and memory series.  One
            # struct pack for the whole block.
            out += _TAG_FLOAT_LIST if kind is list else _TAG_FLOAT_TUPLE
            out += _U32.pack(n)
            out += struct.pack(f"<{n}d", *obj)
            return
        out += _TAG_LIST if kind is list else _TAG_TUPLE
        out += _U32.pack(n)
        for item in obj:
            _enc(item, out)
        return
    if kind is dict:
        out += _TAG_DICT
        out += _U32.pack(len(obj))
        for key, value in obj.items():
            _enc(key, out)
            _enc(value, out)
        return
    if is_dataclass(obj) and not isinstance(obj, type):
        name = kind.__name__
        if name not in _TYPES:
            raise ReproError(
                f"result type {name!r} is not registered with "
                "repro.bench.serialization; register it so cached results "
                "decode back to the same type")
        out += _TAG_DATACLASS
        _enc(name, out)
        dc_fields = fields(obj)
        out += _U32.pack(len(dc_fields))
        for f in dc_fields:
            _enc(getattr(obj, f.name), out)
        return
    raise ReproError(
        f"cannot encode {kind.__name__} for the result cache: {obj!r}")


def _dec(data: bytes, pos: int) -> Tuple[Any, int]:
    """Decode one tagged value at *pos*; return (value, next position)."""
    tag = data[pos:pos + 1]
    pos += 1
    if tag == _TAG_FLOAT:
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_STR:
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        raw = data[pos:pos + n]
        if len(raw) != n:
            raise ReproError("truncated binary result payload (string)")
        return raw.decode("utf-8"), pos + n
    if tag == _TAG_INT64:
        return _I64.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_FLOAT_LIST or tag == _TAG_FLOAT_TUPLE:
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        values = struct.unpack_from(f"<{n}d", data, pos)
        pos += 8 * n
        return (list(values) if tag == _TAG_FLOAT_LIST else values), pos
    if tag == _TAG_LIST or tag == _TAG_TUPLE:
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _dec(data, pos)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), pos
    if tag == _TAG_DICT:
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        result: Dict[Any, Any] = {}
        for _ in range(n):
            key, pos = _dec(data, pos)
            value, pos = _dec(data, pos)
            result[key] = value
        return result, pos
    if tag == _TAG_DATACLASS:
        name, pos = _dec(data, pos)
        if name not in _TYPES:
            raise ReproError(
                f"cached payload names unknown result type {name!r}; "
                "the cache entry predates this build — delete it")
        cls = _TYPES[name]
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        if n != len(fields(cls)):
            raise ReproError(
                f"cached {name!r} has {n} fields, this build expects "
                f"{len(fields(cls))} — the cache entry predates this build")
        values = []
        for _ in range(n):
            value, pos = _dec(data, pos)
            values.append(value)
        return cls(*values), pos
    if tag == _TAG_BIGINT:
        n = _U32.unpack_from(data, pos)[0]
        pos += 4
        return int.from_bytes(data[pos:pos + n], "little",
                              signed=True), pos + n
    raise ReproError(f"malformed binary result payload: unknown tag {tag!r} "
                     f"at offset {pos - 1}")


def dumps_result(obj: Any) -> bytes:
    """Serialize *obj* to the versioned compact binary form."""
    out = bytearray(BINARY_MAGIC)
    _enc(obj, out)
    return bytes(out)


def loads_result(data: bytes) -> Any:
    """Invert :func:`dumps_result`; :class:`ReproError` on bad input."""
    if data[:4] != BINARY_MAGIC:
        raise ReproError(
            f"bad binary result header {data[:4]!r} (expected "
            f"{BINARY_MAGIC!r}) — not a result blob, or a stale format "
            "version; delete the cache entry")
    try:
        value, pos = _dec(data, 4)
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise ReproError(f"truncated or corrupt binary result payload: "
                         f"{exc}") from exc
    if pos != len(data):
        raise ReproError(
            f"binary result payload has {len(data) - pos} trailing bytes")
    return value


_register_builtin_result_types()
