"""Cluster scheduling experiment (extension): placement across real hosts.

Replays the same Azure-like trace (Shahrad et al. [48] popularity split)
against a multi-host cluster under every placement policy, twice:

* **OpenWhisk replay** — warm containers are host-local, so the policy
  decides the *warm-hit rate*: hash keeps revisiting each function's home
  host inside the keep-alive window; round-robin cycles through all hosts
  and arrives after the container expired.
* **Fireworks replay** — snapshot images are host-local (installation
  seeds the home host), so the policy decides the *restore-locality rate*:
  the fraction of restores that found the image already resident instead
  of paying the modeled cross-host transfer.  ``snapshot-locality``
  placement exists to drive this toward 1.

The keep-alive window is deliberately set between the hash policy's
revisit period (one host, ~30 s for a popular function) and round-robin's
(n_hosts x 30 s), so the policies genuinely separate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.bench.harness import (fresh_cluster_platform, install_all,
                                 invoke_once)
from repro.bench.stats import LatencyStats
from repro.config import CalibratedParameters, default_parameters
from repro.core.fireworks import FireworksPlatform
from repro.platforms.openwhisk import OpenWhiskPlatform
from repro.policy import default_registry
from repro.sim.rng import RngStreams
from repro.workloads.faasdom import faasdom_spec
from repro.workloads.generator import assign_popularity, poisson_trace

#: Keep-alive window for the OpenWhisk replay: longer than a popular
#: function's ~30 s inter-arrival (hash stays warm), shorter than the
#: 4-host round-robin revisit period (~120 s goes cold).
KEEPALIVE_MS = 90_000.0
POPULAR_INTERARRIVAL_MS = 30_000.0
RARE_INTERARRIVAL_MS = 600_000.0


@dataclasses.dataclass(frozen=True)
class ClusterPolicyOutcome:
    """One placement policy's outcome on the replayed cluster trace."""

    policy: str
    n_hosts: int
    requests: int
    warm_hit_rate: float           # OpenWhisk replay
    restore_locality_rate: float   # Fireworks replay
    cross_host_transfers: int      # Fireworks replay
    latency: LatencyStats          # Fireworks end-to-end latency
    load_spread: int               # max-min placements across hosts (FW)

    def as_line(self) -> str:
        """One-line summary for the bench output."""
        return (f"{self.policy:<17} warm-hit={self.warm_hit_rate:6.1%} "
                f"restore-local={self.restore_locality_rate:6.1%} "
                f"transfers={self.cross_host_transfers:4d} "
                f"p50={self.latency.p50_ms:7.1f}ms "
                f"spread={self.load_spread}")


def _replay(platform, trace) -> List[float]:
    """Replay *trace* on *platform*, verifying every invocation."""
    latencies: List[float] = []
    for event in trace:
        if platform.sim.now < event.at_ms:
            platform.sim.run(until=event.at_ms)
        record = invoke_once(platform, event.function)
        latencies.append(record.total_ms)
    return latencies


def run_cluster_scheduling(
        params: Optional[CalibratedParameters] = None,
        n_hosts: int = 4,
        n_functions: int = 12,
        duration_ms: float = 600_000.0,
        seed: int = 11,
        policies=None) -> Dict[str, ClusterPolicyOutcome]:
    """Warm-hit and restore-locality rates per placement policy.

    The same deterministic trace is replayed for every policy
    (default: every registered built-in placement policy), so the
    outcomes differ only by placement.
    """
    registry = default_registry()
    if policies is None:
        policies = registry.names("placement")
    else:
        for policy in policies:
            registry.entry("placement", policy)   # fail fast on unknowns
    resolved = params or default_parameters()
    tuned = dataclasses.replace(
        resolved, control_plane=dataclasses.replace(
            resolved.control_plane, warm_keepalive_ms=KEEPALIVE_MS))

    rng = RngStreams(seed)
    function_names = [f"fn-{i:02d}" for i in range(n_functions)]
    popularity = assign_popularity(
        function_names, rng,
        popular_interarrival_ms=POPULAR_INTERARRIVAL_MS,
        rare_interarrival_ms=RARE_INTERARRIVAL_MS)
    trace = poisson_trace(popularity, duration_ms, rng)

    base_spec = faasdom_spec("faas-netlatency", "nodejs")
    specs = [base_spec.__class__(
        name=name, language=base_spec.language, app=base_spec.app,
        make_program=base_spec.make_program, source=base_spec.source,
        description=base_spec.description,
        benchmark_suite=base_spec.benchmark_suite)
        for name in function_names]

    outcomes: Dict[str, ClusterPolicyOutcome] = {}
    for policy in policies:
        # OpenWhisk replay: host-local warm containers.
        ow = fresh_cluster_platform(OpenWhiskPlatform, tuned,
                                    n_hosts=n_hosts, policy=policy)
        install_all(ow, specs)
        _replay(ow, trace)
        warm_rate = ow.warm_starts / max(1, ow.warm_starts + ow.cold_starts)

        # Fireworks replay: host-local snapshot images.
        fw = fresh_cluster_platform(FireworksPlatform, tuned,
                                    n_hosts=n_hosts, policy=policy)
        install_all(fw, specs)
        fw_latencies = _replay(fw, trace)
        fw.sim.run()  # drain clone teardowns
        restores = fw.local_restores + fw.cross_host_transfers
        outcomes[policy] = ClusterPolicyOutcome(
            policy=policy,
            n_hosts=n_hosts,
            requests=len(trace),
            warm_hit_rate=warm_rate,
            restore_locality_rate=fw.local_restores / max(1, restores),
            cross_host_transfers=fw.cross_host_transfers,
            latency=LatencyStats.from_samples(fw_latencies),
            load_spread=int(fw.cluster.load_spread()))
    return outcomes
