"""Result containers and table rendering for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class LatencyRow:
    """One bar of a latency figure: platform x start mode."""

    platform: str
    mode: str                 # cold | warm | snapshot (Fireworks: "both")
    startup_ms: float
    exec_ms: float
    other_ms: float

    @property
    def total_ms(self) -> float:
        return self.startup_ms + self.exec_ms + self.other_ms

    def label(self) -> str:
        """Bar label with the paper's (c)/(w)/(both) suffix."""
        suffix = {"cold": " (c)", "warm": " (w)", "snapshot": " (both)"}
        return self.platform + suffix.get(self.mode, f" ({self.mode})")


@dataclass
class FigureResult:
    """One regenerated figure/table: rows plus free-form notes."""

    figure_id: str
    title: str
    rows: List[LatencyRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    def row(self, platform: str, mode: str) -> LatencyRow:
        """Look up the bar for (platform, mode); KeyError if absent."""
        for row in self.rows:
            if row.platform == platform and row.mode == mode:
                return row
        raise KeyError(f"{self.figure_id}: no row {platform}/{mode}")

    def as_table(self) -> str:
        """Render as an aligned text table."""
        lines = [f"== {self.figure_id}: {self.title} ==",
                 f"{'platform':<26} {'startup':>10} {'exec':>10} "
                 f"{'others':>10} {'total':>10}"]
        for row in self.rows:
            lines.append(
                f"{row.label():<26} {row.startup_ms:>9.1f}m "
                f"{row.exec_ms:>9.1f}m {row.other_ms:>9.1f}m "
                f"{row.total_ms:>9.1f}m")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


@dataclass(frozen=True)
class MemoryPoint:
    """One point of Fig 10: n microVMs -> host memory used."""

    n_vms: int
    host_used_mb: float
    mean_pss_mb: float


@dataclass
class MemorySeries:
    """Fig 10 series for one platform."""

    platform: str
    points: List[MemoryPoint] = field(default_factory=list)
    max_vms_before_swap: int = 0

    def as_table(self) -> str:
        """Render as an aligned text table."""
        lines = [f"-- {self.platform}: max {self.max_vms_before_swap} "
                 "microVMs before swapping --"]
        for point in self.points:
            lines.append(
                f"  n={point.n_vms:<5d} host={point.host_used_mb:>9.0f}M "
                f"mean PSS={point.mean_pss_mb:>7.1f}M")
        return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (Fig 6(e)/7(e) summarize benchmarks this way)."""
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError(f"geometric mean needs positive values: {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class PaperComparison:
    """One paper-vs-measured line for EXPERIMENTS.md."""

    metric: str
    paper_value: str
    measured_value: str
    holds: bool
    comment: str = ""

    def as_line(self) -> str:
        """One [OK]/[DEV] line for EXPERIMENTS.md."""
        mark = "OK " if self.holds else "DEV"
        comment = f" — {self.comment}" if self.comment else ""
        return (f"[{mark}] {self.metric}: paper {self.paper_value}, "
                f"measured {self.measured_value}{comment}")


def format_comparisons(title: str,
                       comparisons: Sequence[PaperComparison]) -> str:
    """Render a titled block of paper-vs-measured lines."""
    lines = [f"== paper-vs-measured: {title} =="]
    lines.extend(c.as_line() for c in comparisons)
    return "\n".join(lines)
